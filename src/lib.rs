//! # p2p-resource-pool
//!
//! A full reproduction of **"P2P Resource Pool and Its Application to
//! Optimize Wide-Area Application Level Multicasting"** (Zhang, Chen, Lin,
//! Lu, Shi, Xie, Yuan — ICPP 2004) as a Rust workspace.
//!
//! The stack, bottom-up:
//!
//! | crate | subsystem |
//! |---|---|
//! | [`simcore`] | deterministic discrete-event simulation engine |
//! | [`netsim`] | transit–stub underlay, latency oracle, bandwidth model |
//! | [`dht`] | consistent-hashing ring: zones, leafsets, routing, heartbeats |
//! | [`coords`] | GNP + leafset network coordinates (downhill simplex) |
//! | [`bwest`] | packet-pair bottleneck-bandwidth estimation |
//! | [`somo`] | self-organized metadata overlay (gather/disseminate) |
//! | [`query`] | hierarchical aggregates + O(log N) scoped pool queries |
//! | [`alm`] | DB-MHT trees: AMCast, adjust, critical-node helpers |
//! | [`oracle`] | tiered latency oracle: hot LRU rows, landmark sketches, GNP base |
//! | [`runstore`] | queryable run store: segmented trace/delta logs + snapshots |
//! | [`pool`] | the resource pool + market-driven multi-session scheduling |
//!
//! See `examples/` for runnable walkthroughs and the `bench` crate for the
//! binaries that regenerate every figure of the paper's evaluation.

pub use alm;
pub use bwest;
pub use coords;
pub use dht;
pub use netsim;
pub use oracle;
pub use pool;
pub use query;
pub use runstore;
pub use simcore;
pub use somo;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use alm::{adjust, amcast, critical, HelperPool, HelperStrategy, MulticastTree, Problem};
    pub use bwest::{BwEstConfig, BwEstimates};
    pub use coords::{Coord, CoordStore, GnpSolver, LeafsetCoords};
    pub use dht::{NodeId, Ring};
    pub use netsim::{HostId, LatencyModel, Network, NetworkConfig};
    pub use oracle::{LatencyOracle, LatencySource, TierStats, TieredConfig};
    pub use pool::{
        plan_and_reserve, plan_and_reserve_from_query, plan_and_reserve_leased, AdmissionConfig,
        AllocationMode, DiscoveryMode, LiveOps, LiveOpsConfig, MarketConfig, MarketSim,
        MarketSnapshot, PlanConfig, PlanModel, PoolConfig, Rank, ResourcePool, SessionId,
        SessionSpec,
    };
    pub use query::{
        Aggregate, HostSample, PressureReport, PressureWatch, QueryAnswer, QueryIndex,
        RegionBounds, Scope, Subscription, SubscriptionSet, ThresholdDelta,
    };
    pub use runstore::{ReplayGap, RunStore, StoreConfig, StoreSink};
    pub use simcore::{
        AuditReport, Auditor, CloseReason, EventQueue, FaultPlan, InvariantSet, MetricsRegistry,
        SimTime, TraceEvent, TraceRecord, Tracer,
    };
    pub use somo::{Report, SomoTree};
}
