//! Tiered latency oracle: plan the same session with and without the
//! dense latency matrix.
//!
//! Builds the quickstart pool twice from the same seed — once under
//! [`LatencySource::Exact`] (the historical dense `CachedLatency` kernel)
//! and once under [`LatencySource::Tiered`] (hot Dijkstra-row LRU over
//! landmark triangle bounds over GNP coordinates) — plans an identical
//! 12-member session through each, and prints the resulting tree heights
//! next to the tiered oracle's per-tier hit rates and resident footprint.
//!
//! Run with: `cargo run --release --example oracle`

use p2p_resource_pool::prelude::*;

fn main() {
    let base = PoolConfig {
        net: NetworkConfig {
            num_hosts: 300,
            ..NetworkConfig::default()
        },
        coord_rounds: 6,
        ..PoolConfig::default()
    };

    // Three sources: the dense kernel, the tiered default (whose hot tier
    // comfortably covers a 300-host pool's router spread, so plans match
    // exactly), and a hot-less tiered oracle that must answer every pair
    // from landmark bounds or coordinates — the estimate-quality floor.
    let mut heights = Vec::new();
    for (label, source) in [
        ("exact   ", LatencySource::Exact),
        ("tiered  ", LatencySource::Tiered(TieredConfig::default())),
        (
            "hot-less",
            LatencySource::Tiered(TieredConfig {
                hot_rows: 0,
                ..TieredConfig::default()
            }),
        ),
    ] {
        let cfg = PoolConfig {
            latency_source: source,
            ..base.clone()
        };
        println!("building resource pool ({label} latency source)...");
        let mut pool = ResourcePool::build(&cfg, 42);
        let members = pool.sample_members(12, 7);
        let spec = SessionSpec {
            id: SessionId(1),
            priority: 1,
            root: members[0],
            members,
        };
        let outcome = plan_and_reserve(
            &mut pool,
            &spec,
            &PlanConfig {
                model: PlanModel::Oracle,
                ..PlanConfig::default()
            },
        );
        // `oracle_height` is always evaluated under the exact matrix, so
        // the two numbers below are directly comparable: any gap is pure
        // tree-quality loss from planning through estimates.
        println!(
            "  {label} plan: height = {:6.1} ms  ({} helpers)",
            outcome.oracle_height,
            outcome.helpers.len()
        );
        heights.push(outcome.oracle_height);

        if let Some(stats) = pool.oracle_stats() {
            let total = stats.total().max(1) as f64;
            println!(
                "  tier hits: hot {:5.1}%  sketch {:5.1}%  base {:5.1}%  \
                 ({} queries, {} row promotions, {} evictions)",
                100.0 * stats.hot as f64 / total,
                100.0 * stats.sketch as f64 / total,
                100.0 * stats.base as f64 / total,
                stats.total(),
                stats.promotions,
                stats.evictions,
            );
        }
        let n = pool.num_hosts() as u64;
        println!(
            "  oracle resident: {:.1} KB (dense matrix would be {:.1} KB)\n",
            pool.oracle_resident_bytes() as f64 / 1e3,
            (n * n * 4) as f64 / 1e3,
        );
    }

    println!(
        "tree-height delta from planning on estimates: tiered {:+.1}%, hot-less {:+.1}%",
        (heights[1] - heights[0]) / heights[0] * 100.0,
        (heights[2] - heights[0]) / heights[0] * 100.0,
    );
}
