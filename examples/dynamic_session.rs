//! Dynamic membership on a live ALM session — the extension §5 of the
//! paper flags ("the algorithm can be extended to accommodate dynamic
//! membership as well").
//!
//! A video conference runs while people join and leave. Joins attach
//! greedily; leavers' orphaned subtrees re-attach; helpers left without
//! children are pruned back to the pool; and a periodic full replan
//! (the session's rescheduling tick) recovers whatever quality incremental
//! repair gave up.
//!
//! Run with: `cargo run --release --example dynamic_session`

use alm::dynamic::{add_member, prune_idle_helpers, remove_member};
use alm::{adjust, critical, HelperPool, Problem};
use p2p_resource_pool::prelude::*;

fn main() {
    let net = Network::generate(
        &NetworkConfig {
            num_hosts: 400,
            ..NetworkConfig::default()
        },
        17,
    );
    let dbound = |h: HostId| net.hosts.degree_bound(h);

    // Initial 14-member session, planned with helpers.
    let mut members: Vec<HostId> = (0..14u32).map(|i| HostId(i * 7)).collect();
    let root = members[0];
    let p = Problem::new(root, members.clone(), &net.latency, dbound);
    let pool = HelperPool::new(net.hosts.ids().collect());
    let mut tree = critical(&p, &pool);
    adjust(&p, &mut tree);
    println!(
        "initial session: {} members, {} helpers, height {:.1} ms",
        members.len(),
        alm::critical::helpers_used(&tree, &members).len(),
        tree.max_height()
    );

    // Churn: 5 joins, 5 leaves.
    let joiners: Vec<HostId> = (0..5u32).map(|i| HostId(200 + i)).collect();
    for j in joiners {
        add_member(&p, &mut tree, j).expect("capacity available");
        members.push(j);
        println!(
            "  + host {:3} joined     → height {:.1} ms ({} nodes)",
            j.0,
            tree.max_height(),
            tree.len()
        );
    }
    for _ in 0..5 {
        // The deepest non-root member leaves.
        let leaver = members
            .iter()
            .copied()
            .filter(|&m| m != root)
            .max_by(|a, b| tree.height_of(*a).partial_cmp(&tree.height_of(*b)).unwrap())
            .unwrap();
        tree = remove_member(&p, &tree, leaver).expect("repair capacity");
        members.retain(|&m| m != leaver);
        println!(
            "  - host {:3} left       → height {:.1} ms ({} nodes)",
            leaver.0,
            tree.max_height(),
            tree.len()
        );
    }

    let reclaimed = prune_idle_helpers(&p, &mut tree, &members);
    println!(
        "pruned {} idle helper(s) back to the pool → height {:.1} ms",
        reclaimed.len(),
        tree.max_height()
    );

    // Periodic rescheduling tick: full replan recovers quality.
    let p2 = Problem::new(root, members.clone(), &net.latency, dbound);
    let mut replanned = critical(&p2, &pool);
    adjust(&p2, &mut replanned);
    println!(
        "periodic full replan     → height {:.1} ms ({} helpers)",
        replanned.max_height(),
        alm::critical::helpers_used(&replanned, &members).len()
    );
    replanned
        .validate(&net.latency, dbound)
        .expect("replanned tree valid");
    println!("\nall trees remained valid through churn; replan recovered the tail latency.");
}
