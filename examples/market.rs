//! Market-driven competition between concurrent ALM sessions (§5.3).
//!
//! Twelve sessions with disjoint member sets and priorities 1–3 start and
//! end at random times over a simulated hour; each plans with
//! Leafset+adjust and competes for helper degrees purely via its priority.
//! Higher classes end up with more helpers and better trees — no global
//! scheduler anywhere.
//!
//! Run with: `cargo run --release --example market`

use p2p_resource_pool::prelude::*;

fn main() {
    let pool_cfg = PoolConfig {
        net: NetworkConfig {
            num_hosts: 400,
            ..NetworkConfig::default()
        },
        coord_rounds: 6,
        ..PoolConfig::default()
    };
    println!("building a 400-host pool...");
    let pool = ResourcePool::build(&pool_cfg, 11);

    let cfg = MarketConfig {
        sessions: 12,
        member_size: 15,
        horizon: SimTime::from_secs(3600),
        warmup: SimTime::from_secs(600),
        ..MarketConfig::default()
    };
    println!(
        "running market: {} session slots × {} members, one simulated hour...\n",
        cfg.sessions, cfg.member_size
    );
    let out = MarketSim::new(pool, cfg, 5).run();

    println!(
        "{:>9} {:>10} {:>14} {:>12} {:>12}",
        "priority", "plans", "improvement", "helpers", "preemptions"
    );
    for p in 1..=3u8 {
        let c = out.class(p);
        println!(
            "{:>9} {:>10} {:>13.1}% {:>12.2} {:>12}",
            p,
            c.improvement.count(),
            c.improvement.mean() * 100.0,
            c.helpers.mean(),
            c.preemptions
        );
    }
    println!("\ntotal plans executed: {}", out.plans);
    println!("(expect priority 1 to hold the most helpers and suffer the fewest preemptions)");
}
