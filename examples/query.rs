//! Scoped helper discovery and standing queries over the aggregate index.
//!
//! A task manager does not need the whole pool — it needs "the best k idle
//! hosts I can reach", and it wants to hear *when that answer changes*
//! rather than re-scanning every cycle. This example walks both halves of
//! `crates/query` on a live resource pool:
//!
//! 1. top-k discovery: descend the SOMO tree from the session's nearest
//!    ancestor, pruning subtrees whose cached aggregates cannot qualify,
//!    and plan a session from the answer;
//! 2. a threshold subscription: an alarm that fires only when the count of
//!    idle hosts near the session crosses a threshold — silence is free.
//!
//! Run with: `cargo run --release --example query`

use p2p_resource_pool::prelude::*;

fn main() {
    let seed = 77;
    let pool_cfg = PoolConfig {
        net: NetworkConfig {
            num_hosts: 300,
            ..NetworkConfig::default()
        },
        coord_rounds: 5,
        ..PoolConfig::default()
    };
    println!("building a 300-host pool...");
    let mut pool = ResourcePool::build(&pool_cfg, seed);

    // One gather round seeds the index; from here each period costs one
    // constant-size aggregate per inter-host tree edge.
    let t0 = SimTime::from_secs(10);
    let mut index = pool.build_query_index(SimTime::from_secs(60), t0);
    println!(
        "index built: staleness bound {:?} (gather period 60s over {} hosts)\n",
        index.freshness_bound(),
        pool.num_hosts()
    );

    // --- Part 1: top-k discovery -----------------------------------------
    let members = pool.sample_members(12, 3);
    let root = members[0];
    let now = t0 + SimTime::from_secs(5);

    let scope = index
        .member_of(root)
        .map(|m| Scope::Nearest { member: m as u32 })
        .unwrap_or(Scope::Global);
    let ans = index.top_k(8, 3, 4, &members, scope);
    println!("top-8 idle helpers near the session root (rank 3, ≥4 degrees):");
    for s in &ans.hosts {
        println!(
            "  host {:>4}  free {:?}  pos [{:>6.1}, {:>6.1}]",
            s.host.0, s.free, s.pos[0], s.pos[1]
        );
    }
    println!(
        "answer cost: {} messages / {} bytes, {} subtrees pruned; staleness {:?} ≤ bound {:?}\n",
        ans.stats.messages,
        ans.stats.bytes,
        ans.stats.subtrees_pruned,
        ans.freshness.staleness(now),
        ans.freshness.bound,
    );

    // Plan straight from the index — no pool-wide snapshot anywhere.
    let spec = SessionSpec {
        id: SessionId(1),
        priority: 2,
        root,
        members,
    };
    let out = plan_and_reserve_from_query(&mut pool, &spec, &PlanConfig::default(), &mut index);
    println!(
        "planned session: {} helpers recruited, {:.1}% height improvement over members-only\n",
        out.helpers.len(),
        out.improvement * 100.0
    );

    // --- Part 2: a standing threshold query ------------------------------
    let center = pool.host_sample(root, now).expect("root is alive").pos;
    let mut subs = SubscriptionSet::new();
    let baseline = index.range(center, 150.0, 3, 4).hosts.len() as u64;
    let threshold = baseline / 2;
    let sub = subs.subscribe(
        index.member_of(root).unwrap_or(0) as u32,
        center,
        150.0,
        3,
        4,
        threshold,
    );
    println!(
        "subscription {sub}: alarm if idle hosts within 150ms of the root drop below {threshold} (now: {baseline})"
    );
    let deltas = subs.evaluate(&mut index, now);
    println!(
        "first evaluation: {} deltas (healthy pool starts silent)",
        deltas.len()
    );

    // A failure wave knocks out half the neighbourhood...
    let victims: Vec<HostId> = index
        .range(center, 150.0, 3, 4)
        .hosts
        .iter()
        .map(|s| s.host)
        .take((baseline as usize).div_ceil(2) + 1)
        .collect();
    for &v in &victims {
        pool.kill_host(v);
    }
    let t1 = t0 + SimTime::from_secs(60);
    pool.refresh_query_index(&mut index, t1);
    for d in subs.evaluate(&mut index, t1) {
        println!(
            "  [{:?}] subscription {} fired: count {} {} threshold {threshold}",
            d.at,
            d.sub,
            d.count,
            if d.below {
                "dropped below"
            } else {
                "recovered to ≥"
            },
        );
    }

    // ...and the all-clear fires exactly once when they come back.
    for &v in &victims {
        pool.revive_host(v);
    }
    let t2 = t1 + SimTime::from_secs(60);
    pool.refresh_query_index(&mut index, t2);
    for d in subs.evaluate(&mut index, t2) {
        println!(
            "  [{:?}] subscription {} fired: count {} {} threshold {threshold}",
            d.at,
            d.sub,
            d.count,
            if d.below {
                "dropped below"
            } else {
                "recovered to ≥"
            },
        );
    }
    println!(
        "\ndelta dissemination cost so far: {} bytes (piggybacked on the newscast)",
        subs.traffic().bytes
    );
}
