//! Quickstart: build a P2P resource pool and schedule one ALM session.
//!
//! Reproduces the Figure 1 narrative: first the best plan using only the
//! session's own members (AMCast), then a better plan that splices in an
//! idle high-degree helper found through the pool.
//!
//! Run with: `cargo run --release --example quickstart`

use p2p_resource_pool::prelude::*;
use pool::task_manager::members_only_baseline;

fn main() {
    // A scaled-down pool so the example runs in a second or two.
    let cfg = PoolConfig {
        net: NetworkConfig {
            num_hosts: 300,
            ..NetworkConfig::default()
        },
        coord_rounds: 6,
        ..PoolConfig::default()
    };
    println!("building resource pool (underlay + ring + coordinates + bandwidth)...");
    let mut pool = ResourcePool::build(&cfg, 42);

    // A small video-conference-sized session: 12 members.
    let members = pool.sample_members(12, 7);
    let spec = SessionSpec {
        id: SessionId(1),
        priority: 1,
        root: members[0],
        members,
    };

    // Members-only baseline (AMCast).
    let baseline = members_only_baseline(&pool, &spec);
    println!("\nAMCast members-only plan:      height = {baseline:.1} ms");

    // The task manager plans with pool helpers (oracle latencies here, so
    // the effect of the helpers is isolated from coordinate error).
    let outcome = plan_and_reserve(
        &mut pool,
        &spec,
        &PlanConfig {
            model: PlanModel::Oracle,
            ..PlanConfig::default()
        },
    );
    println!(
        "critical-node plan w/ helpers: height = {:.1} ms  ({:+.1}% improvement, {} helpers)",
        outcome.oracle_height,
        outcome.improvement * 100.0,
        outcome.helpers.len()
    );

    println!("\nresulting tree (□ marks pool helpers):");
    print_tree(&outcome.tree, &spec, outcome.tree.root(), 0);
}

fn print_tree(tree: &MulticastTree, spec: &SessionSpec, node: HostId, depth: usize) {
    let marker = if spec.members.contains(&node) {
        "○"
    } else {
        "□"
    };
    println!(
        "{}{} host {:4}  (height {:.1} ms)",
        "  ".repeat(depth),
        marker,
        node.0,
        tree.height_of(node)
    );
    let mut kids = tree.children_of(node);
    kids.sort_unstable();
    for c in kids {
        print_tree(tree, spec, c, depth + 1);
    }
}
