//! The paper's motivating scenario (§2.1): a corporation with thousands of
//! geographically distributed machines runs a handful of small
//! video-conference sessions at any given hour. Each session taps the
//! resource pool for idle helpers; higher-priority meetings get better
//! trees.
//!
//! Run with: `cargo run --release --example videoconf`

use p2p_resource_pool::prelude::*;

fn main() {
    let cfg = PoolConfig {
        net: NetworkConfig {
            num_hosts: 600,
            ..NetworkConfig::default()
        },
        coord_rounds: 8,
        ..PoolConfig::default()
    };
    println!("building a 600-host corporate resource pool...");
    let mut pool = ResourcePool::build(&cfg, 7);

    // Three concurrent meetings with different priorities: an executive
    // review (1), a team standup (2) and a casual chat (3). Disjoint
    // participant sets of 15.
    let sets = pool.partition_members(3, 15, 99);
    let names = ["executive review", "team standup", "casual chat"];
    let mut outcomes = Vec::new();
    for (i, members) in sets.into_iter().enumerate() {
        let spec = SessionSpec {
            id: SessionId(i as u32),
            priority: i as u8 + 1,
            root: members[0],
            members,
        };
        // Practical planning: leafset coordinates + adjustment, helpers on.
        let out = plan_and_reserve(&mut pool, &spec, &PlanConfig::default());
        outcomes.push((names[i], spec.priority, out));
    }

    println!(
        "\n{:<18} {:>8} {:>12} {:>12} {:>9} {:>8}",
        "session", "priority", "AMCast (ms)", "actual (ms)", "improve", "helpers"
    );
    for (name, prio, out) in &outcomes {
        println!(
            "{:<18} {:>8} {:>12.1} {:>12.1} {:>8.1}% {:>8}",
            name,
            prio,
            out.baseline_height,
            out.oracle_height,
            out.improvement * 100.0,
            out.helpers.len()
        );
    }

    // The executive review can steal helpers the chat holds; show a degree
    // table of a contended host if any helper overlaps.
    let total: u32 = pool.total_used();
    println!("\npool degrees reserved across all sessions: {total}");
    if let Some((_, _, out)) = outcomes.first() {
        if let Some(&h) = out.helpers.first() {
            let t = pool.table(h);
            println!("\ndegree table of helper host {} (Figure 9 style):", h.0);
            println!("  d_bound = {}", t.dbound());
            for a in t.allocations() {
                println!(
                    "  rank {} -> {} degree(s) held by session {}",
                    a.rank.0, a.count, a.session.0
                );
            }
            println!("  free    = {}", t.free());
        }
    }
}
