//! LiquidEye (§3.2): a SOMO-based global performance monitor.
//!
//! The paper's authors monitor 100+ lab machines by gathering per-machine
//! performance counters through SOMO and querying the root report. They
//! test stability by unplugging cables: "each time the global view is
//! regenerated after a short jitter."
//!
//! This example reproduces that experiment on the simulator: a 128-node
//! ring gathers a load census every 5 s (the paper's reporting cycle);
//! midway we kill a machine and watch the census dip and the tree remap.
//!
//! Run with: `cargo run --release --example monitor`

use p2p_resource_pool::prelude::*;
use somo::flow::{FlowMode, GatherSim};
use somo::heal::{optimize_root, remap_stats};
use somo::report::CensusReport;

fn main() {
    let n = 128u32;
    let net = Network::generate(
        &NetworkConfig {
            num_hosts: n as usize,
            ..NetworkConfig::default()
        },
        3,
    );
    let mut ring = Ring::with_random_ids((0..n).map(HostId), 17);

    // Put the most capable machine at the SOMO root (the §3.2 ID swap).
    let best = optimize_root(&mut ring, |h| net.hosts.degree_bound(h) as f64).unwrap();
    println!(
        "root swap: most capable machine is host {} — now hosting the SOMO root",
        best.0
    );

    let tree = SomoTree::build(&ring, 8);
    println!(
        "SOMO tree: {} logical nodes, depth {}, fanout 8 over {} machines\n",
        tree.len(),
        tree.depth(),
        ring.len()
    );

    // Phase 1: healthy gather, 5 s reporting cycle.
    let period = SimTime::from_secs(5);
    let mut sim = GatherSim::new(
        &tree,
        &ring,
        FlowMode::Synchronized,
        period,
        |member, _now| CensusReport::of_member(member as f64 % 7.0), // fake load counter
        |a, b| {
            if a == b {
                SimTime::ZERO
            } else {
                SimTime::from_millis(50)
            }
        },
    );
    sim.run_until(SimTime::from_secs(30));
    for v in sim.views() {
        println!(
            "t={:>8}  census: {:>3} machines, aggregate load {:>6.1}",
            format!("{}", v.at),
            v.view.members,
            v.view.free_capacity
        );
    }

    // Phase 2: unplug a cable — kill one machine, rebuild, regather.
    let victim_idx = ring.len() / 2;
    let victim = ring.member(victim_idx);
    println!("\n*** unplugging host {} ***\n", victim.host.0);
    let before_ring = ring.clone();
    ring.remove_id(victim.id).unwrap();
    let tree2 = SomoTree::build(&ring, 8);
    let stats = remap_stats(&tree, &before_ring, &tree2, &ring);
    println!(
        "tree self-healed: {} logical nodes ({:.1}% of survivors remapped, {} dropped, {} created)",
        stats.total,
        stats.remap_fraction() * 100.0,
        stats.dropped,
        stats.created
    );

    let mut sim2 = GatherSim::new(
        &tree2,
        &ring,
        FlowMode::Synchronized,
        period,
        |member, _now| CensusReport::of_member(member as f64 % 7.0),
        |a, b| {
            if a == b {
                SimTime::ZERO
            } else {
                SimTime::from_millis(50)
            }
        },
    );
    sim2.run_until(SimTime::from_secs(15));
    for v in sim2.views() {
        println!(
            "t={:>8}  census: {:>3} machines, aggregate load {:>6.1}",
            format!("{}", v.at),
            v.view.members,
            v.view.free_capacity
        );
    }
    println!("\nglobal view regenerated after a short jitter — exactly the LiquidEye behaviour.");
}
