//! Offline stand-in for `serde_json`.
//!
//! The vendored `serde` collapses serde's data model to one JSON-like tree
//! ([`Value`]); this crate is the matching printer ([`to_string`],
//! [`to_string_pretty`]), parser ([`from_str`]) and [`json!`] constructor.
//! Only the API surface this workspace uses is provided.

pub use serde::de::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Render any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_json_value()
}

/// Compact JSON text for any serializable value.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    Ok(v.to_json_value().to_string())
}

/// Pretty-printed JSON (2-space indent) for any serializable value.
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    pretty(&v.to_json_value(), 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    use std::fmt::Write;
    const STEP: usize = 2;
    match v {
        Value::Array(xs) if !xs.is_empty() => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                pretty(x, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(o) if !o.is_empty() => {
            out.push('{');
            for (i, (k, x)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                serde::write_escaped(out, k).expect("string write");
                out.push_str(": ");
                pretty(x, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => {
            write!(out, "{other}").expect("string write");
        }
    }
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_json_value(&value)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{word}` at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                self.eat_word("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.eat_word("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.eat_word("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => {
                self.eat(b'[')?;
                let mut xs = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                loop {
                    xs.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(xs));
                        }
                        c => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]`, got `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.eat(b'{')?;
                let mut o = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(o));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    let val = self.value()?;
                    o.push((key, val));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(o));
                        }
                        c => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}`, got `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::custom(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        c => return Err(Error::custom(format!("bad escape `\\{}`", c as char))),
                    }
                }
                _ => {
                    // Re-decode UTF-8: step back and take the full char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a [`Value`] from JSON-looking syntax. Supports object and array
/// literals (nestable), `null`, and arbitrary serializable expressions as
/// values — the subset of `serde_json::json!` this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(clippy::vec_init_then_push)]
        let __arr = {
            let mut __arr: Vec<$crate::Value> = Vec::new();
            $crate::json_elems!(__arr; $($tt)*);
            __arr
        };
        $crate::Value::Array(__arr)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(clippy::vec_init_then_push)]
        let __obj = {
            let mut __obj: Vec<(String, $crate::Value)> = Vec::new();
            $crate::json_entries!(__obj; $($tt)*);
            __obj
        };
        $crate::Value::Object(__obj)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal helper for [`json!`] object bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $( $crate::json_entries!($obj; $($rest)*); )?
    };
    ($obj:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $( $crate::json_entries!($obj; $($rest)*); )?
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $( $crate::json_entries!($obj; $($rest)*); )?
    };
    ($obj:ident; $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::to_value(&$val)));
        $( $crate::json_entries!($obj; $($rest)*); )?
    };
}

/// Internal helper for [`json!`] array bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_elems {
    ($arr:ident;) => {};
    ($arr:ident; null $(, $($rest:tt)*)?) => {
        $arr.push($crate::Value::Null);
        $( $crate::json_elems!($arr; $($rest)*); )?
    };
    ($arr:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($inner)* }));
        $( $crate::json_elems!($arr; $($rest)*); )?
    };
    ($arr:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $( $crate::json_elems!($arr; $($rest)*); )?
    };
    ($arr:ident; $val:expr $(, $($rest:tt)*)?) => {
        $arr.push($crate::to_value(&$val));
        $( $crate::json_elems!($arr; $($rest)*); )?
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&5u32).unwrap(), "5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        let x: f64 = from_str("5").unwrap();
        assert_eq!(x, 5.0);
        let y: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(y, u64::MAX);
    }

    #[test]
    fn round_trip_float_exact() {
        for &f in &[0.1, 1.0 / 3.0, 12345.6789, f64::MIN_POSITIVE, 1e300] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "float {f} did not round-trip via {s}");
        }
    }

    #[test]
    fn json_macro_shapes() {
        let rows = vec![json!({"a": 1}), json!({"a": 2})];
        let v = json!({
            "n": 5,
            "nested": {"x": 1.5, "deep": {"y": [1, 2, 3]}},
            "rows": rows,
            "s": "text",
            "none": null,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(5));
        assert_eq!(
            v.get("nested")
                .and_then(|n| n.get("x"))
                .and_then(Value::as_f64),
            Some(1.5)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\n\"quoted\"\tand \\ unicode: \u{1F600}";
        let j = to_string(&s).unwrap();
        let back: String = from_str(&j).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"rows": [{"a": 1}, {"b": [true, false]}], "empty": []});
        let p = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&p).unwrap();
        assert_eq!(back, v);
        assert!(p.contains('\n'));
    }
}
