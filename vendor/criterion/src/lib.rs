//! Offline stand-in for `criterion`: the benchmark-group API surface this
//! workspace's `harness = false` benches use, timed with `std::time::Instant`
//! and reported as plain text. No statistics engine, no HTML reports, no
//! CLI filtering — every registered benchmark runs, quickly, and prints a
//! median ns/iter. Command-line arguments (cargo passes `--bench`/`--test`)
//! are accepted and ignored.

use std::fmt::Display;
use std::time::Instant;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name, param),
        }
    }

    /// A parameter-only id, rendered as the parameter alone.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Runs closures under timing; handed to bench bodies.
pub struct Bencher {
    samples: usize,
    per_iter: Vec<f64>,
}

impl Bencher {
    /// Time `f`, batching iterations so each sample spans at least ~2 ms,
    /// and record `samples` samples. Returns `()` like upstream criterion,
    /// so `b.iter(...)` can be a bench closure's tail expression.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Estimate per-iteration cost to pick a batch size.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let est_ns = t0.elapsed().as_nanos().max(1) as u64;
        let batch = (2_000_000u64 / est_ns).clamp(1, 10_000);
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.per_iter = per_iter;
    }

    fn median_ns(&self) -> f64 {
        let mut xs = self.per_iter.clone();
        if xs.is_empty() {
            return 0.0;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[xs.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timing samples per benchmark (capped to keep the
    /// stand-in fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 20);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            per_iter: Vec::new(),
        };
        let before = Instant::now();
        f(&mut b, input);
        println!(
            "bench {}/{}: median {:.0} ns/iter, done in {:.1} ms ({} samples)",
            self.name,
            id.label,
            b.median_ns(),
            before.elapsed().as_secs_f64() * 1e3,
            self.sample_size
        );
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            per_iter: Vec::new(),
        };
        let before = Instant::now();
        f(&mut b);
        let id = id.into();
        println!(
            "bench {}/{}: median {:.0} ns/iter, done in {:.1} ms ({} samples)",
            self.name,
            id.label,
            b.median_ns(),
            before.elapsed().as_secs_f64() * 1e3,
            self.sample_size
        );
        self
    }

    /// Close the group (marker for parity with upstream; prints a ruler).
    pub fn finish(self) {
        println!("group {}: finished", self.name);
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Define a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running each group (ignoring harness CLI arguments).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench/test pass flags like --bench; accept and ignore.
            let _ = std::env::args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| {
                total = total.wrapping_add(n);
                total
            });
        });
        g.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| 1 + 1);
        });
        g.finish();
    }
}
