//! Offline stand-in for `proptest`: the subset this workspace's property
//! tests use — `proptest!` with an optional `proptest_config` header,
//! `name in strategy` / `name: Type` parameters, integer/float range
//! strategies, `any::<T>()`, strategy tuples, `collection::{vec,
//! btree_set}`, `bool::ANY`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Cases are generated from a seed derived deterministically from the test
//! name and case index, so runs are reproducible. There is no shrinking:
//! a failing case panics with the assertion message directly (the RNG is
//! deterministic, so the case is re-hit by re-running the test).

pub use rand::rngs::StdRng;

/// Runner configuration.
pub mod test_runner {
    use rand::SeedableRng;

    /// Case-count configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic per-case RNG: seed mixes an FNV-1a hash of the test
    /// name with the case index.
    pub fn case_rng(test_name: &str, case: u32) -> super::StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        super::StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37_79b9))
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Generates values of `Self::Value` from a seeded RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngCore;

    /// Types with a canonical whole-domain generation strategy.
    pub trait Arbitrary {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut StdRng) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngCore;

    /// Strategy yielding unbiased booleans.
    pub struct BoolAny;

    /// Uniform over `{true, false}`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size.start..size.end` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with cardinality drawn from a range.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A set of roughly `size` distinct elements from `element`. If the
    /// element domain is too small to reach the target cardinality, the set
    /// is returned with as many distinct values as a bounded number of
    /// draws produced (matching proptest's best-effort semantics).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The glob-import surface used by tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests. Supports an optional
/// `#![proptest_config(expr)]` header and any number of
/// `#[test] fn name(params) { .. }` items, where each parameter is either
/// `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr); #[test] fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::case_rng(stringify!($name), __case);
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Assert a condition inside a property test (panics on failure — this
/// stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current generated case when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn typed_params_and_assume(a: u64, flip: bool) {
            prop_assume!(a != 0);
            prop_assert!(a > 0 || flip);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec((0u8..4, crate::bool::ANY), 2..9),
            s in crate::collection::btree_set(any::<u64>(), 1..20),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!((1..20).contains(&s.len()));
            for (n, _) in v {
                prop_assert!(n < 4);
            }
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let a = crate::test_runner::case_rng("t", 3).next_u64();
        let b = crate::test_runner::case_rng("t", 3).next_u64();
        let c = crate::test_runner::case_rng("t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
