//! Offline stand-in for `crossbeam`: just `crossbeam::thread::scope`, which
//! the workspace uses for fan-out parallelism. Mirrors crossbeam's design —
//! a `Scope<'env>` carrying only the environment lifetime, with every
//! spawned thread joined before `scope` returns (which is what makes the
//! lifetime-erasing transmute in `spawn` sound).

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::marker::PhantomData;
    use std::mem;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    type Panic = Box<dyn Any + Send + 'static>;

    struct SendPtr<T>(*const T);
    // SAFETY: only used to pass the scope reference into threads that are
    // joined before the scope is dropped.
    unsafe impl<T: Sync> Send for SendPtr<T> {}

    /// A handle to spawn scoped threads, mirroring
    /// `crossbeam::thread::Scope`'s `spawn(|_| ...)` shape (the closure
    /// receives the scope again; the workspace ignores it).
    pub struct Scope<'env> {
        handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
        panics: Mutex<Vec<Panic>>,
        _env: PhantomData<&'env mut &'env ()>,
    }

    impl<'env> Scope<'env> {
        /// Spawn a scoped thread; joined automatically at scope exit.
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(&Scope<'env>) -> T + Send + 'env,
            T: Send + 'env,
        {
            let ptr = SendPtr(self as *const Scope<'env>);
            let closure: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                // Capture the whole SendPtr wrapper, not just the raw-pointer
                // field (edition-2021 disjoint capture would otherwise grab
                // the non-Send `*const` directly).
                let ptr = ptr;
                // SAFETY: the scope outlives every spawned thread (all are
                // joined in `scope` before it returns).
                let scope = unsafe { &*ptr.0 };
                if let Err(e) = catch_unwind(AssertUnwindSafe(|| {
                    f(scope);
                })) {
                    scope.panics.lock().unwrap().push(e);
                }
            });
            // SAFETY: 'env strictly outlives all threads for the same
            // join-before-return reason, so erasing it to 'static is sound.
            let closure: Box<dyn FnOnce() + Send + 'static> = unsafe { mem::transmute(closure) };
            let handle = std::thread::spawn(closure);
            self.handles.lock().unwrap().push(handle);
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. `Err` carries a panic payload if `f` or any spawned thread
    /// panicked — matching crossbeam's signature (callers `.expect()` it).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Panic>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let scope = Scope {
            handles: Mutex::new(Vec::new()),
            panics: Mutex::new(Vec::new()),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Join until quiescent: a spawned thread may itself have spawned.
        loop {
            let batch = mem::take(&mut *scope.handles.lock().unwrap());
            if batch.is_empty() {
                break;
            }
            for h in batch {
                // The thread catches its own panic; join only fails if the
                // catch itself was bypassed (e.g. abort), so propagate.
                let _ = h.join();
            }
        }
        let mut panics = scope.panics.into_inner().unwrap();
        match result {
            Err(e) => Err(e),
            Ok(_) if !panics.is_empty() => Err(panics.remove(0)),
            Ok(r) => Ok(r),
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_slots() {
        let mut out = vec![0usize; 24];
        super::thread::scope(|s| {
            for (i, chunk) in out.chunks_mut(7).enumerate() {
                s.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = i * 7 + j;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(out, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_joins() {
        let flag = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|scope| {
                scope.spawn(|_| {
                    flag.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(flag.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
