//! Offline stand-in for the `bytes` crate: the small encode-only subset the
//! workspace uses (`BytesMut` + `BufMut` put-methods + `freeze`), backed by
//! a plain `Vec<u8>`. No zero-copy reference counting — nothing here is on
//! a hot path that needs it.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// A buffer borrowing a static slice (copied here — the stand-in does
    /// not track lifetimes the way upstream's ref-counted buffer does).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Convert to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

/// Append-only writing of fixed-width values (big-endian, like upstream's
/// default put methods).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_and_freeze() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_f64(1.5);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 4 + 8 + 8);
        assert_eq!(frozen[0], 1);
        assert_eq!(&frozen[1..5], &0xDEAD_BEEFu32.to_be_bytes());
    }

    #[test]
    fn from_static_copies() {
        let b = Bytes::from_static(&[0u8; 40]);
        assert_eq!(b.len(), 40);
    }
}
