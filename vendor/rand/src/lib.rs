//! Offline stand-in for the `rand` crate.
//!
//! This workspace must build without crates.io access, so the external
//! `rand` dependency is replaced by this vendored implementation of the
//! exact API subset the workspace uses: [`RngCore`], [`Rng`] (with
//! `random` / `random_range` / `random_bool`), [`SeedableRng`]'s
//! `seed_from_u64`, [`rngs::StdRng`] and [`seq::SliceRandom`]'s `shuffle`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through a
//! SplitMix64 expansion — a different stream than upstream `StdRng`
//! (which is documented as non-portable across versions anyway), but fully
//! deterministic: the workspace's reproducibility guarantees depend only on
//! same-seed → same-stream, which this provides.

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole value range (the subset of
/// upstream's `StandardUniform` distribution this workspace needs).
pub trait FromRandom {
    /// Sample a value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl FromRandom for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly for an output type `T`.
pub trait SampleRange<T> {
    /// Sample a value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Widening-multiply map of a 64-bit word onto [0, span):
                // bias is < 2^-64 per sample, far below observable here.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64) + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + v as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = FromRandom::from_rng(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample over `T`'s whole value range.
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never relies on `SmallRng` being distinct.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0..3usize);
            assert!(y < 3);
            let f = rng.random_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn dyn_rngcore_usable() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn super::RngCore = &mut rng;
        let f = dyn_rng.random::<f64>();
        assert!((0.0..1.0).contains(&f));
    }
}
