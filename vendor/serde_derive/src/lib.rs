//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` stand-in's collapsed data model (one JSON-like
//! `Value` tree) — without `syn`/`quote`, by walking the raw
//! `proc_macro::TokenStream`. Supported shapes are exactly what this
//! workspace derives on:
//!
//! * structs with named fields → JSON objects keyed by field name,
//! * newtype structs → transparent (the inner value),
//! * other tuple structs → arrays,
//! * enums with unit variants → the variant name as a string,
//! * enums with tuple/struct variants → `{"Variant": <payload>}`.
//!
//! Generics and `#[serde(...)]` attributes are not supported (none are used
//! in this workspace) and produce a compile error rather than wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let code = match parse_shape(input) {
        Ok(shape) => {
            if ser {
                gen_serialize(&shape)
            } else {
                gen_deserialize(&shape)
            }
        }
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip `#[...]` attribute sequences (doc comments included).
    fn skip_attrs(&mut self) {
        loop {
            match (self.peek(), self.toks.get(self.pos + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    self.pos += 2;
                }
                _ => return,
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    /// Skip tokens until a top-level comma (angle-bracket aware), consuming
    /// the comma. Used to skip field types and enum discriminants.
    fn skip_until_comma(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle <= 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kw = c.expect_ident()?;
    let is_enum = match kw.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    let name = c.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive stand-in: generic type `{name}` not supported"
            ));
        }
    }
    let body = match c.next() {
        Some(TokenTree::Group(g)) => g,
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            // Unit struct.
            return Ok(Shape::TupleStruct { name, arity: 0 });
        }
        other => return Err(format!("expected item body, got {other:?}")),
    };
    if is_enum {
        let variants = parse_variants(body.stream())?;
        Ok(Shape::Enum { name, variants })
    } else {
        match body.delimiter() {
            Delimiter::Brace => Ok(Shape::NamedStruct {
                name,
                fields: parse_named_fields(body.stream())?,
            }),
            Delimiter::Parenthesis => Ok(Shape::TupleStruct {
                name,
                arity: count_tuple_fields(body.stream()),
            }),
            d => Err(format!("unexpected struct body delimiter {d:?}")),
        }
    }
}

fn parse_named_fields(ts: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            return Ok(fields);
        }
        c.skip_vis();
        fields.push(c.expect_ident()?);
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, got {other:?}")),
        }
        c.skip_until_comma();
    }
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    if c.peek().is_none() {
        return 0;
    }
    let mut n = 1;
    let mut angle = 0i32;
    while let Some(t) = c.next() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle <= 0 && c.peek().is_some() => n += 1,
                _ => {}
            }
        }
    }
    n
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            return Ok(variants);
        }
        let name = c.expect_ident()?;
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.pos += 1;
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.pos += 1;
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        c.skip_until_comma();
        variants.push(Variant { name, shape });
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), serde::Serialize::to_json_value(&self.{f})),")
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                   fn to_json_value(&self) -> serde::Value {{\n\
                     serde::Value::Object(vec![{entries}])\n\
                   }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = match arity {
                0 => "serde::Value::Null".to_string(),
                1 => "serde::Serialize::to_json_value(&self.0)".to_string(),
                n => {
                    let elems: String = (0..*n)
                        .map(|i| format!("serde::Serialize::to_json_value(&self.{i}),"))
                        .collect();
                    format!("serde::Value::Array(vec![{elems}])")
                }
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                   fn to_json_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => {
                            format!("{name}::{vn} => serde::Value::String(\"{vn}\".to_string()),")
                        }
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "serde::Serialize::to_json_value(__f0)".to_string()
                            } else {
                                let elems: String = binds
                                    .iter()
                                    .map(|b| format!("serde::Serialize::to_json_value({b}),"))
                                    .collect();
                                format!("serde::Value::Array(vec![{elems}])")
                            };
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(vec![\
                                   (\"{vn}\".to_string(), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), \
                                         serde::Serialize::to_json_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![\
                                   (\"{vn}\".to_string(), \
                                    serde::Value::Object(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                   fn to_json_value(&self) -> serde::Value {{\n\
                     match self {{ {arms} }}\n\
                   }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_json_value(\
                           __v.get(\"{f}\").ok_or_else(|| \
                             serde::de::Error::custom(\"missing field `{f}`\"))?)?,"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                   fn from_json_value(__v: &serde::Value) -> Result<Self, serde::de::Error> {{\n\
                     Ok({name} {{ {inits} }})\n\
                   }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = match arity {
                0 => format!("Ok({name})"),
                1 => format!("Ok({name}(serde::Deserialize::from_json_value(__v)?))"),
                n => {
                    let elems: String = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_json_value(&__xs[{i}])?,"))
                        .collect();
                    format!(
                        "{{ let __xs = __v.as_array().ok_or_else(|| \
                             serde::de::Error::custom(\"expected array\"))?;\n\
                           if __xs.len() != {n} {{ return Err(serde::de::Error::custom(\
                             \"wrong tuple arity\")); }}\n\
                           Ok({name}({elems})) }}"
                    )
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                   fn from_json_value(__v: &serde::Value) -> Result<Self, serde::de::Error> {{\n\
                     {body}\n\
                   }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                               serde::Deserialize::from_json_value(__inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let elems: String = (0..*n)
                                .map(|i| {
                                    format!("serde::Deserialize::from_json_value(&__xs[{i}])?,")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __xs = __inner.as_array()\
                                   .ok_or_else(|| serde::de::Error::custom(\"expected array\"))?;\n\
                                   if __xs.len() != {n} {{ return Err(\
                                     serde::de::Error::custom(\"wrong arity\")); }}\n\
                                   Ok({name}::{vn}({elems})) }},"
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_json_value(\
                                           __inner.get(\"{f}\").ok_or_else(|| \
                                             serde::de::Error::custom(\
                                               \"missing field `{f}`\"))?)?,"
                                    )
                                })
                                .collect();
                            Some(format!("\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),"))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                   fn from_json_value(__v: &serde::Value) -> Result<Self, serde::de::Error> {{\n\
                     match __v {{\n\
                       serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => Err(serde::de::Error::custom(format!(\
                           \"unknown variant `{{__other}}` of {name}\"))),\n\
                       }},\n\
                       serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                         let (__k, __inner) = &__o[0];\n\
                         let _ = __inner; // unused for unit-only enums\n\
                         match __k.as_str() {{\n\
                           {payload_arms}\n\
                           __other => Err(serde::de::Error::custom(format!(\
                             \"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                       }}\n\
                       __other => Err(serde::de::Error::custom(format!(\
                         \"invalid {name} encoding: {{__other:?}}\"))),\n\
                     }}\n\
                   }}\n\
                 }}"
            )
        }
    }
}
