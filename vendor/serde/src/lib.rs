//! Offline stand-in for `serde`.
//!
//! The real serde separates the data model (Serializer/Deserializer visitor
//! traits) from formats. This workspace only ever serializes to and from
//! JSON via `serde_json`, so the stand-in collapses the data model to one
//! concrete JSON-like tree, [`Value`]: [`Serialize`] renders into it,
//! [`Deserialize`] reads back out of it, and `serde_json` is just a printer
//! and parser for [`Value`]. The `#[derive(Serialize, Deserialize)]` macros
//! (feature `derive`, crate `serde_derive`) generate the same field-by-name
//! object encoding upstream serde would.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like tree: the single data model every serializable type renders
/// into. Object keys keep insertion order so emitted JSON is stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative integer (non-negative integers use [`Value::U64`]).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as f64, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric value as i64, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Look up a key in an object (`None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization errors.
pub mod de {
    use std::fmt;

    /// A deserialization error: a message plus nothing else, like
    /// `serde_json::Error` for all practical purposes here.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl Error {
        /// Build an error from any displayable message.
        pub fn custom(msg: impl fmt::Display) -> Error {
            Error(msg.to_string())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for Error {}
}

/// Render into the [`Value`] data model.
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_json_value(&self) -> Value;
}

/// Rebuild from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse `self` out of a value tree.
    fn from_json_value(v: &Value) -> Result<Self, de::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and standard containers.
// ---------------------------------------------------------------------------

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_json_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        // Sort for stable output: HashMap iteration order is not.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

fn type_err<T>(expected: &str, got: &Value) -> Result<T, de::Error> {
    Err(de::Error::custom(format!(
        "expected {expected}, got {got:?}"
    )))
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, de::Error> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| de::Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| de::Error::custom(format!("{n} out of range"))),
                    _ => type_err("integer", v),
                }
            }
        }
    )*};
}
impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64()
            .ok_or_else(|| de::Error::custom("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        Ok(f64::from_json_value(v)? as f32)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => type_err("bool", v),
        }
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => type_err("string", v),
        }
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_json_value).collect(),
            _ => type_err("array", v),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        let xs = match v {
            Value::Array(xs) => xs,
            _ => return type_err("array", v),
        };
        if xs.len() != N {
            return Err(de::Error::custom(format!(
                "expected array of {N}, got {}",
                xs.len()
            )));
        }
        let parsed: Vec<T> = xs
            .iter()
            .map(T::from_json_value)
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| de::Error::custom("array length changed"))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        let xs = match v {
            Value::Array(xs) if xs.len() == 2 => xs,
            _ => return type_err("2-tuple", v),
        };
        Ok((A::from_json_value(&xs[0])?, B::from_json_value(&xs[1])?))
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
                .collect(),
            _ => type_err("object", v),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
                .collect(),
            _ => type_err("object", v),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compact JSON; serde_json renders through this too.
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    write!(f, "null") // JSON has no NaN/inf, like serde_json
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(xs) => {
                write!(f, "[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::Object(o) => {
                write!(f, "{{")?;
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Write a JSON string literal with escapes.
pub fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            '\u{08}' => write!(f, "\\b")?,
            '\u{0C}' => write!(f, "\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}
