//! Full-stack integration tests: underlay → DHT → metrics → SOMO → ALM
//! scheduling, exercised together the way a deployment would.

use p2p_resource_pool::prelude::*;
use pool::task_manager::members_only_baseline;
use somo::flow::{FlowMode, GatherSim};

fn small_pool(seed: u64) -> ResourcePool {
    ResourcePool::build(
        &PoolConfig {
            net: NetworkConfig {
                num_hosts: 300,
                ..NetworkConfig::default()
            },
            coord_rounds: 6,
            ..PoolConfig::default()
        },
        seed,
    )
}

#[test]
fn pool_build_produces_consistent_state() {
    let pool = small_pool(1);
    assert_eq!(pool.num_hosts(), 300);
    assert_eq!(pool.ring.len(), 300);
    // Coordinates predict latency with sane error on average.
    let pairs = coords::eval::random_pairs(pool.num_hosts(), 500, 9);
    let cdf = coords::relative_error_cdf(&pool.net.latency, &pool.coords, &pairs);
    let median = cdf.quantile(0.5).unwrap();
    assert!(median < 0.5, "coordinate median relative error {median}");
    // Bandwidth estimates are positive for every ring member and bounded
    // by capacity.
    for (h, host) in pool.net.hosts.iter() {
        assert!(pool.bw.up(h) > 0.0);
        assert!(pool.bw.up(h) <= host.bandwidth.up_kbps * 1.001);
    }
}

#[test]
fn somo_gathers_the_same_candidates_the_pool_reports() {
    // The facade's snapshot_report must equal what actually flows through
    // a full SOMO gather over the ring.
    let pool = small_pool(2);
    let tree = SomoTree::build(&pool.ring, pool.somo_fanout);
    let snapshot = pool.snapshot_report(usize::MAX);

    let mut sim = GatherSim::new(
        &tree,
        &pool.ring,
        FlowMode::Synchronized,
        SimTime::from_secs(5),
        |member, _now| {
            let h = pool.ring.member(member).host;
            let t = pool.table(h);
            pool::ResourceReport::of_member(pool::CandidateEntry {
                host: h,
                avail: [
                    t.available_at(Rank::MEMBER),
                    t.available_at(Rank::helper(1)),
                    t.available_at(Rank::helper(2)),
                    t.available_at(Rank::helper(3)),
                ],
            })
        },
        |a, b| {
            if a == b {
                SimTime::ZERO
            } else {
                SimTime::from_millis(40)
            }
        },
    );
    sim.run_until(SimTime::from_secs(30));
    let view = &sim.views().last().expect("no root view").view;
    // Same candidate set (the snapshot is uncapped; the default report cap
    // keeps the best 512, which here is everything).
    assert_eq!(view.entries.len(), pool.num_hosts());
    let mut a: Vec<_> = view.entries.clone();
    let mut b: Vec<_> = snapshot.entries.clone();
    a.sort_by_key(|e| e.host);
    b.sort_by_key(|e| e.host);
    assert_eq!(a, b, "SOMO root view disagrees with the pool snapshot");
}

#[test]
fn task_manager_plans_from_a_newscast_delivered_view() {
    // The complete deployment story: every host publishes its degree table
    // through SOMO; the full newscast cycle (gather + disseminate) delivers
    // the aggregated view to every member; a session root plans from *its
    // own delivered copy* of the view — never touching global state.
    use somo::newscast::NewscastSim;

    let mut pool = small_pool(7);
    let tree = SomoTree::build(&pool.ring, pool.somo_fanout);
    let mut sim = NewscastSim::new(
        &tree,
        &pool.ring,
        SimTime::from_secs(5),
        |member, _now| {
            let h = pool.ring.member(member).host;
            let t = pool.table(h);
            pool::ResourceReport::of_member(pool::CandidateEntry {
                host: h,
                avail: [
                    t.available_at(Rank::MEMBER),
                    t.available_at(Rank::helper(1)),
                    t.available_at(Rank::helper(2)),
                    t.available_at(Rank::helper(3)),
                ],
            })
        },
        |a, b| {
            if a == b {
                SimTime::ZERO
            } else {
                SimTime::from_millis(40)
            }
        },
    );
    sim.run_until(SimTime::from_secs(20));

    // Pick a session whose root actually received a delivery.
    let members = pool.sample_members(15, 3);
    let root = members[0];
    let root_member_idx = pool
        .ring
        .members()
        .iter()
        .position(|m| m.host == root)
        .expect("root is in the ring");
    let view = sim
        .deliveries()
        .iter()
        .rev()
        .find(|d| d.member == root_member_idx)
        .expect("root never received the newscast")
        .view
        .clone();
    assert!(!view.entries.is_empty());

    let spec = SessionSpec {
        id: SessionId(1),
        priority: 1,
        root,
        members,
    };
    let out = pool::task_manager::plan_and_reserve_from_view(
        &mut pool,
        &spec,
        &PlanConfig {
            model: PlanModel::Oracle,
            ..PlanConfig::default()
        },
        &view,
    );
    assert_eq!(out.helper_failures, 0, "view was fresh; nothing may fail");
    out.tree
        .validate(&pool.net.latency, |h| pool.net.hosts.degree_bound(h))
        .unwrap();
    assert!(out.improvement > -0.05, "improvement {}", out.improvement);
}

#[test]
fn end_to_end_session_beats_baseline_with_oracle_planning() {
    let mut pool = small_pool(3);
    let mut improvements = Vec::new();
    for i in 0..5 {
        let members = pool.sample_members(20, 100 + i);
        let spec = SessionSpec {
            id: SessionId(i as u32),
            priority: 1,
            root: members[0],
            members,
        };
        let out = plan_and_reserve(
            &mut pool,
            &spec,
            &PlanConfig {
                model: PlanModel::Oracle,
                ..PlanConfig::default()
            },
        );
        out.tree
            .validate(&pool.net.latency, |h| pool.net.hosts.degree_bound(h))
            .unwrap();
        improvements.push(out.improvement);
        pool.release_session(spec.id);
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    assert!(
        avg > 0.1,
        "oracle Critical+adjust average improvement {avg}"
    );
}

#[test]
fn multi_session_improvements_sit_between_paper_bounds() {
    // Figure 10's frame: per-session results must fall between the
    // members-only lower bound (improvement 0 by definition of the
    // baseline) and the single-session upper bound.
    let mut pool = small_pool(4);
    let sets = pool.partition_members(6, 15, 50);

    // Upper bounds: each set scheduled alone.
    let mut upper = Vec::new();
    for (i, members) in sets.iter().enumerate() {
        let spec = SessionSpec {
            id: SessionId(100 + i as u32),
            priority: 1,
            root: members[0],
            members: members.clone(),
        };
        let out = plan_and_reserve(
            &mut pool,
            &spec,
            &PlanConfig {
                model: PlanModel::Oracle,
                ..PlanConfig::default()
            },
        );
        upper.push(out.improvement);
        pool.release_session(spec.id);
    }

    // Now all six compete.
    let mut competing = Vec::new();
    for (i, members) in sets.iter().enumerate() {
        let spec = SessionSpec {
            id: SessionId(i as u32),
            priority: (i % 3) as u8 + 1,
            root: members[0],
            members: members.clone(),
        };
        let out = plan_and_reserve(
            &mut pool,
            &spec,
            &PlanConfig {
                model: PlanModel::Oracle,
                ..PlanConfig::default()
            },
        );
        competing.push(out.improvement);
    }
    for (i, &c) in competing.iter().enumerate() {
        // Allow small slack: preemption between plans can nudge results.
        assert!(
            c <= upper[i] + 0.10,
            "session {i}: competing improvement {c} above single-session bound {}",
            upper[i]
        );
    }
}

#[test]
fn session_survives_total_helper_loss() {
    // A session whose helpers are all stolen must still realize its
    // members-only plan on replan.
    let mut pool = small_pool(5);
    // Disjoint member sets, as the paper assumes (§5.3).
    let sets = pool.partition_members(5, 20, 60);
    let low = SessionSpec {
        id: SessionId(1),
        priority: 3,
        root: sets[0][0],
        members: sets[0].clone(),
    };
    let cfg = PlanConfig {
        model: PlanModel::Oracle,
        ..PlanConfig::default()
    };
    plan_and_reserve(&mut pool, &low, &cfg);

    // A swarm of priority-1 sessions grabs every helper it can.
    for k in 0..4u32 {
        let members = sets[k as usize + 1].clone();
        let spec = SessionSpec {
            id: SessionId(10 + k),
            priority: 1,
            root: members[0],
            members,
        };
        plan_and_reserve(&mut pool, &spec, &cfg);
        // Keep reservations in place (no release) to maximize contention.
    }

    // The low-priority session replans; members-only feasibility is
    // guaranteed by member-rank preemption.
    let out = plan_and_reserve(&mut pool, &low, &cfg);
    assert!(out.oracle_height.is_finite());
    let baseline = members_only_baseline(&pool, &low);
    assert!(
        out.oracle_height <= baseline * 1.001,
        "replanned height {} worse than members-only baseline {}",
        out.oracle_height,
        baseline
    );
}

#[test]
fn degree_tables_stay_conserved_through_market_churn() {
    let pool = small_pool(6);
    let cfg = MarketConfig {
        sessions: 9,
        member_size: 10,
        horizon: SimTime::from_secs(900),
        warmup: SimTime::from_secs(100),
        plan: PlanConfig {
            model: PlanModel::Oracle,
            ..PlanConfig::default()
        },
        ..MarketConfig::default()
    };
    let out = MarketSim::new(pool, cfg, 7).run();
    assert!(out.plans > 0);
    // The market consumed and released degrees thousands of times; the
    // per-table invariants are enforced by debug_asserts inside; reaching
    // here without panic is the assertion.
}
