//! Whole-stack determinism: every layer must be bit-reproducible from the
//! master seed — the property that makes the figure binaries regenerable
//! and failures debuggable.

use p2p_resource_pool::prelude::*;

fn build(seed: u64) -> ResourcePool {
    ResourcePool::build(
        &PoolConfig {
            net: NetworkConfig {
                num_hosts: 200,
                ..NetworkConfig::default()
            },
            coord_rounds: 4,
            ..PoolConfig::default()
        },
        seed,
    )
}

#[test]
fn pool_builds_identically_from_the_same_seed() {
    let a = build(42);
    let b = build(42);
    // Underlay.
    for h in a.net.hosts.ids() {
        assert_eq!(
            a.net.hosts.get(h).degree_bound,
            b.net.hosts.get(h).degree_bound
        );
        assert_eq!(
            a.net.hosts.get(h).bandwidth.up_kbps,
            b.net.hosts.get(h).bandwidth.up_kbps
        );
    }
    // Ring.
    assert_eq!(a.ring.members(), b.ring.members());
    // Metrics.
    for h in a.net.hosts.ids() {
        assert_eq!(a.coords.get(h), b.coords.get(h));
        assert_eq!(a.bw.up(h), b.bw.up(h));
    }
    // Latency oracle.
    for i in (0..200u32).step_by(17) {
        for j in (0..200u32).step_by(13) {
            assert_eq!(
                a.net.latency_ms(HostId(i), HostId(j)),
                b.net.latency_ms(HostId(i), HostId(j))
            );
        }
    }
}

#[test]
fn different_seeds_give_different_pools() {
    let a = build(1);
    let b = build(2);
    assert_ne!(a.ring.members(), b.ring.members());
}

#[test]
fn plans_are_identical_across_identical_pools() {
    let mut a = build(7);
    let mut b = build(7);
    let members = a.sample_members(15, 9);
    let spec = SessionSpec {
        id: SessionId(1),
        priority: 2,
        root: members[0],
        members,
    };
    let cfg = PlanConfig::default(); // the staged Leafset pipeline
    let out_a = plan_and_reserve(&mut a, &spec, &cfg);
    let out_b = plan_and_reserve(&mut b, &spec, &cfg);
    assert_eq!(out_a.tree.hosts(), out_b.tree.hosts());
    assert_eq!(out_a.oracle_height, out_b.oracle_height);
    assert_eq!(out_a.helpers, out_b.helpers);
    assert_eq!(out_a.improvement, out_b.improvement);
}

/// One faulty DHT trajectory: run heartbeats under loss + jitter + an
/// outage window, with a mid-run crash, and capture everything observable.
fn faulty_dht_trajectory(seed: u64) -> (u64, u64, Vec<Vec<NodeId>>) {
    use p2p_resource_pool::dht::proto::{DhtSim, ProtoConfig};
    let ring = Ring::with_random_ids((0..96).map(HostId), seed);
    let plan = simcore::FaultPlan::with_loss(seed ^ 0xFA17, 0.04)
        .jitter(SimTime::from_millis(25))
        .outage(
            ring.member(3).host.0 as u64,
            ring.member(4).host.0 as u64,
            SimTime::from_secs(10),
            SimTime::from_secs(40),
        );
    let mut sim = DhtSim::with_faults(
        &ring,
        ProtoConfig::default(),
        |a, b| {
            if a == b {
                SimTime::ZERO
            } else {
                SimTime::from_millis(40)
            }
        },
        plan,
    );
    sim.run_until(SimTime::from_secs(30));
    sim.kill(7);
    sim.run_until(SimTime::from_secs(120));
    let views = (0..sim.len()).map(|i| sim.believed_leafset(i)).collect();
    (sim.messages_sent(), sim.messages_dropped(), views)
}

#[test]
fn faulty_dht_trajectory_is_bit_identical_across_runs() {
    assert_eq!(faulty_dht_trajectory(21), faulty_dht_trajectory(21));
}

/// One faulty SOMO gather: unsynchronized census over a lossy network.
fn faulty_gather_trajectory(seed: u64) -> (u64, u64, Vec<(SimTime, u64)>) {
    use p2p_resource_pool::somo::flow::{FlowMode, FreshnessReport, GatherSim};
    let ring = Ring::with_random_ids((0..96).map(HostId), seed);
    let tree = SomoTree::build(&ring, 8);
    let plan = simcore::FaultPlan::with_loss(seed ^ 0x50, 0.05).jitter(SimTime::from_millis(15));
    let mut sim = GatherSim::with_faults(
        &tree,
        &ring,
        FlowMode::Unsynchronized,
        SimTime::from_secs(5),
        |_m, now| FreshnessReport::of_member(now),
        |a, b| {
            if a == b {
                SimTime::ZERO
            } else {
                SimTime::from_millis(150)
            }
        },
        plan,
    );
    sim.run_until(SimTime::from_secs(90));
    let views = sim.views().iter().map(|v| (v.at, v.view.members)).collect();
    (sim.messages_sent(), sim.messages_dropped(), views)
}

#[test]
fn faulty_gather_trajectory_is_bit_identical_across_runs() {
    assert_eq!(faulty_gather_trajectory(33), faulty_gather_trajectory(33));
}

#[test]
fn recovery_pipeline_is_bit_identical_across_runs() {
    use p2p_resource_pool::pool::recovery::{run_pipeline, RecoveryConfig};
    let run = || {
        let plan = simcore::FaultPlan::with_loss(17, 0.03).jitter(SimTime::from_millis(10));
        run_pipeline(&RecoveryConfig {
            n: 48,
            crashes: 3,
            plan,
            session_size: 16,
            ..RecoveryConfig::default()
        })
    };
    let a = run();
    let b = run();
    // The whole outcome — per-phase timeline, census numbers, message and
    // drop counts, ALM repair report — must match field for field.
    assert_eq!(a, b);
    assert!(a.timeline.reattached_at.is_some());
}

/// One faulted market trajectory: a crash plan killing helpers and session
/// roots mid-run, with leases, failover, and the invariant auditor live.
/// Captures the aggregate outcome AND the final degree table of every
/// host — the books themselves must be bit-reproducible, not just the
/// stats.
#[derive(Debug, PartialEq)]
struct MarketTrace {
    plans: u64,
    per_class: Vec<(u64, u64, u64, u64)>,
    crash_repairs: u64,
    lapsed: u64,
    leaked: u32,
    /// Multipath machinery: tree failovers, trees rebuilt, delivery-ratio
    /// (count, mean), restore-rounds (count, mean). All zero at k = 1.
    multipath: (u64, u64, u64, f64, u64, f64),
    tables: Vec<Vec<pool::degree_table::Allocation>>,
}

fn faulted_market_trajectory(seed: u64) -> MarketTrace {
    faulted_market_trajectory_k(seed, 1)
}

fn faulted_market_trajectory_k(seed: u64, k_trees: usize) -> MarketTrace {
    let pool = ResourcePool::build(
        &PoolConfig {
            net: NetworkConfig {
                num_hosts: 300,
                ..NetworkConfig::default()
            },
            coord_rounds: 4,
            ..PoolConfig::default()
        },
        seed,
    );
    let mut faults = simcore::FaultPlan::none();
    for h in (0..300u64).step_by(7) {
        faults = faults.crash_forever(h, SimTime::from_secs(600 + h));
    }
    let cfg = MarketConfig {
        sessions: 9,
        member_size: 12,
        horizon: SimTime::from_secs(1800),
        warmup: SimTime::from_secs(300),
        faults,
        plan: PlanConfig {
            k_trees,
            ..PlanConfig::default()
        },
        ..MarketConfig::default()
    };
    let (out, pool) = MarketSim::new(pool, cfg, seed).run_full();
    let per_class: Vec<(u64, u64, u64, u64)> = (1..=3)
        .map(|p| {
            let c = out.class(p);
            (
                c.helper_crashes,
                c.failovers,
                c.sessions_lost,
                c.preemptions,
            )
        })
        .collect();
    let tables: Vec<Vec<pool::degree_table::Allocation>> = pool
        .net
        .hosts
        .ids()
        .map(|h| pool.table(h).allocations().to_vec())
        .collect();
    MarketTrace {
        plans: out.plans,
        per_class,
        crash_repairs: out.crash_repairs,
        lapsed: out.lapsed_lease_degrees,
        leaked: out.leaked_degrees,
        multipath: (
            out.tree_failovers,
            out.trees_rebuilt,
            out.delivery.count(),
            out.delivery.mean(),
            out.restore_rounds.count(),
            out.restore_rounds.mean(),
        ),
        tables,
    }
}

#[test]
fn faulted_market_trajectory_is_bit_identical_across_runs() {
    let a = faulted_market_trajectory(29);
    let b = faulted_market_trajectory(29);
    // Aggregate stats AND the final books must match field for field.
    assert_eq!(a, b);
    // And the plan actually produced fault activity worth pinning.
    let activity: u64 = a.per_class.iter().map(|c| c.0 + c.1 + c.2).sum();
    assert!(activity > 0, "fault plan never touched a session");
}

#[test]
fn faulted_multipath_market_trajectory_is_bit_identical_across_runs() {
    // Same crash plan, but every session also plans a degree-disjoint
    // standby tree: failovers, lazy rebuilds, delivery sampling and the
    // final books must all replay bit-for-bit.
    let a = faulted_market_trajectory_k(29, 2);
    let b = faulted_market_trajectory_k(29, 2);
    assert_eq!(a, b);
    assert!(a.multipath.2 > 0, "delivery ratio was never sampled");
    assert_eq!(a.leaked, 0, "multipath run leaked degrees");
}

/// One parallel-planning trajectory: a microsecond arrival gap collapses
/// every first start onto `t = 0` and keeps the surviving sessions'
/// replans phase-locked, so the scheduler sees same-timestamp batches all
/// run long; the snapshot view plus the tiered oracle make speculative
/// commits real (frozen-view plans carry a finite conflict scope), and the
/// staggered crash plan keeps the fault paths interleaved with the
/// batches. Captures everything [`MarketTrace`] pins plus the exact
/// planner-work counters and the oracle's own per-tier hits.
fn parallel_market_trajectory(
    seed: u64,
    plan_threads: usize,
    k_trees: usize,
) -> (MarketTrace, u64, u64, Option<TierStats>, u64) {
    let pool = ResourcePool::build(
        &PoolConfig {
            net: NetworkConfig {
                num_hosts: 300,
                ..NetworkConfig::default()
            },
            coord_rounds: 4,
            latency_source: LatencySource::Tiered(TieredConfig::default()),
            ..PoolConfig::default()
        },
        seed,
    );
    let mut faults = simcore::FaultPlan::none();
    for h in (0..300u64).step_by(13) {
        faults = faults.crash_forever(h, SimTime::from_secs(600 + h));
    }
    let cfg = MarketConfig {
        sessions: 12,
        member_size: 10,
        mean_gap: SimTime::from_micros(1),
        horizon: SimTime::from_secs(1500),
        warmup: SimTime::from_secs(300),
        view_refresh: Some(SimTime::from_secs(60)),
        faults,
        plan: PlanConfig {
            k_trees,
            ..PlanConfig::default()
        },
        plan_threads,
        ..MarketConfig::default()
    };
    let (out, pool) = MarketSim::new(pool, cfg, seed).run_full();
    let per_class: Vec<(u64, u64, u64, u64)> = (1..=3)
        .map(|p| {
            let c = out.class(p);
            (
                c.helper_crashes,
                c.failovers,
                c.sessions_lost,
                c.preemptions,
            )
        })
        .collect();
    let tables: Vec<Vec<pool::degree_table::Allocation>> = pool
        .net
        .hosts
        .ids()
        .map(|h| pool.table(h).allocations().to_vec())
        .collect();
    let trace = MarketTrace {
        plans: out.plans,
        per_class,
        crash_repairs: out.crash_repairs,
        lapsed: out.lapsed_lease_degrees,
        leaked: out.leaked_degrees,
        multipath: (
            out.tree_failovers,
            out.trees_rebuilt,
            out.delivery.count(),
            out.delivery.mean(),
            out.restore_rounds.count(),
            out.restore_rounds.mean(),
        ),
        tables,
    };
    (
        trace,
        out.planner_relaxations,
        out.planner_latency_calls,
        out.oracle_tiers,
        out.speculative_commits,
    )
}

#[test]
fn parallel_planning_is_bit_identical_across_thread_counts() {
    // The tentpole contract: the outcome, the exact planner-work counters,
    // the oracle's per-tier hits and the final books of every host are a
    // function of the seed alone — never of `plan_threads`. Thread count 1
    // IS the sequential engine (no batching, no forks), so equality at 2
    // and 8 is equality with the sequential path.
    let t1 = parallel_market_trajectory(29, 1, 1);
    let t2 = parallel_market_trajectory(29, 2, 1);
    let t8 = parallel_market_trajectory(29, 8, 1);
    assert_eq!(t1.0, t2.0, "outcome diverged at plan_threads = 2");
    assert_eq!(t1.0, t8.0, "outcome diverged at plan_threads = 8");
    assert_eq!(
        (t1.1, t1.2),
        (t2.1, t2.2),
        "planner-work counters diverged at plan_threads = 2"
    );
    assert_eq!(
        (t1.1, t1.2),
        (t8.1, t8.2),
        "planner-work counters diverged at plan_threads = 8"
    );
    assert_eq!(t1.3, t2.3, "oracle tier counters diverged");
    assert_eq!(t1.3, t8.3, "oracle tier counters diverged");
    assert!(t1.1 > 0, "run did no planner work at all");
    // The sequential run never speculates; the parallel runs actually did
    // (otherwise this test exercises nothing).
    assert_eq!(t1.4, 0, "plan_threads = 1 took the speculative path");
    assert!(t8.4 > 0, "plan_threads = 8 never committed a speculation");
}

#[test]
fn parallel_multipath_planning_is_bit_identical_across_thread_counts() {
    // k = 2: standby rounds scan live candidates, so every speculation in
    // a batch after the first conflicts and replans inline — the fallback
    // path itself must preserve bit-identity (and the books).
    let t1 = parallel_market_trajectory(29, 1, 2);
    let t8 = parallel_market_trajectory(29, 8, 2);
    assert_eq!(t1.0, t8.0, "multipath outcome diverged at plan_threads = 8");
    assert_eq!(
        (t1.1, t1.2),
        (t8.1, t8.2),
        "multipath planner-work counters diverged"
    );
    assert_eq!(t1.3, t8.3, "multipath oracle tier counters diverged");
    assert!(t1.0.multipath.2 > 0, "delivery ratio was never sampled");
    assert_eq!(t1.0.leaked, 0, "multipath run leaked degrees");
}

/// One faulted Admission-mode trajectory: the same staggered crash plan
/// as the market tests, but the sessions pass through the admission
/// controller under starvation-level thresholds, so the queue, the
/// degraded class and the rejection path all engage. Captures the full
/// admission ledger, every class's counters (including the degraded
/// class) and the final books.
#[allow(clippy::type_complexity)]
fn faulted_admission_trajectory(
    seed: u64,
) -> (
    u64,
    (u64, u64, u64, u64, u64, u64, u64, u64),
    Vec<(u8, u64, u64, u64, u64)>,
    u32,
    Vec<Vec<pool::degree_table::Allocation>>,
) {
    let pool = ResourcePool::build(
        &PoolConfig {
            net: NetworkConfig {
                num_hosts: 300,
                ..NetworkConfig::default()
            },
            coord_rounds: 4,
            ..PoolConfig::default()
        },
        seed,
    );
    let mut faults = simcore::FaultPlan::none();
    for h in (0..300u64).step_by(7) {
        faults = faults.crash_forever(h, SimTime::from_secs(600 + h));
    }
    let cfg = MarketConfig {
        sessions: 24,
        member_size: 4,
        horizon: SimTime::from_secs(1800),
        warmup: SimTime::from_secs(300),
        faults,
        allocation: AllocationMode::Admission,
        admission: AdmissionConfig {
            scarce_free_frac: 0.995,
            degrade_free_frac: 0.9,
            backoff: SimTime::from_secs(20),
            max_attempts: 4,
            ..AdmissionConfig::default()
        },
        ..MarketConfig::default()
    };
    let (out, pool) = MarketSim::new(pool, cfg, seed).run_full();
    let a = &out.admission;
    let ledger = (
        a.arrivals,
        a.admitted,
        a.degraded,
        a.rejected,
        a.timeouts,
        a.queued_final,
        a.max_queue_depth,
        a.wait.count(),
    );
    let per_class: Vec<(u8, u64, u64, u64, u64)> = out
        .per_class
        .iter()
        .map(|(n, c)| {
            (
                n,
                c.helper_crashes,
                c.failovers,
                c.sessions_lost,
                c.preemptions,
            )
        })
        .collect();
    let tables: Vec<Vec<pool::degree_table::Allocation>> = pool
        .net
        .hosts
        .ids()
        .map(|h| pool.table(h).allocations().to_vec())
        .collect();
    (out.plans, ledger, per_class, out.leaked_degrees, tables)
}

#[test]
fn faulted_admission_trajectory_is_bit_identical_across_runs() {
    let a = faulted_admission_trajectory(31);
    let b = faulted_admission_trajectory(31);
    assert_eq!(a, b);
    // The controller actually engaged: sessions were degraded AND turned
    // away, nothing was preempted, and the books balance.
    let (_, ledger, per_class, leaked, _) = a;
    assert!(ledger.2 > 0, "no session was degraded");
    assert!(ledger.3 > 0, "no session was rejected");
    assert_eq!(
        ledger.0,
        ledger.1 + ledger.2 + ledger.3 + ledger.5,
        "admission ledger does not balance"
    );
    let preempted: u64 = per_class.iter().map(|c| c.4).sum();
    assert_eq!(preempted, 0, "admission mode preempted");
    assert_eq!(leaked, 0, "admission run leaked degrees");
}

/// One faulted query trajectory: kill hosts mid-stream, refresh the
/// aggregate index, and interleave scoped queries. Captures the complete
/// answers — hosts, summaries, freshness, traffic stats — plus both
/// ledgers; every byte must be reproducible.
fn faulted_query_trajectory(seed: u64) -> (Vec<QueryAnswer>, u64, u64) {
    let mut pool = build(seed);
    let t0 = SimTime::from_secs(10);
    let mut index = pool.build_query_index(SimTime::from_secs(60), t0);
    let mut answers = Vec::new();
    answers.push(index.top_k(12, 3, 2, &[], Scope::Global));
    answers.push(index.top_k(6, 1, 1, &[HostId(5)], Scope::Nearest { member: 17 }));
    // A crash wave: every 13th host dies, then the next gather round
    // notices (dead hosts stop publishing samples).
    for h in (0..200u32).step_by(13) {
        pool.kill_host(HostId(h));
    }
    let t1 = SimTime::from_secs(70);
    pool.refresh_query_index(&mut index, t1);
    answers.push(index.top_k(12, 3, 2, &[], Scope::Global));
    answers.push(index.range([0.0, 0.0], 120.0, 2, 1));
    answers.push(index.point(HostId(13))); // a dead host: empty answer
                                           // Partial recovery, another gather, more queries.
    pool.revive_host(HostId(13));
    pool.revive_host(HostId(26));
    let t2 = SimTime::from_secs(130);
    pool.refresh_query_index(&mut index, t2);
    answers.push(index.top_k(20, 2, 1, &[], Scope::Nearest { member: 3 }));
    answers.push(index.point(HostId(13)));
    let q = index.query_traffic();
    let m = index.maintenance_traffic();
    (answers, q.bytes, m.bytes)
}

#[test]
fn faulted_query_trajectory_is_bit_identical_across_runs() {
    let a = faulted_query_trajectory(51);
    let b = faulted_query_trajectory(51);
    assert_eq!(a, b);
    // The crash wave actually changed the answers: the post-kill global
    // top-k must not contain any dead host.
    let post_kill = &a.0[2];
    assert!(
        !post_kill.hosts.is_empty(),
        "post-kill answer came up empty"
    );
    for s in &post_kill.hosts {
        assert!(
            s.host.0 % 13 != 0,
            "dead host {:?} survived in a refreshed answer",
            s.host
        );
    }
    assert!(a.1 > 0, "queries charged no traffic");
    assert!(a.2 > 0, "gathers charged no traffic");
}

#[test]
fn somo_tree_is_a_pure_function_of_the_ring() {
    let a = build(11);
    let t1 = SomoTree::build(&a.ring, 8);
    let t2 = SomoTree::build(&a.ring, 8);
    assert_eq!(t1.len(), t2.len());
    for (x, y) in t1.nodes().iter().zip(t2.nodes()) {
        assert_eq!(x.region, y.region);
        assert_eq!(x.host, y.host);
        assert_eq!(x.parent, y.parent);
    }
}
