//! Whole-stack determinism: every layer must be bit-reproducible from the
//! master seed — the property that makes the figure binaries regenerable
//! and failures debuggable.

use p2p_resource_pool::prelude::*;

fn build(seed: u64) -> ResourcePool {
    ResourcePool::build(
        &PoolConfig {
            net: NetworkConfig {
                num_hosts: 200,
                ..NetworkConfig::default()
            },
            coord_rounds: 4,
            ..PoolConfig::default()
        },
        seed,
    )
}

#[test]
fn pool_builds_identically_from_the_same_seed() {
    let a = build(42);
    let b = build(42);
    // Underlay.
    for h in a.net.hosts.ids() {
        assert_eq!(
            a.net.hosts.get(h).degree_bound,
            b.net.hosts.get(h).degree_bound
        );
        assert_eq!(
            a.net.hosts.get(h).bandwidth.up_kbps,
            b.net.hosts.get(h).bandwidth.up_kbps
        );
    }
    // Ring.
    assert_eq!(a.ring.members(), b.ring.members());
    // Metrics.
    for h in a.net.hosts.ids() {
        assert_eq!(a.coords.get(h), b.coords.get(h));
        assert_eq!(a.bw.up(h), b.bw.up(h));
    }
    // Latency oracle.
    for i in (0..200u32).step_by(17) {
        for j in (0..200u32).step_by(13) {
            assert_eq!(
                a.net.latency_ms(HostId(i), HostId(j)),
                b.net.latency_ms(HostId(i), HostId(j))
            );
        }
    }
}

#[test]
fn different_seeds_give_different_pools() {
    let a = build(1);
    let b = build(2);
    assert_ne!(a.ring.members(), b.ring.members());
}

#[test]
fn plans_are_identical_across_identical_pools() {
    let mut a = build(7);
    let mut b = build(7);
    let members = a.sample_members(15, 9);
    let spec = SessionSpec {
        id: SessionId(1),
        priority: 2,
        root: members[0],
        members,
    };
    let cfg = PlanConfig::default(); // the staged Leafset pipeline
    let out_a = plan_and_reserve(&mut a, &spec, &cfg);
    let out_b = plan_and_reserve(&mut b, &spec, &cfg);
    assert_eq!(out_a.tree.hosts(), out_b.tree.hosts());
    assert_eq!(out_a.oracle_height, out_b.oracle_height);
    assert_eq!(out_a.helpers, out_b.helpers);
    assert_eq!(out_a.improvement, out_b.improvement);
}

#[test]
fn somo_tree_is_a_pure_function_of_the_ring() {
    let a = build(11);
    let t1 = SomoTree::build(&a.ring, 8);
    let t2 = SomoTree::build(&a.ring, 8);
    assert_eq!(t1.len(), t2.len());
    for (x, y) in t1.nodes().iter().zip(t2.nodes()) {
        assert_eq!(x.region, y.region);
        assert_eq!(x.host, y.host);
        assert_eq!(x.parent, y.parent);
    }
}
