//! Trace determinism: the observability layer's core contract. Two
//! same-seed runs of a faulted simulation must emit bit-identical
//! JSON-lines traces — simulated time and typed payloads only, no
//! wall-clock, no addresses, no iteration-order leaks.

use p2p_resource_pool::prelude::*;
use p2p_resource_pool::simcore::trace::to_json_lines;

/// A faulted market run with the tracer attached: helper and root crashes,
/// leases, failover, crash repair — every market event family fires.
fn traced_market(seed: u64) -> (String, u64) {
    traced_market_k(seed, 1)
}

/// [`traced_market`] with `k_trees` degree-disjoint trees per session —
/// at k > 1 the multipath failover/rebuild event families fire too.
fn traced_market_k(seed: u64, k_trees: usize) -> (String, u64) {
    let pool = ResourcePool::build(
        &PoolConfig {
            net: NetworkConfig {
                num_hosts: 300,
                ..NetworkConfig::default()
            },
            coord_rounds: 4,
            ..PoolConfig::default()
        },
        seed,
    );
    let mut faults = simcore::FaultPlan::none();
    for h in (0..300u64).step_by(7) {
        faults = faults.crash_forever(h, SimTime::from_secs(600 + h));
    }
    let cfg = MarketConfig {
        sessions: 9,
        member_size: 12,
        horizon: SimTime::from_secs(1800),
        warmup: SimTime::from_secs(300),
        faults,
        plan: PlanConfig {
            k_trees,
            ..PlanConfig::default()
        },
        ..MarketConfig::default()
    };
    let mut sim = MarketSim::new(pool, cfg, seed);
    sim.set_tracer(Tracer::ring(1 << 16));
    let (out, _) = sim.run_full();
    (to_json_lines(&out.trace), out.trace.len() as u64)
}

#[test]
fn faulted_market_traces_are_bit_identical_across_runs() {
    let (a, n) = traced_market(29);
    let (b, _) = traced_market(29);
    assert!(n > 0, "a faulted market run must emit trace records");
    assert_eq!(a, b, "same-seed market traces diverged");
    // The fault machinery actually showed up in the trace.
    for needle in ["MarketReserve", "MarketHostFault", "MarketCrashDetect"] {
        assert!(a.contains(needle), "no {needle} event in the trace");
    }
}

#[test]
fn faulted_multipath_market_traces_are_bit_identical_across_runs() {
    // Same workload at k = 2: the standby-tree machinery (failover
    // promotion, lazy rebuild) must replay bit-for-bit and actually
    // surface in the trace.
    let (a, n) = traced_market_k(29, 2);
    let (b, _) = traced_market_k(29, 2);
    assert!(n > 0, "a faulted multipath run must emit trace records");
    assert_eq!(a, b, "same-seed multipath market traces diverged");
    for needle in ["MarketTreeFailover", "MarketTreeRebuilt"] {
        assert!(a.contains(needle), "no {needle} event in the trace");
    }
}

/// A faulted, traced market tuned so the parallel planner actually forms
/// batches: microsecond arrival gap (every first start lands at `t = 0`
/// and replans stay phase-locked), snapshot view so speculative plans
/// carry finite conflict scopes, tiered oracle so the per-plan
/// `OracleTiers` snapshots are part of the contract too.
fn traced_parallel_market(seed: u64, plan_threads: usize, k_trees: usize) -> (String, u64) {
    let pool = ResourcePool::build(
        &PoolConfig {
            net: NetworkConfig {
                num_hosts: 300,
                ..NetworkConfig::default()
            },
            coord_rounds: 4,
            latency_source: LatencySource::Tiered(TieredConfig::default()),
            ..PoolConfig::default()
        },
        seed,
    );
    let mut faults = simcore::FaultPlan::none();
    for h in (0..300u64).step_by(13) {
        faults = faults.crash_forever(h, SimTime::from_secs(600 + h));
    }
    let cfg = MarketConfig {
        sessions: 12,
        member_size: 10,
        mean_gap: SimTime::from_micros(1),
        horizon: SimTime::from_secs(1500),
        warmup: SimTime::from_secs(300),
        view_refresh: Some(SimTime::from_secs(60)),
        faults,
        plan: PlanConfig {
            k_trees,
            ..PlanConfig::default()
        },
        plan_threads,
        ..MarketConfig::default()
    };
    let mut sim = MarketSim::new(pool, cfg, seed);
    sim.set_tracer(Tracer::ring(1 << 16));
    let (out, _) = sim.run_full();
    (to_json_lines(&out.trace), out.speculative_commits)
}

#[test]
fn parallel_market_traces_are_bit_identical_across_thread_counts() {
    // The observability contract extends to the parallel planner: every
    // trace byte — per-plan relaxation and latency-call counts included —
    // must be independent of `plan_threads`.
    let (t1, c1) = traced_parallel_market(29, 1, 1);
    let (t2, _) = traced_parallel_market(29, 2, 1);
    let (t8, c8) = traced_parallel_market(29, 8, 1);
    assert_eq!(t1, t2, "traces diverged at plan_threads = 2");
    assert_eq!(t1, t8, "traces diverged at plan_threads = 8");
    assert_eq!(c1, 0, "plan_threads = 1 took the speculative path");
    assert!(c8 > 0, "plan_threads = 8 never committed a speculation");
    assert!(
        t1.contains("OracleTiers"),
        "no per-plan tier snapshots in a tiered trace"
    );
}

#[test]
fn parallel_multipath_market_traces_are_bit_identical_across_thread_counts() {
    // k = 2: the conflict-fallback path (standby rounds scan the live
    // pool) must also leave the trace untouched.
    let (t1, _) = traced_parallel_market(29, 1, 2);
    let (t8, _) = traced_parallel_market(29, 8, 2);
    assert_eq!(t1, t8, "multipath traces diverged at plan_threads = 8");
}

/// A faulted Admission-mode market with starvation-level thresholds, so
/// the controller's whole surface — queue, degraded admission, retry,
/// rejection, pressure shifts — lands in the trace.
fn traced_admission_market(seed: u64) -> (String, u64) {
    let pool = ResourcePool::build(
        &PoolConfig {
            net: NetworkConfig {
                num_hosts: 300,
                ..NetworkConfig::default()
            },
            coord_rounds: 4,
            ..PoolConfig::default()
        },
        seed,
    );
    let mut faults = simcore::FaultPlan::none();
    for h in (0..300u64).step_by(7) {
        faults = faults.crash_forever(h, SimTime::from_secs(600 + h));
    }
    let cfg = MarketConfig {
        sessions: 24,
        member_size: 4,
        horizon: SimTime::from_secs(1800),
        warmup: SimTime::from_secs(300),
        faults,
        allocation: AllocationMode::Admission,
        admission: AdmissionConfig {
            scarce_free_frac: 0.995,
            degrade_free_frac: 0.9,
            backoff: SimTime::from_secs(20),
            max_attempts: 4,
            ..AdmissionConfig::default()
        },
        ..MarketConfig::default()
    };
    let mut sim = MarketSim::new(pool, cfg, seed);
    sim.set_tracer(Tracer::ring(1 << 16));
    let (out, _) = sim.run_full();
    (to_json_lines(&out.trace), out.trace.len() as u64)
}

#[test]
fn faulted_admission_market_traces_are_bit_identical_across_runs() {
    let (a, n) = traced_admission_market(31);
    let (b, _) = traced_admission_market(31);
    assert!(n > 0, "a faulted admission run must emit trace records");
    assert_eq!(a, b, "same-seed admission traces diverged");
    // Every stage of the controller actually surfaced.
    for needle in [
        "MarketAdmissionQueued",
        "MarketAdmissionDegraded",
        "MarketAdmissionRejected",
    ] {
        assert!(a.contains(needle), "no {needle} event in the trace");
    }
}

/// A faulted synchronized gather with a mid-run member kill: rounds open,
/// close (both reasons), and suppress stale timeouts.
fn traced_gather(seed: u64) -> (String, String) {
    use p2p_resource_pool::somo::flow::{FlowMode, FreshnessReport, GatherSim};
    let ring = Ring::with_random_ids((0..96).map(HostId), seed);
    let tree = SomoTree::build(&ring, 8);
    let plan = simcore::FaultPlan::with_loss(seed ^ 0x51, 0.05).jitter(SimTime::from_millis(15));
    let mut sim = GatherSim::with_faults(
        &tree,
        &ring,
        FlowMode::Synchronized,
        SimTime::from_secs(5),
        |_m, now| FreshnessReport::of_member(now),
        |a, b| {
            if a == b {
                SimTime::ZERO
            } else {
                SimTime::from_millis(150)
            }
        },
        plan,
    );
    sim.set_tracer(Tracer::ring(1 << 16));
    sim.run_until(SimTime::from_secs(30));
    sim.kill_member(7);
    sim.run_until(SimTime::from_secs(90));
    let trace = to_json_lines(&sim.take_trace().expect("ring tracer owns its records"));
    let metrics = sim.metrics().to_json_lines();
    (trace, metrics)
}

#[test]
fn faulted_gather_traces_and_metrics_are_bit_identical_across_runs() {
    let a = traced_gather(33);
    let b = traced_gather(33);
    assert!(!a.0.is_empty(), "a faulted gather must emit trace records");
    assert_eq!(a.0, b.0, "same-seed gather traces diverged");
    assert_eq!(a.1, b.1, "same-seed gather metrics diverged");
    for needle in ["GatherOpen", "GatherClose", "GatherRootView"] {
        assert!(a.0.contains(needle), "no {needle} event in the trace");
    }
    assert!(
        a.1.contains("gather.rounds_completed"),
        "metrics export missing round counters: {}",
        a.1
    );
}

#[test]
fn recovery_pipeline_phase_trace_is_bit_identical_across_runs() {
    use p2p_resource_pool::pool::recovery::{run_pipeline_traced, RecoveryConfig};
    let run = || {
        let plan = simcore::FaultPlan::with_loss(17, 0.03).jitter(SimTime::from_millis(10));
        let mut tracer = Tracer::ring(64);
        let out = run_pipeline_traced(
            &RecoveryConfig {
                n: 48,
                crashes: 3,
                plan,
                session_size: 16,
                ..RecoveryConfig::default()
            },
            &mut tracer,
        );
        (
            to_json_lines(&tracer.take_records().expect("ring tracer owns its records")),
            out,
        )
    };
    let (a, out) = run();
    let (b, _) = run();
    assert_eq!(a, b);
    // A fully recovered pipeline emits all four phases, in order.
    assert!(out.timeline.reattached_at.is_some());
    assert_eq!(a.matches("RecoveryPhase").count(), 4);
}

#[test]
fn dht_heartbeat_trace_is_bit_identical_across_runs() {
    use p2p_resource_pool::dht::proto::{DhtSim, ProtoConfig};
    let run = || {
        let ring = Ring::with_random_ids((0..48).map(HostId), 21);
        let plan = simcore::FaultPlan::with_loss(0xFA17, 0.04).jitter(SimTime::from_millis(25));
        let mut sim = DhtSim::with_faults(
            &ring,
            ProtoConfig::default(),
            |a, b| {
                if a == b {
                    SimTime::ZERO
                } else {
                    SimTime::from_millis(40)
                }
            },
            plan,
        );
        sim.set_tracer(Tracer::ring(1 << 15));
        sim.run_until(SimTime::from_secs(30));
        sim.kill(7);
        sim.run_until(SimTime::from_secs(120));
        to_json_lines(&sim.take_trace().expect("ring tracer owns its records"))
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same-seed DHT traces diverged");
    assert!(a.contains("DhtHeartbeat"));
    assert!(
        a.contains("DhtExpel"),
        "killing a node must surface an expulsion event"
    );
}

#[test]
fn untraced_market_outcome_is_unaffected_by_the_instrumentation() {
    // The zero-cost contract, end to end: a run with no tracer attached
    // must produce exactly the stats of a traced run (the trace records
    // are observation, never perturbation).
    let run = |traced: bool| {
        let pool = ResourcePool::build(
            &PoolConfig {
                net: NetworkConfig {
                    num_hosts: 300,
                    ..NetworkConfig::default()
                },
                coord_rounds: 4,
                ..PoolConfig::default()
            },
            31,
        );
        let mut faults = simcore::FaultPlan::none();
        for h in (0..300u64).step_by(11) {
            faults = faults.crash_forever(h, SimTime::from_secs(700 + h));
        }
        let cfg = MarketConfig {
            sessions: 6,
            member_size: 12,
            horizon: SimTime::from_secs(1800),
            warmup: SimTime::from_secs(300),
            faults,
            ..MarketConfig::default()
        };
        let mut sim = MarketSim::new(pool, cfg, 31);
        if traced {
            sim.set_tracer(Tracer::ring(1 << 16));
        }
        sim.run_full().0
    };
    let plain = run(false);
    let traced = run(true);
    assert!(plain.trace.is_empty());
    assert!(!traced.trace.is_empty());
    assert_eq!(plain.plans, traced.plans);
    assert_eq!(plain.crash_repairs, traced.crash_repairs);
    assert_eq!(plain.lapsed_lease_degrees, traced.lapsed_lease_degrees);
    assert_eq!(plain.leaked_degrees, traced.leaked_degrees);
    for p in 1..=3u8 {
        assert_eq!(
            plain.class(p).improvement.mean(),
            traced.class(p).improvement.mean()
        );
        assert_eq!(plain.class(p).preemptions, traced.class(p).preemptions);
    }
    // And the metrics adapter sees the same numbers either way.
    let mut ma = MetricsRegistry::new();
    let mut mb = MetricsRegistry::new();
    plain.publish_metrics(&mut ma);
    traced.publish_metrics(&mut mb);
    assert_eq!(ma.to_json_lines(), mb.to_json_lines());
}
