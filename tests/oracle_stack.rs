//! The tiered latency oracle wired through the whole stack: source
//! selection on [`PoolConfig`], planning through the task manager and the
//! market, per-tier accounting, and the determinism contract — tiered
//! runs replay bit-for-bit, and `LatencySource::Exact` behaves exactly
//! like the historical dense-matrix planner.

use p2p_resource_pool::prelude::*;
use pool::PlanOutcome;

fn build(source: LatencySource, seed: u64) -> ResourcePool {
    ResourcePool::build(
        &PoolConfig {
            net: NetworkConfig {
                num_hosts: 300,
                ..NetworkConfig::default()
            },
            coord_rounds: 4,
            latency_source: source,
            ..PoolConfig::default()
        },
        seed,
    )
}

fn tiered() -> LatencySource {
    LatencySource::Tiered(TieredConfig::default())
}

fn plan(pool: &mut ResourcePool) -> PlanOutcome {
    let members = pool.sample_members(14, 9);
    let spec = SessionSpec {
        id: SessionId(1),
        priority: 2,
        root: members[0],
        members,
    };
    plan_and_reserve(
        pool,
        &spec,
        &PlanConfig {
            model: PlanModel::Oracle,
            ..PlanConfig::default()
        },
    )
}

#[test]
fn exact_source_reports_no_tier_stats_and_dense_footprint() {
    let pool = build(LatencySource::Exact, 42);
    assert!(pool.oracle_stats().is_none());
    let n = pool.num_hosts();
    assert_eq!(pool.oracle_resident_bytes(), n * n * 4);
}

#[test]
fn tiered_source_answers_planner_from_tiers_under_dense_footprint() {
    let mut pool = build(tiered(), 42);
    let out = plan(&mut pool);
    assert!(out.oracle_height.is_finite() && out.oracle_height > 0.0);
    let stats = pool.oracle_stats().expect("tiered pool exposes stats");
    assert!(stats.total() > 0, "planner never consulted the oracle");
    assert!(stats.promotions > 0, "planner touch promoted no rows");
    let n = pool.num_hosts();
    assert!(
        pool.oracle_resident_bytes() < n * n * 4,
        "tiered oracle is not smaller than the dense matrix"
    );
}

/// The promotion policy makes small sessions exact: members and candidate
/// helpers are promoted before any lookup, a 300-host pool's router
/// spread fits the 128-row default hot tier, and quality is evaluated
/// under the exact matrix either way — so the tiered plan must be
/// *bit-identical* to the Exact-source plan, not merely close.
#[test]
fn tiered_plan_is_bit_identical_to_exact_plan_when_hot_tier_covers() {
    let mut exact = build(LatencySource::Exact, 42);
    let mut tier = build(tiered(), 42);
    let a = plan(&mut exact);
    let b = plan(&mut tier);
    assert_eq!(a.tree.hosts(), b.tree.hosts());
    for &h in a.tree.hosts() {
        assert_eq!(a.tree.parent_of(h), b.tree.parent_of(h));
        assert_eq!(a.tree.height_of(h).to_bits(), b.tree.height_of(h).to_bits());
    }
    assert_eq!(a.helpers, b.helpers);
    assert_eq!(a.oracle_height.to_bits(), b.oracle_height.to_bits());
    // All answers came from the exact hot tier (or the same-router
    // shortcut), none from estimates.
    let stats = tier.oracle_stats().unwrap();
    assert_eq!(
        stats.sketch + stats.base,
        0,
        "estimate tiers leaked into a covered session"
    );
}

/// One faulted tiered-market trajectory: staggered crashes, leases,
/// repairs — everything observable, including the oracle's own counters.
fn tiered_market_trajectory(seed: u64) -> (u64, u64, Option<TierStats>, u64, Vec<TraceRecord>) {
    let pool = build(tiered(), seed);
    let mut faults = FaultPlan::none();
    for h in (0..300u64).step_by(11) {
        faults = faults.crash_forever(h, SimTime::from_secs(600 + h));
    }
    let cfg = MarketConfig {
        sessions: 8,
        member_size: 10,
        horizon: SimTime::from_secs(1500),
        warmup: SimTime::from_secs(300),
        faults,
        ..MarketConfig::default()
    };
    let mut sim = MarketSim::new(pool, cfg, seed);
    sim.set_tracer(Tracer::ring(4096));
    let (out, _) = sim.run_full();
    (
        out.plans,
        out.crash_repairs,
        out.oracle_tiers,
        out.oracle_resident_bytes,
        out.trace,
    )
}

#[test]
fn tiered_market_replays_bit_for_bit_and_traces_tier_activity() {
    let a = tiered_market_trajectory(29);
    let b = tiered_market_trajectory(29);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "tier counters diverged between identical runs");
    assert_eq!(a.3, b.3);
    assert_eq!(a.4.len(), b.4.len());
    let stats = a.2.expect("tiered market publishes tier stats");
    assert!(stats.total() > 0);
    // The market emitted the per-plan tier snapshot events.
    let tier_events =
        a.4.iter()
            .filter(|r| matches!(r.ev, TraceEvent::OracleTiers { .. }))
            .count();
    assert!(
        tier_events > 0,
        "no OracleTiers trace events in a tiered run"
    );
}

#[test]
fn exact_market_emits_no_oracle_trace_events() {
    let pool = build(LatencySource::Exact, 29);
    let cfg = MarketConfig {
        sessions: 6,
        member_size: 10,
        horizon: SimTime::from_secs(900),
        warmup: SimTime::from_secs(300),
        ..MarketConfig::default()
    };
    let mut sim = MarketSim::new(pool, cfg, 29);
    sim.set_tracer(Tracer::ring(4096));
    let (out, _) = sim.run_full();
    assert!(out.oracle_tiers.is_none());
    assert!(
        !out.trace
            .iter()
            .any(|r| matches!(r.ev, TraceEvent::OracleTiers { .. })),
        "Exact-source run emitted an OracleTiers event — trace is no longer byte-identical"
    );
}
