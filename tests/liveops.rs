//! The live-operations surface's correctness contract, end to end on a
//! faulted market run:
//!
//! * attaching a [`LiveOps`] store is **trajectory-neutral** — the traced
//!   run is byte-identical to a plain ring-traced run, and the store's
//!   streamed copy of the trace is byte-identical to both;
//! * **replay determinism** — reconstructing from *every* retained
//!   snapshot (snapshot + delta fold) lands on the same final state,
//!   byte for byte, as the snapshot the run took at the horizon;
//! * the bounded **stream sink** delivers the exact same records as the
//!   ring when sized, and counts its drops exactly (oldest-first,
//!   surfaced as metrics, never silent) when undersized;
//! * store-served operator queries carry the honest [`Freshness`]
//!   contract: an empty window reports the a-priori bound, not zero.

use std::sync::OnceLock;

use p2p_resource_pool::pool::liveops::{hosts_crossed_up, hosts_over_threshold, reconstruct_at};
use p2p_resource_pool::prelude::*;
use p2p_resource_pool::simcore::trace::to_json_lines;
use p2p_resource_pool::simcore::StreamSink;

const SEED: u64 = 29;
const HOSTS: usize = 150;

/// One pristine pool shared across tests (cloned per run; building the
/// coordinate space is the expensive part).
fn pristine() -> &'static ResourcePool {
    static POOL: OnceLock<ResourcePool> = OnceLock::new();
    POOL.get_or_init(|| {
        ResourcePool::build(
            &PoolConfig {
                net: NetworkConfig {
                    num_hosts: HOSTS,
                    ..NetworkConfig::default()
                },
                coord_rounds: 4,
                ..PoolConfig::default()
            },
            SEED,
        )
    })
}

/// A fig10-style faulted market: helper and root crashes, leases,
/// failover — every market event family fires.
fn market() -> MarketSim {
    let mut faults = simcore::FaultPlan::none();
    for h in (0..HOSTS as u64).step_by(7) {
        faults = faults.crash_forever(h, SimTime::from_secs(600 + h));
    }
    let cfg = MarketConfig {
        sessions: 6,
        member_size: 12,
        horizon: SimTime::from_secs(1200),
        warmup: SimTime::from_secs(300),
        faults,
        ..MarketConfig::default()
    };
    MarketSim::new(pristine().clone(), cfg, SEED)
}

#[test]
fn liveops_store_is_trajectory_neutral_and_replays_byte_identically() {
    // Reference: the plain ring-traced run.
    let mut sim = market();
    sim.set_tracer(Tracer::ring(1 << 16));
    let (ring_out, ring_pool) = sim.run_full();
    let ring_trace = to_json_lines(&ring_out.trace);
    assert!(
        !ring_out.trace.is_empty(),
        "faulted market must emit events"
    );

    // The same run with the live-operations surface attached.
    let mut sim = market();
    let lo = LiveOps::new(LiveOpsConfig {
        snapshot_period: SimTime::from_secs(60),
        ..LiveOpsConfig::default()
    });
    let handle = sim.attach_liveops(lo);
    let (store_out, store_pool) = sim.run_full();
    let store = handle.lock().expect("store lock");

    // Trajectory neutrality: same trace through the store, same outcome,
    // same final degree tables.
    assert_eq!(
        ring_trace,
        store.trace_json_lines().expect("nothing evicted"),
        "attaching the store changed (or lost part of) the trace"
    );
    assert!(store_out.trace.is_empty(), "store owns the records");
    assert_eq!(ring_out.plans, store_out.plans);
    assert_eq!(ring_out.leaked_degrees, store_out.leaked_degrees);
    for h in (0..HOSTS as u32).map(HostId) {
        assert_eq!(ring_pool.table(h), store_pool.table(h));
        assert_eq!(ring_pool.is_alive(h), store_pool.is_alive(h));
    }

    // Exact accounting: every record appended, nothing evicted or silent.
    let stats = store.stats();
    assert_eq!(stats.trace_appended, ring_out.trace.len() as u64);
    assert_eq!(stats.trace_evicted, 0);
    assert_eq!(stats.delta_evicted, 0);
    assert!(stats.snapshots >= 2, "periodic snapshots must have fired");

    // Replay determinism: every snapshot + delta fold reconstructs the
    // final state byte-identically, and that state is the live pool's.
    let final_state = &store.latest_snapshot().expect("final snapshot").state;
    let final_json = serde_json::to_string(final_state).expect("serializes");
    for idx in 0..store.snapshots().len() {
        let replayed = reconstruct_at(&store, idx).expect("nothing evicted");
        assert_eq!(
            serde_json::to_string(&replayed).expect("serializes"),
            final_json,
            "replay from snapshot {idx} diverged"
        );
    }
    for (i, hs) in final_state.hosts.iter().enumerate() {
        assert_eq!(&hs.table, store_pool.table(HostId(i as u32)));
    }

    // Store-served operator queries carry the Freshness contract.
    let bound = SimTime::from_secs(60);
    let over = hosts_over_threshold(&store, 0.9, bound);
    assert!(!over.freshness.empty_scope());
    let horizon = SimTime::from_secs(1200);
    let empty = hosts_crossed_up(&store, horizon + SimTime::from_secs(1), bound);
    assert!(empty.hosts.is_empty());
    assert!(empty.freshness.empty_scope());
    assert_eq!(
        empty.freshness.staleness(horizon),
        bound,
        "an empty window must admit the a-priori bound, not claim freshness"
    );
}

#[test]
fn stream_sink_matches_ring_when_sized_and_counts_drops_exactly_when_not() {
    let mut sim = market();
    sim.set_tracer(Tracer::ring(1 << 16));
    let (ring_out, _) = sim.run_full();
    let emitted = ring_out.trace.len() as u64;
    let ring_trace = to_json_lines(&ring_out.trace);

    // Sized stream: byte-identical delivery, zero drops.
    let (sink, stream) = StreamSink::bounded(1 << 16);
    let mut sim = market();
    sim.set_tracer(Tracer::with_sink(Box::new(sink)));
    let _ = sim.run_full();
    assert_eq!(stream.dropped(), 0);
    assert_eq!(stream.delivered(), emitted);
    assert_eq!(to_json_lines(&stream.drain()), ring_trace);

    // Undersized stream: exact counted drops, oldest evicted first, and
    // the loss surfaced through the metrics registry — never silent.
    const TINY: usize = 96;
    assert!(
        emitted > TINY as u64,
        "workload must overflow the tiny sink"
    );
    let (sink, tiny) = StreamSink::bounded(TINY);
    let mut sim = market();
    sim.set_tracer(Tracer::with_sink(Box::new(sink)));
    let _ = sim.run_full();
    let expect_dropped = emitted - TINY as u64;
    assert_eq!(tiny.dropped(), expect_dropped);
    assert_eq!(tiny.delivered() + tiny.dropped(), emitted);
    let survivors = tiny.drain();
    assert_eq!(survivors.len(), TINY);
    assert_eq!(survivors[0].seq, expect_dropped, "oldest must go first");
    assert_eq!(survivors.last().expect("non-empty").seq, emitted - 1);
    let mut reg = MetricsRegistry::new();
    tiny.publish_metrics(&mut reg);
    assert_eq!(reg.counter("trace.dropped_records"), expect_dropped);
    assert_eq!(reg.counter("trace.stream_delivered"), TINY as u64);
}
