//! Continuous standing queries: threshold subscriptions.
//!
//! A task manager that keeps replanning wants to know *when the answer
//! changes*, not to re-ask every period. A [`Subscription`] registers a
//! predicate over the aggregate lattice — "the count of hosts within
//! radius R of my session offering ≥ D free degrees" — and the index
//! evaluates it once per newscast cycle. A [`ThresholdDelta`] is emitted
//! **only on crossings** (the count moving from at-or-above the threshold
//! to below it, or back), so steady state costs zero extra wire bytes: the
//! deltas that do fire piggyback on the newscast dissemination already
//! flowing root→leaf each period (see [`somo::newscast`]), and
//! [`SubscriptionSet::account_dissemination`] charges exactly that
//! incremental cost.
//!
//! This is the query-layer rendering of the paper's "news broadcast"
//! discipline: the tree already visits every member each cycle, so a delta
//! rides for the marginal bytes of its payload rather than a dedicated
//! round-trip.

use serde::{Deserialize, Serialize};
use simcore::SimTime;
use somo::traffic::TrafficLedger;

use crate::aggregate::Aggregate;
use crate::index::QueryIndex;

/// An edge-triggered watch on the cluster backpressure signal: fires only
/// when the free-degree fraction at `rank` crosses `threshold`. This is the
/// admission controller's subscription to its SOMO parent's aggregate —
/// the same crossings-only discipline as [`Subscription`], applied to the
/// [`crate::aggregate::PressureReport`] instead of a region count.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PressureWatch {
    /// Claim rank whose free fraction is watched (0..=3).
    pub rank: u8,
    /// Scarcity threshold: scarce when `free_frac[rank] < threshold`.
    pub threshold: f64,
    /// Last observed side of the threshold (`None` before any observation).
    last_scarce: Option<bool>,
}

impl PressureWatch {
    /// A watch that has observed nothing yet.
    pub fn new(rank: u8, threshold: f64) -> PressureWatch {
        PressureWatch {
            rank: rank.min(3),
            threshold,
            last_scarce: None,
        }
    }

    /// Fold one aggregate observation in. Returns `Some(scarce)` only on a
    /// crossing (including the very first observation when it is scarce),
    /// `None` while the signal stays on the same side.
    pub fn observe(&mut self, agg: &Aggregate) -> Option<bool> {
        let scarce = agg.pressure().free_frac[self.rank as usize] < self.threshold;
        let fired = match self.last_scarce {
            None => scarce,
            Some(prev) => prev != scarce,
        };
        self.last_scarce = Some(scarce);
        fired.then_some(scarce)
    }

    /// The side of the threshold seen last (`None` before any observation).
    pub fn is_scarce(&self) -> Option<bool> {
        self.last_scarce
    }
}

/// A standing threshold query over the pool.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Subscription {
    /// Subscription id (unique per set).
    pub id: u64,
    /// Ring member that registered the subscription (deltas are delivered
    /// to its canonical leaf).
    pub member: u32,
    /// Disk center in coordinate space (ms).
    pub center: [f64; 2],
    /// Disk radius (ms).
    pub radius: f64,
    /// Claim rank the availability filter applies to (0..=3).
    pub rank: u8,
    /// Minimum free degree for a host to count.
    pub min_free: u32,
    /// Fire when the count of qualifying hosts drops below this.
    pub threshold: u64,
}

/// One emitted crossing notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdDelta {
    /// The subscription that fired.
    pub sub: u64,
    /// Evaluation time.
    pub at: SimTime,
    /// `true` = the count just dropped below the threshold (alarm);
    /// `false` = it recovered to at-or-above (all-clear).
    pub below: bool,
    /// The count observed at the crossing.
    pub count: u64,
}

impl ThresholdDelta {
    /// Fixed wire size of a delta riding in a newscast publication:
    /// sub id (8) + stamp (8) + flag (1) + count (8).
    pub const WIRE_BYTES: usize = 25;
}

/// A set of standing queries evaluated against one [`QueryIndex`].
#[derive(Default)]
pub struct SubscriptionSet {
    subs: Vec<Subscription>,
    /// Last known below/above state per subscription (index-aligned with
    /// `subs`); `None` until first evaluated.
    state: Vec<Option<bool>>,
    next_id: u64,
    /// Incremental dissemination traffic charged for emitted deltas.
    traffic: TrafficLedger,
}

impl SubscriptionSet {
    /// An empty set.
    pub fn new() -> SubscriptionSet {
        SubscriptionSet::default()
    }

    /// Register a standing query; returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn subscribe(
        &mut self,
        member: u32,
        center: [f64; 2],
        radius: f64,
        rank: u8,
        min_free: u32,
        threshold: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.subs.push(Subscription {
            id,
            member,
            center,
            radius,
            rank,
            min_free,
            threshold,
        });
        self.state.push(None);
        id
    }

    /// Drop a subscription by id.
    pub fn unsubscribe(&mut self, id: u64) {
        if let Some(i) = self.subs.iter().position(|s| s.id == id) {
            self.subs.remove(i);
            self.state.remove(i);
        }
    }

    /// Registered subscriptions.
    pub fn subscriptions(&self) -> &[Subscription] {
        &self.subs
    }

    /// Evaluate every subscription against the index's current aggregates
    /// and emit deltas for the predicates that *crossed* their threshold
    /// since the last evaluation (first evaluation emits only alarms, so a
    /// healthy pool starts silent).
    pub fn evaluate(&mut self, index: &mut QueryIndex, now: SimTime) -> Vec<ThresholdDelta> {
        let mut deltas = Vec::new();
        for i in 0..self.subs.len() {
            let sub = self.subs[i].clone();
            let ans = index.range(sub.center, sub.radius, sub.rank as usize, sub.min_free);
            let count = ans.hosts.len() as u64;
            let below = count < sub.threshold;
            let fire = match self.state[i] {
                None => below, // initial alarm only
                Some(prev) => prev != below,
            };
            self.state[i] = Some(below);
            if fire {
                let d = ThresholdDelta {
                    sub: sub.id,
                    at: now,
                    below,
                    count,
                };
                self.account_dissemination(index, sub.member, &d);
                deltas.push(d);
            }
        }
        deltas
    }

    /// Charge a delta's piggyback ride on the newscast dissemination path:
    /// the marginal payload bytes across the inter-host edges from the root
    /// down to the subscriber's canonical leaf. No extra messages — the
    /// publication is flowing anyway.
    fn account_dissemination(&mut self, index: &QueryIndex, member: u32, _d: &ThresholdDelta) {
        let leaf = index.leaf_of(member as usize);
        let mut cur = leaf;
        let mut edges = 0u64;
        while let Some(p) = index.tree().nodes()[cur as usize].parent {
            if index.tree().nodes()[p as usize].host != index.tree().nodes()[cur as usize].host {
                edges += 1;
            }
            cur = p;
        }
        self.traffic.bytes += edges * ThresholdDelta::WIRE_BYTES as u64;
    }

    /// Incremental dissemination traffic charged so far.
    pub fn traffic(&self) -> TrafficLedger {
        self.traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{HostSample, RegionBounds};
    use dht::Ring;
    use netsim::HostId;
    use somo::Report;

    fn sample(m: usize, free3: u32) -> HostSample {
        HostSample {
            host: HostId(m as u32),
            free: [free3 + 3, free3 + 2, free3 + 1, free3],
            pos: [0.0, 0.0],
            bw_class: 0,
            sampled_at: SimTime::from_secs(1),
            capacity: free3 + 4,
            queued: 0,
            preempted: 0,
        }
    }

    #[test]
    fn pressure_watch_fires_only_on_crossings() {
        let bounds = RegionBounds::default();
        let agg = |free3: u32| {
            let mut a = Aggregate::empty();
            for m in 0..4 {
                a.merge(&Aggregate::of_sample(&sample(m, free3), &bounds));
            }
            a
        };
        // sample() publishes capacity free3 + 4, so free_frac[3] for a
        // uniform pool is free3 / (free3 + 4).
        let mut w = PressureWatch::new(3, 0.5);
        assert_eq!(w.is_scarce(), None);
        // free 8 of capacity 12 → frac 2/3, abundant: first observation on
        // the calm side fires nothing.
        assert_eq!(w.observe(&agg(8)), None);
        assert_eq!(w.is_scarce(), Some(false));
        // free 2 of capacity 6 → frac 1/3: scarcity crossing fires.
        assert_eq!(w.observe(&agg(2)), Some(true));
        // Staying scarce is silent.
        assert_eq!(w.observe(&agg(1)), None);
        // Recovery fires the all-clear.
        assert_eq!(w.observe(&agg(9)), Some(false));
        // A watch whose very first observation is scarce alarms at once.
        let mut cold = PressureWatch::new(3, 0.5);
        assert_eq!(cold.observe(&agg(1)), Some(true));
    }

    fn build(n: u32) -> QueryIndex {
        let ring = Ring::with_random_ids((0..n).map(HostId), 77);
        QueryIndex::build(
            &ring,
            4,
            SimTime::from_secs(5),
            RegionBounds::default(),
            |m| Some(sample(m, 5)),
        )
    }

    #[test]
    fn deltas_fire_only_on_crossings() {
        let mut idx = build(50);
        let mut subs = SubscriptionSet::new();
        let id = subs.subscribe(0, [0.0, 0.0], 100.0, 3, 1, 30);
        // 50 hosts with free 5 ≥ threshold 30: silent.
        assert!(subs.evaluate(&mut idx, SimTime::from_secs(10)).is_empty());
        // Re-evaluating an unchanged pool stays silent (no repeat spam).
        assert!(subs.evaluate(&mut idx, SimTime::from_secs(15)).is_empty());
        // Drain 25 hosts to zero free: count 25 < 30 → one alarm.
        for m in 0..25 {
            idx.update_member(m, Some(sample(m, 0)));
        }
        let fired = subs.evaluate(&mut idx, SimTime::from_secs(20));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].sub, id);
        assert!(fired[0].below);
        assert_eq!(fired[0].count, 25);
        // Still below: silent again.
        assert!(subs.evaluate(&mut idx, SimTime::from_secs(25)).is_empty());
        // Recover → one all-clear.
        for m in 0..25 {
            idx.update_member(m, Some(sample(m, 5)));
        }
        let clear = subs.evaluate(&mut idx, SimTime::from_secs(30));
        assert_eq!(clear.len(), 1);
        assert!(!clear[0].below);
    }

    #[test]
    fn initial_evaluation_alarms_an_already_starved_pool() {
        let mut idx = build(10);
        let mut subs = SubscriptionSet::new();
        subs.subscribe(0, [0.0, 0.0], 100.0, 3, 1, 50);
        let fired = subs.evaluate(&mut idx, SimTime::from_secs(1));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].below);
    }

    #[test]
    fn dissemination_traffic_charged_per_delta() {
        let mut idx = build(60);
        let mut subs = SubscriptionSet::new();
        subs.subscribe(3, [0.0, 0.0], 100.0, 3, 1, 200);
        let before = subs.traffic().bytes;
        let fired = subs.evaluate(&mut idx, SimTime::from_secs(5));
        assert_eq!(fired.len(), 1);
        assert!(subs.traffic().bytes >= before, "bytes must not regress");
        // Steady state: no further deltas, no further bytes.
        let t = subs.traffic().bytes;
        subs.evaluate(&mut idx, SimTime::from_secs(10));
        assert_eq!(subs.traffic().bytes, t);
    }

    #[test]
    fn unsubscribe_stops_evaluation() {
        let mut idx = build(10);
        let mut subs = SubscriptionSet::new();
        let id = subs.subscribe(0, [0.0, 0.0], 100.0, 3, 1, 50);
        subs.unsubscribe(id);
        assert!(subs.subscriptions().is_empty());
        assert!(subs.evaluate(&mut idx, SimTime::from_secs(1)).is_empty());
    }
}
