//! Point, range and top-k queries over the cached aggregate lattice.
//!
//! Every query is a **descent**: it starts at a scope node (the root, or
//! the requester's nearest ancestor that provably covers the demand) and
//! walks down the SOMO tree, pruning each subtree whose cached
//! [`Aggregate`] proves it cannot contribute to the answer. Pruning is what
//! buys the asymptotics — a top-k descent touches `O(k·log_k N)` nodes
//! where a snapshot gather touches all `N`.
//!
//! **Exactness.** The top-k descent is branch-and-bound with ties
//! *expanded, never pruned*: a subtree is skipped only when its cached
//! maximum is *strictly* below the current kth-best free degree. Combined
//! with the final total order (free degree desc, host id asc) this makes
//! the answer bit-identical to a brute-force scan of the same samples —
//! the property the cross-crate proptests pin down.
//!
//! **Freshness.** Answers are served from cache, so they can lag reality.
//! Each answer carries a [`Freshness`] stamp: the oldest sample time folded
//! into the consulted scope, plus the a-priori bound from
//! [`somo::flow::unsync_staleness_bound`] — the paper's `ceil(log_k N)·T`.
//! A consumer can reject an answer whose bound exceeds its tolerance
//! without any extra round-trip.
//!
//! **Traffic model.** Same conventions as [`somo::flow::GatherSim`]:
//! same-host hops are free. A node holds its children's aggregates in cache
//! (the gather pushed them up), so inspecting a child's summary costs
//! nothing — only *entering* a child across an inter-host edge is charged:
//! one request down ([`REQUEST_WIRE_BYTES`]) and one partial answer up
//! ([`Aggregate::WIRE_BYTES`]). Each returned sample additionally rides the
//! partials across the inter-host edges between its leaf and the scope
//! node ([`HostSample::WIRE_BYTES`] each). Pruned subtrees are decided from
//! the cached summaries and cost zero bytes — that is where the
//! `O(k·log_k N)` wire cost comes from.

use netsim::HostId;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use somo::Report;

use crate::aggregate::{Aggregate, HostSample};
use crate::index::QueryIndex;

/// Wire size charged per query request forwarded down the tree.
pub const REQUEST_WIRE_BYTES: usize = 40;

impl HostSample {
    /// Fixed wire size of one sample riding in an answer:
    /// host (4) + free (16) + pos (16) + bw class (1) + stamp (8) +
    /// capacity (4) + queued (4) + preempted (4).
    pub const WIRE_BYTES: usize = 57;
}

/// Where a query descent starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scope {
    /// Descend from the SOMO root: answers are exact over the whole pool.
    Global,
    /// Ascend from this ring member's canonical leaf to the nearest
    /// ancestor whose aggregate already guarantees the demand, then descend
    /// only that subtree — the paper's locality discipline ("most of the
    /// requests can be resolved in the lower part of the hierarchy").
    Nearest {
        /// The requesting ring member.
        member: u32,
    },
}

/// A query, as shipped to the scope node's host.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum QueryRequest {
    /// Look up one host's latest published sample.
    Point {
        /// The host to look up.
        host: HostId,
    },
    /// All hosts within `radius` ms of `center` offering at least
    /// `min_free` degrees at `rank`.
    Range {
        /// Disk center in coordinate space (ms).
        center: [f64; 2],
        /// Disk radius (ms).
        radius: f64,
        /// Claim rank the availability filter applies to (0..=3).
        rank: u8,
        /// Minimum free degree at `rank`.
        min_free: u32,
    },
    /// The `k` hosts with the most free degree at `rank` (ties broken by
    /// host id ascending), excluding `exclude`.
    TopK {
        /// How many hosts to return.
        k: u32,
        /// Claim rank to maximize availability at (0..=3).
        rank: u8,
        /// Minimum free degree for a host to qualify.
        min_free: u32,
        /// Hosts to leave out (e.g. session members already in the tree).
        exclude: Vec<HostId>,
        /// Where the descent starts.
        scope: Scope,
    },
}

/// How stale an answer can be, stated explicitly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Freshness {
    /// The oldest sample time folded into the consulted scope
    /// (`SimTime::MAX` when the scope was empty).
    pub oldest: SimTime,
    /// A-priori staleness bound of the serving index:
    /// `ceil(log_k N) · T` per [`somo::flow::unsync_staleness_bound`].
    pub bound: SimTime,
}

impl Freshness {
    /// Whether the consulted scope contained no samples at all.
    pub fn empty_scope(&self) -> bool {
        self.oldest == SimTime::MAX
    }

    /// Observed staleness of the answer at time `now`.
    ///
    /// An **empty** consulted scope proves nothing about the pool, so it
    /// reports the a-priori `bound` — the worst staleness the serving
    /// surface admits — rather than the `ZERO` ("perfectly fresh") it used
    /// to claim. An operator dashboard watching an empty answer sees the
    /// honest uncertainty, not false confidence; use
    /// [`Freshness::empty_scope`] to distinguish the two cases explicitly.
    pub fn staleness(&self, now: SimTime) -> SimTime {
        if self.empty_scope() {
            self.bound
        } else {
            now.saturating_sub(self.oldest)
        }
    }
}

/// Work and traffic accounting for one query evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Logical tree nodes expanded.
    pub nodes_visited: u64,
    /// Reporting leaves whose samples were inspected.
    pub leaves_scanned: u64,
    /// Subtrees pruned via cached aggregates.
    pub subtrees_pruned: u64,
    /// Inter-host messages charged.
    pub messages: u64,
    /// Bytes on the wire charged.
    pub bytes: u64,
}

/// The answer to a [`QueryRequest`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryAnswer {
    /// The request this answers.
    pub request: QueryRequest,
    /// Matching samples. Point: zero or one. Range and top-k: sorted by
    /// (free degree at the requested rank desc, host id asc).
    pub hosts: Vec<HostSample>,
    /// Aggregate over the consulted scope (range answers additionally use
    /// it to report the match summary).
    pub summary: Aggregate,
    /// Explicit staleness statement for this answer.
    pub freshness: Freshness,
    /// Evaluation cost.
    pub stats: QueryStats,
}

impl QueryIndex {
    /// Look up one host's latest published sample by descending from the
    /// root along the path to its canonical leaf.
    pub fn point(&mut self, host: HostId) -> QueryAnswer {
        let mut stats = QueryStats::default();
        let request = QueryRequest::Point { host };
        let mut hosts = Vec::new();
        let mut oldest = SimTime::MAX;
        if let Some(&m) = self.member_of_host.get(&host) {
            // Walk root → leaf, charging each inter-host hop.
            let leaf = self.leaf_of[m];
            let hops = self.path_to_root(leaf);
            stats.nodes_visited = hops.len() as u64;
            for _ in 0..self.inter_host_edges(leaf, 0) {
                stats.messages += 2; // request down, answer up
                stats.bytes += (REQUEST_WIRE_BYTES + HostSample::WIRE_BYTES) as u64;
            }
            stats.leaves_scanned = 1;
            if let Some(s) = &self.samples[m] {
                oldest = s.sampled_at;
                hosts.push(*s);
            }
        }
        self.query_traffic.messages += stats.messages;
        self.query_traffic.bytes += stats.bytes;
        QueryAnswer {
            request,
            hosts,
            summary: self.aggs[0].clone(),
            freshness: Freshness {
                oldest,
                bound: self.freshness_bound(),
            },
            stats,
        }
    }

    /// All hosts within `radius` ms of `center` with at least `min_free`
    /// degrees at `rank`, pruning subtrees via the cached region and degree
    /// histograms. Matches sorted by (free desc, host asc).
    pub fn range(
        &mut self,
        center: [f64; 2],
        radius: f64,
        rank: usize,
        min_free: u32,
    ) -> QueryAnswer {
        assert!(rank < 4, "rank out of range");
        let request = QueryRequest::Range {
            center,
            radius,
            rank: rank as u8,
            min_free,
        };
        let mut stats = QueryStats::default();
        let mut matches: Vec<HostSample> = Vec::new();
        let mut summary = Aggregate::empty();
        let mut stack = vec![0u32];
        while let Some(cur) = stack.pop() {
            let agg = &self.aggs[cur as usize];
            if agg.is_empty()
                || agg.free[rank].max < min_free
                || !self.region_hist_intersects(agg, center, radius)
            {
                stats.subtrees_pruned += 1;
                continue;
            }
            stats.nodes_visited += 1;
            self.charge_expansion(cur, 0, &mut stats);
            if let Some(m) = self.member_of_leaf.get(&cur).copied() {
                if let Some(s) = self.samples[m] {
                    stats.leaves_scanned += 1;
                    if s.free[rank] >= min_free && dist(s.pos, center) <= radius {
                        summary.merge(&Aggregate::of_sample(&s, &self.bounds));
                        self.charge_sample_return(cur, 0, &mut stats);
                        matches.push(s);
                    }
                }
            }
            stack.extend(self.tree.nodes()[cur as usize].children.iter().copied());
        }
        matches.sort_by(|a, b| b.free[rank].cmp(&a.free[rank]).then(a.host.cmp(&b.host)));
        let oldest = summary.oldest;
        self.query_traffic.messages += stats.messages;
        self.query_traffic.bytes += stats.bytes;
        QueryAnswer {
            request,
            hosts: matches,
            summary,
            freshness: Freshness {
                oldest,
                bound: self.freshness_bound(),
            },
            stats,
        }
    }

    /// The `k` qualifying hosts with the most free degree at `rank`.
    ///
    /// Branch-and-bound descent from the scope node: a subtree is expanded
    /// whenever its cached `free[rank].max` is **at least** the current
    /// kth-best match (strictly-worse subtrees are pruned), which makes the
    /// final (free desc, host asc) order exactly equal to a brute-force
    /// scan of the same samples.
    pub fn top_k(
        &mut self,
        k: usize,
        rank: usize,
        min_free: u32,
        exclude: &[HostId],
        scope: Scope,
    ) -> QueryAnswer {
        assert!(rank < 4, "rank out of range");
        let request = QueryRequest::TopK {
            k: k as u32,
            rank: rank as u8,
            min_free,
            exclude: exclude.to_vec(),
            scope,
        };
        let mut stats = QueryStats::default();
        let scope_node = self.scope_node(k, min_free, scope, &mut stats);

        // Best-first expansion ordered by cached subtree max (ties by node
        // index for determinism).
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<(u32, Reverse<u32>)> = BinaryHeap::new();
        heap.push((
            self.aggs[scope_node as usize].free[rank].max,
            Reverse(scope_node),
        ));
        let mut matches: Vec<HostSample> = Vec::new();
        // Min-heap of the k best free degrees seen so far; its top is the
        // pruning threshold once k matches exist.
        let mut best: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        while let Some((max, Reverse(cur))) = heap.pop() {
            let threshold = if best.len() >= k {
                best.peek().map(|Reverse(v)| *v).unwrap_or(0)
            } else {
                0
            };
            if (max < threshold && best.len() >= k) || max < min_free {
                stats.subtrees_pruned += 1 + heap.len() as u64;
                break; // heap is max-ordered: nothing left can qualify
            }
            if self.aggs[cur as usize].is_empty() {
                stats.subtrees_pruned += 1;
                continue;
            }
            stats.nodes_visited += 1;
            self.charge_expansion(cur, scope_node, &mut stats);
            if let Some(m) = self.member_of_leaf.get(&cur).copied() {
                if let Some(s) = self.samples[m] {
                    stats.leaves_scanned += 1;
                    if s.free[rank] >= min_free && !exclude.contains(&s.host) {
                        if best.len() >= k {
                            best.pop();
                        }
                        best.push(Reverse(s.free[rank]));
                        self.charge_sample_return(cur, scope_node, &mut stats);
                        matches.push(s);
                    }
                }
            }
            for &c in &self.tree.nodes()[cur as usize].children {
                let cmax = self.aggs[c as usize].free[rank].max;
                heap.push((cmax, Reverse(c)));
            }
        }
        matches.sort_by(|a, b| b.free[rank].cmp(&a.free[rank]).then(a.host.cmp(&b.host)));
        matches.truncate(k);

        let summary = self.aggs[scope_node as usize].clone();
        // Final hop: the scope node's host returns the answer to the
        // requester (charged only when they differ).
        if let Scope::Nearest { member } = scope {
            let leaf = self.leaf_of[member as usize];
            let leaf_host = self.tree.nodes()[leaf as usize].host;
            if self.tree.nodes()[scope_node as usize].host != leaf_host {
                stats.messages += 1;
                stats.bytes +=
                    (Aggregate::WIRE_BYTES + matches.len() * HostSample::WIRE_BYTES) as u64;
            }
        }
        let oldest = summary.oldest;
        self.query_traffic.messages += stats.messages;
        self.query_traffic.bytes += stats.bytes;
        QueryAnswer {
            request,
            hosts: matches,
            summary,
            freshness: Freshness {
                oldest,
                bound: self.freshness_bound(),
            },
            stats,
        }
    }

    /// Resolve a [`Scope`] to the node the descent starts at. `Nearest`
    /// climbs from the member's canonical leaf until the cached aggregate
    /// guarantees at least `k` hosts at `min_free.max(1)` free degree (each
    /// upward hop is a charged request).
    fn scope_node(&self, k: usize, min_free: u32, scope: Scope, stats: &mut QueryStats) -> u32 {
        match scope {
            Scope::Global => 0,
            Scope::Nearest { member } => {
                let need = min_free.max(1);
                let mut cur = self.leaf_of[member as usize];
                loop {
                    if self.aggs[cur as usize].guaranteed_at_least(need) >= k as u64 {
                        return cur;
                    }
                    let node = &self.tree.nodes()[cur as usize];
                    let Some(p) = node.parent else { return cur };
                    if self.tree.nodes()[p as usize].host != node.host {
                        stats.messages += 1;
                        stats.bytes += REQUEST_WIRE_BYTES as u64;
                    }
                    cur = p;
                }
            }
        }
    }

    /// Charge entering `node` from its parent during a descent rooted at
    /// `scope`: one request down and one partial answer back across the
    /// parent edge, if it is inter-host. Sibling summaries are already
    /// cached at the parent (the gather put them there), so deciding *not*
    /// to enter a child is free — only traversed edges cost bytes.
    fn charge_expansion(&self, node: u32, scope: u32, stats: &mut QueryStats) {
        if node == scope {
            return; // the descent starts here; no edge was crossed
        }
        let Some(p) = self.tree.nodes()[node as usize].parent else {
            return;
        };
        if self.tree.nodes()[p as usize].host != self.tree.nodes()[node as usize].host {
            stats.messages += 2;
            stats.bytes += (REQUEST_WIRE_BYTES + Aggregate::WIRE_BYTES) as u64;
        }
    }

    /// Charge a matched sample's ride from its leaf up to the scope node
    /// (it piggybacks on partial answers, so only bytes are charged).
    fn charge_sample_return(&self, leaf: u32, scope: u32, stats: &mut QueryStats) {
        stats.bytes += self.inter_host_edges(leaf, scope) * HostSample::WIRE_BYTES as u64;
    }

    /// Nodes on the path from `node` to the root, inclusive.
    fn path_to_root(&self, node: u32) -> Vec<u32> {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.tree.nodes()[cur as usize].parent {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Inter-host edges on the path from `node` up to `top` (or to the
    /// root if `top` is not an ancestor).
    fn inter_host_edges(&self, node: u32, top: u32) -> u64 {
        let mut edges = 0;
        let mut cur = node;
        while cur != top {
            let n = &self.tree.nodes()[cur as usize];
            let Some(p) = n.parent else { break };
            if self.tree.nodes()[p as usize].host != n.host {
                edges += 1;
            }
            cur = p;
        }
        edges
    }

    /// Whether any occupied region-histogram cell of `agg` intersects the
    /// query disk — the geometric pruning test for range queries.
    fn region_hist_intersects(&self, agg: &Aggregate, center: [f64; 2], radius: f64) -> bool {
        agg.region_hist.iter().enumerate().any(|(b, &count)| {
            if count == 0 {
                return false;
            }
            let (lo, hi) = self.bounds.bucket_box(b);
            let cx = center[0].clamp(lo[0], hi[0]);
            let cy = center[1].clamp(lo[1], hi[1]);
            dist([cx, cy], center) <= radius
        })
    }
}

fn dist(a: [f64; 2], b: [f64; 2]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    (dx * dx + dy * dy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::RegionBounds;
    use dht::Ring;

    fn sample(m: usize, free3: u32, pos: [f64; 2]) -> HostSample {
        HostSample {
            host: HostId(m as u32),
            free: [free3 + 3, free3 + 2, free3 + 1, free3],
            pos,
            bw_class: (m % 5) as u8,
            sampled_at: SimTime::from_secs(10 + (m as u64 % 7)),
            capacity: free3 + 4,
            queued: 0,
            preempted: 0,
        }
    }

    fn build(n: u32, seed: u64) -> QueryIndex {
        let ring = Ring::with_random_ids((0..n).map(netsim::HostId), seed);
        QueryIndex::build(
            &ring,
            4,
            SimTime::from_secs(5),
            RegionBounds::default(),
            |m| {
                Some(sample(
                    m,
                    ((m * 31) % 23) as u32,
                    [
                        ((m * 13) % 160) as f64 - 80.0,
                        ((m * 29) % 160) as f64 - 80.0,
                    ],
                ))
            },
        )
    }

    fn brute_top_k(idx: &QueryIndex, k: usize, rank: usize, min_free: u32) -> Vec<HostId> {
        let mut all: Vec<HostSample> = (0..idx.members())
            .filter_map(|m| idx.sample(m).copied())
            .collect();
        all.retain(|s| s.free[rank] >= min_free);
        all.sort_by(|a, b| b.free[rank].cmp(&a.free[rank]).then(a.host.cmp(&b.host)));
        all.truncate(k);
        all.into_iter().map(|s| s.host).collect()
    }

    #[test]
    fn top_k_matches_brute_force() {
        let mut idx = build(200, 42);
        for (k, min_free) in [(1, 0), (5, 0), (10, 4), (50, 1), (500, 0)] {
            let ans = idx.top_k(k, 3, min_free, &[], Scope::Global);
            let got: Vec<HostId> = ans.hosts.iter().map(|s| s.host).collect();
            assert_eq!(
                got,
                brute_top_k(&idx, k, 3, min_free),
                "k={k} min={min_free}"
            );
        }
    }

    #[test]
    fn top_k_prunes_most_of_the_tree() {
        let mut idx = build(512, 7);
        let ans = idx.top_k(5, 3, 0, &[], Scope::Global);
        assert_eq!(ans.hosts.len(), 5);
        // The whole point: far fewer leaves scanned than members.
        assert!(
            ans.stats.leaves_scanned < idx.members() as u64 / 4,
            "scanned {} of {} members",
            ans.stats.leaves_scanned,
            idx.members()
        );
        assert!(ans.stats.subtrees_pruned > 0);
    }

    #[test]
    fn top_k_respects_exclusions() {
        let mut idx = build(100, 9);
        let full = idx.top_k(3, 3, 0, &[], Scope::Global);
        let banned: Vec<HostId> = full.hosts.iter().map(|s| s.host).collect();
        let ans = idx.top_k(3, 3, 0, &banned, Scope::Global);
        for s in &ans.hosts {
            assert!(!banned.contains(&s.host));
        }
        assert_eq!(ans.hosts.len(), 3);
    }

    #[test]
    fn nearest_scope_still_returns_k_when_possible() {
        let mut idx = build(300, 21);
        let ans = idx.top_k(8, 3, 1, &[], Scope::Nearest { member: 17 });
        assert_eq!(ans.hosts.len(), 8, "nearest scope starved the query");
        for s in &ans.hosts {
            assert!(s.free[3] >= 1);
        }
    }

    #[test]
    fn point_query_finds_the_host() {
        let mut idx = build(100, 3);
        let ans = idx.point(HostId(42));
        assert_eq!(ans.hosts.len(), 1);
        assert_eq!(ans.hosts[0].host, HostId(42));
        let missing = idx.point(HostId(9999));
        assert!(missing.hosts.is_empty());
    }

    #[test]
    fn range_query_matches_filtered_scan() {
        let mut idx = build(250, 5);
        let center = [0.0, 0.0];
        let radius = 60.0;
        let min_free = 3;
        let ans = idx.range(center, radius, 3, min_free);
        let mut want: Vec<HostSample> = (0..idx.members())
            .filter_map(|m| idx.sample(m).copied())
            .filter(|s| s.free[3] >= min_free && dist(s.pos, center) <= radius)
            .collect();
        want.sort_by(|a, b| b.free[3].cmp(&a.free[3]).then(a.host.cmp(&b.host)));
        assert_eq!(ans.hosts, want);
        assert_eq!(ans.summary.hosts, want.len() as u64);
    }

    #[test]
    fn answers_carry_freshness_bounds() {
        let mut idx = build(128, 2);
        let ans = idx.top_k(4, 3, 0, &[], Scope::Global);
        assert_eq!(ans.freshness.bound, idx.freshness_bound());
        // Samples were stamped 10..17 s; staleness at t=30 is ≤ 20 s and
        // oldest is the true minimum over the pool.
        assert_eq!(
            ans.freshness.oldest,
            (0..idx.members())
                .filter_map(|m| idx.sample(m))
                .map(|s| s.sampled_at)
                .min()
                .unwrap()
        );
        assert!(ans.freshness.staleness(SimTime::from_secs(30)) <= SimTime::from_secs(20));
        assert!(!ans.freshness.empty_scope());
    }

    #[test]
    fn empty_scope_staleness_reports_the_bound_not_zero() {
        let mut idx = build(64, 2);
        // A point query for an unknown host consults nothing.
        let ans = idx.point(HostId(9999));
        assert!(ans.hosts.is_empty());
        assert!(ans.freshness.empty_scope());
        let bound = ans.freshness.bound;
        assert!(bound > SimTime::ZERO);
        // An empty answer proves nothing — it must admit the a-priori
        // bound at any `now`, never claim perfect freshness.
        assert_eq!(ans.freshness.staleness(SimTime::from_secs(30)), bound);
        assert_eq!(ans.freshness.staleness(SimTime::ZERO), bound);
    }

    #[test]
    fn query_traffic_is_accounted() {
        let mut idx = build(256, 8);
        assert_eq!(idx.query_traffic().bytes, 0);
        let ans = idx.top_k(5, 3, 0, &[], Scope::Global);
        assert_eq!(idx.query_traffic().bytes, ans.stats.bytes);
        assert!(ans.stats.bytes > 0);
        idx.reset_query_traffic();
        assert_eq!(idx.query_traffic().messages, 0);
    }
}
