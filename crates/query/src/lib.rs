#![warn(missing_docs)]

//! # query — hierarchical aggregation & queries over the SOMO tree
//!
//! §3.2 promises more than monitoring: "SOMO can be used to implement
//! publish/subscribe service as well... the SOMO root can answer queries
//! about the pool without a global scan." This crate delivers that promise
//! as a first-class subsystem:
//!
//! * [`aggregate`] — the mergeable [`Aggregate`] lattice: per-rank
//!   count/sum/min/max of free degree plus fixed-bucket histograms over
//!   free degree, coordinate region and bandwidth class, constant-size
//!   under merge (proptest-checked commutative/associative);
//! * [`index`] — a [`QueryIndex`] caching one aggregate per SOMO node,
//!   maintained incrementally in `O(log_k N)` messages per member update;
//! * [`engine`] — point, range and **top-k idle-helper** queries that
//!   descend the tree pruning subtrees via the cached aggregates, each
//!   answer carrying an explicit [`Freshness`] bound derived from
//!   [`somo::flow`]'s staleness math;
//! * [`subscribe`] — continuous standing queries (threshold
//!   subscriptions) whose [`ThresholdDelta`]s fire only on crossings and
//!   piggyback on the newscast dissemination path.
//!
//! The planners in `pool` consume scoped top-k answers instead of full
//! snapshots; `ext_query` measures the payoff — sub-linear query bytes vs
//! linear snapshot bytes with identical planning quality.

pub mod aggregate;
pub mod engine;
pub mod index;
pub mod subscribe;

pub use aggregate::{Aggregate, HostSample, MetricAgg, PressureReport, RegionBounds};
pub use engine::{Freshness, QueryAnswer, QueryRequest, QueryStats, Scope};
pub use index::QueryIndex;
pub use subscribe::{PressureWatch, Subscription, SubscriptionSet, ThresholdDelta};
