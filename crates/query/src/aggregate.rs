//! The mergeable aggregate lattice cached at every SOMO node.
//!
//! An [`Aggregate`] summarizes one subtree of the SOMO tree in **constant
//! space**: per-rank count/sum/min/max of free degree, plus fixed-bucket
//! histograms over free degree, coordinate region and bandwidth class.
//! Constant size is the whole point — a parent's aggregate is the merge of
//! its children's, so the bytes crossing any tree edge do not grow with
//! subtree size, which is what makes query answers `O(log_k N)` on the wire
//! where a full snapshot gather is `O(N)`.
//!
//! `merge` is **commutative and associative** with [`Aggregate::empty`] as
//! the identity (proptest-checked in `tests/prop_aggregate.rs`); the SOMO
//! gather may therefore fold children in any order, over any intermediate
//! grouping, and arrive at the same summary.

use netsim::HostId;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use somo::Report;

/// Buckets of the free-degree histogram. Bucket `i` counts hosts whose
/// weakest-rank availability falls in `[DEGREE_BUCKET_LO[i],
/// DEGREE_BUCKET_LO[i+1])` (the last bucket is open-ended).
pub const DEGREE_BUCKETS: usize = 8;
/// Lower edges of the free-degree buckets.
pub const DEGREE_BUCKET_LO: [u32; DEGREE_BUCKETS] = [0, 1, 2, 3, 4, 8, 16, 32];

/// The coordinate-region histogram is a `REGION_GRID × REGION_GRID` grid
/// over a fixed bounding box of the first two embedding dimensions.
pub const REGION_GRID: usize = 4;
/// Total region buckets.
pub const REGION_BUCKETS: usize = REGION_GRID * REGION_GRID;

/// Bandwidth classes (mirrors `netsim::BandwidthClass`'s five-way mix).
pub const BW_CLASSES: usize = 5;

/// Fixed bounding box the region histogram is drawn over. Hosts outside
/// the box are clamped into the edge buckets, so the histogram stays a
/// census (it never drops anyone).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionBounds {
    /// Lower corner (dims 0 and 1 of the embedding), ms.
    pub min: [f64; 2],
    /// Upper corner, ms.
    pub max: [f64; 2],
}

impl Default for RegionBounds {
    /// A box generously covering the transit–stub embeddings used in this
    /// workspace (coordinates land well inside ±400 ms).
    fn default() -> Self {
        RegionBounds {
            min: [-400.0, -400.0],
            max: [400.0, 400.0],
        }
    }
}

impl RegionBounds {
    /// The grid bucket a position falls in (clamped to the box).
    pub fn bucket(&self, pos: [f64; 2]) -> usize {
        let mut idx = 0usize;
        for (d, &p) in pos.iter().enumerate() {
            let span = (self.max[d] - self.min[d]).max(f64::MIN_POSITIVE);
            let frac = ((p - self.min[d]) / span).clamp(0.0, 1.0);
            let cell = ((frac * REGION_GRID as f64) as usize).min(REGION_GRID - 1);
            idx = idx * REGION_GRID + cell;
        }
        idx
    }

    /// The closed coordinate box of one grid bucket.
    pub fn bucket_box(&self, bucket: usize) -> ([f64; 2], [f64; 2]) {
        let cx = bucket / REGION_GRID;
        let cy = bucket % REGION_GRID;
        let w = [
            (self.max[0] - self.min[0]) / REGION_GRID as f64,
            (self.max[1] - self.min[1]) / REGION_GRID as f64,
        ];
        let lo = [
            self.min[0] + cx as f64 * w[0],
            self.min[1] + cy as f64 * w[1],
        ];
        let hi = [lo[0] + w[0], lo[1] + w[1]];
        (lo, hi)
    }
}

/// The free-degree bucket an availability value falls in.
pub fn degree_bucket(avail: u32) -> usize {
    DEGREE_BUCKET_LO
        .iter()
        .rposition(|&lo| avail >= lo)
        .unwrap_or(0)
}

/// count/sum/min/max of one metric across a subtree. The identity element
/// has `count = 0`, `min = u32::MAX`, `max = 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricAgg {
    /// Number of contributions folded in.
    pub count: u64,
    /// Sum of the metric.
    pub sum: u64,
    /// Minimum (`u32::MAX` when empty).
    pub min: u32,
    /// Maximum (`0` when empty).
    pub max: u32,
}

impl Default for MetricAgg {
    fn default() -> Self {
        MetricAgg {
            count: 0,
            sum: 0,
            min: u32::MAX,
            max: 0,
        }
    }
}

impl MetricAgg {
    /// A single observation.
    pub fn of(v: u32) -> MetricAgg {
        MetricAgg {
            count: 1,
            sum: v as u64,
            min: v,
            max: v,
        }
    }

    /// Fold another aggregate in (commutative, associative).
    pub fn merge(&mut self, o: &MetricAgg) {
        self.count += o.count;
        self.sum += o.sum;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    /// Mean of the metric (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One host's published metadata — the leaf-level input to the aggregate
/// lattice (what the pool's degree table + coordinates + bandwidth class
/// boil down to on the wire).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostSample {
    /// The host.
    pub host: HostId,
    /// Degrees available to a claim of rank 0 (member), 1, 2, 3.
    pub free: [u32; 4],
    /// First two dimensions of the host's network coordinate, ms.
    pub pos: [f64; 2],
    /// Bandwidth class index (0..[`BW_CLASSES`]).
    pub bw_class: u8,
    /// When this sample was taken.
    pub sampled_at: SimTime,
    /// Total degree bound of the host — the denominator that turns the
    /// summed `free` degrees into a cluster-level free fraction.
    pub capacity: u32,
    /// Session arrivals parked in this host's admission queue (non-zero
    /// only on hosts running a market admission controller).
    pub queued: u32,
    /// Helper preemptions this host observed since its last publish.
    pub preempted: u32,
}

/// The constant-size subtree summary cached at every SOMO node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Hosts summarized.
    pub hosts: u64,
    /// Free-degree count/sum/min/max per claim rank (index = rank).
    pub free: [MetricAgg; 4],
    /// Histogram of weakest-rank (rank 3) availability over
    /// [`DEGREE_BUCKET_LO`]. Rank-3 availability lower-bounds every other
    /// rank's, so bucket sums are valid conservative match counts for any
    /// rank — the pruning bound the top-k descent uses.
    pub degree_hist: [u64; DEGREE_BUCKETS],
    /// Host count per coordinate-region grid cell.
    pub region_hist: [u64; REGION_BUCKETS],
    /// Host count per bandwidth class.
    pub bw_hist: [u64; BW_CLASSES],
    /// The stalest contribution's sample time (`SimTime::MAX` when empty) —
    /// the freshness stamp query answers propagate.
    pub oldest: SimTime,
    /// Total degree capacity across the subtree (sum of host degree
    /// bounds) — denominator of the backpressure free fraction.
    pub capacity: u64,
    /// Admission-queue depth summed across the subtree.
    pub queued: u64,
    /// Helper preemptions observed across the subtree since the hosts'
    /// last publishes.
    pub preempted: u64,
}

impl Default for Aggregate {
    fn default() -> Self {
        Aggregate::empty()
    }
}

impl Aggregate {
    /// The merge identity: zero hosts, empty histograms.
    pub fn empty() -> Aggregate {
        Aggregate {
            hosts: 0,
            free: [MetricAgg::default(); 4],
            degree_hist: [0; DEGREE_BUCKETS],
            region_hist: [0; REGION_BUCKETS],
            bw_hist: [0; BW_CLASSES],
            oldest: SimTime::MAX,
            capacity: 0,
            queued: 0,
            preempted: 0,
        }
    }

    /// The aggregate of a single host sample.
    pub fn of_sample(s: &HostSample, bounds: &RegionBounds) -> Aggregate {
        let mut a = Aggregate::empty();
        a.hosts = 1;
        for r in 0..4 {
            a.free[r] = MetricAgg::of(s.free[r]);
        }
        a.degree_hist[degree_bucket(s.free[3])] = 1;
        a.region_hist[bounds.bucket(s.pos)] = 1;
        a.bw_hist[(s.bw_class as usize).min(BW_CLASSES - 1)] = 1;
        a.oldest = s.sampled_at;
        a.capacity = s.capacity as u64;
        a.queued = s.queued as u64;
        a.preempted = s.preempted as u64;
        a
    }

    /// Whether this summarizes nothing.
    pub fn is_empty(&self) -> bool {
        self.hosts == 0
    }

    /// Conservative count of hosts guaranteed to offer at least `min_free`
    /// degrees at *any* rank: the sum of free-degree buckets that lie
    /// entirely at or above `min_free`. Used by the nearest-ancestor scope
    /// search — if this already reaches `k`, the subtree can satisfy a
    /// top-k query without going wider.
    pub fn guaranteed_at_least(&self, min_free: u32) -> u64 {
        (0..DEGREE_BUCKETS)
            .filter(|&i| DEGREE_BUCKET_LO[i] >= min_free)
            .map(|i| self.degree_hist[i])
            .sum()
    }
}

impl Report for Aggregate {
    fn merge(&mut self, other: &Self) {
        self.hosts += other.hosts;
        for r in 0..4 {
            self.free[r].merge(&other.free[r]);
        }
        for i in 0..DEGREE_BUCKETS {
            self.degree_hist[i] += other.degree_hist[i];
        }
        for i in 0..REGION_BUCKETS {
            self.region_hist[i] += other.region_hist[i];
        }
        for i in 0..BW_CLASSES {
            self.bw_hist[i] += other.bw_hist[i];
        }
        self.oldest = self.oldest.min(other.oldest);
        self.capacity = self.capacity.saturating_add(other.capacity);
        self.queued = self.queued.saturating_add(other.queued);
        self.preempted = self.preempted.saturating_add(other.preempted);
    }
}

impl somo::traffic::Encodable for Aggregate {
    /// Fixed-width wire form: the constant-size property the byte
    /// accounting in `ext_query` depends on.
    fn encode(&self) -> somo::traffic::Bytes {
        use somo::traffic::BufMut;
        let mut b = somo::traffic::BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u64(self.hosts);
        for r in 0..4 {
            b.put_u64(self.free[r].count);
            b.put_u64(self.free[r].sum);
            b.put_u32(self.free[r].min);
            b.put_u32(self.free[r].max);
        }
        for v in self.degree_hist {
            b.put_u64(v);
        }
        for v in self.region_hist {
            b.put_u64(v);
        }
        for v in self.bw_hist {
            b.put_u64(v);
        }
        b.put_u64(self.oldest.as_micros());
        b.put_u64(self.capacity);
        b.put_u64(self.queued);
        b.put_u64(self.preempted);
        b.freeze()
    }
}

impl Aggregate {
    /// Exact wire size of the fixed-width encoding.
    pub const WIRE_BYTES: usize =
        8 + 4 * 24 + DEGREE_BUCKETS * 8 + REGION_BUCKETS * 8 + BW_CLASSES * 8 + 8 + 3 * 8;

    /// The cluster-level backpressure signal this aggregate carries — what
    /// a host reads from its SOMO parent to drive admission control under
    /// scarcity, instead of gathering a global snapshot.
    pub fn pressure(&self) -> PressureReport {
        let frac = |r: usize| {
            if self.capacity == 0 {
                0.0
            } else {
                self.free[r].sum as f64 / self.capacity as f64
            }
        };
        PressureReport {
            free_frac: [frac(0), frac(1), frac(2), frac(3)],
            queue_depth: self.queued,
            preemption_rate: if self.hosts == 0 {
                0.0
            } else {
                self.preempted as f64 / self.hosts as f64
            },
        }
    }
}

/// Cluster-level backpressure derived from an [`Aggregate`].
///
/// `free_frac[3]` (rank-3 availability is plain free degree, nothing
/// preemptible folded in) is the scarcity signal the market's admission
/// controller keys on.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PressureReport {
    /// Fraction of total degree capacity available to a claim of each rank
    /// (index = rank; 0.0 when the aggregate is empty).
    pub free_frac: [f64; 4],
    /// Session arrivals waiting in admission queues across the subtree.
    pub queue_depth: u64,
    /// Recent helper preemptions per summarized host.
    pub preemption_rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use somo::traffic::Encodable;

    fn sample(h: u32, free3: u32, pos: [f64; 2]) -> HostSample {
        HostSample {
            host: HostId(h),
            free: [free3 + 3, free3 + 2, free3 + 1, free3],
            pos,
            bw_class: (h % 5) as u8,
            sampled_at: SimTime::from_secs(h as u64),
            capacity: free3 + 4,
            queued: h % 3,
            preempted: h % 2,
        }
    }

    #[test]
    fn empty_is_merge_identity() {
        let b = RegionBounds::default();
        let a = Aggregate::of_sample(&sample(3, 7, [10.0, -20.0]), &b);
        let mut left = Aggregate::empty();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&Aggregate::empty());
        assert_eq!(left, a);
        assert_eq!(right, a);
    }

    #[test]
    fn single_sample_fields() {
        let b = RegionBounds::default();
        let a = Aggregate::of_sample(&sample(2, 9, [0.0, 0.0]), &b);
        assert_eq!(a.hosts, 1);
        assert_eq!(a.free[3].max, 9);
        assert_eq!(a.free[0].max, 12);
        assert_eq!(a.degree_hist[degree_bucket(9)], 1);
        assert_eq!(a.oldest, SimTime::from_secs(2));
    }

    #[test]
    fn degree_buckets_partition_the_axis() {
        assert_eq!(degree_bucket(0), 0);
        assert_eq!(degree_bucket(1), 1);
        assert_eq!(degree_bucket(3), 3);
        assert_eq!(degree_bucket(4), 4);
        assert_eq!(degree_bucket(7), 4);
        assert_eq!(degree_bucket(8), 5);
        assert_eq!(degree_bucket(31), 6);
        assert_eq!(degree_bucket(1_000_000), 7);
    }

    #[test]
    fn guaranteed_at_least_is_conservative() {
        let b = RegionBounds::default();
        let mut a = Aggregate::empty();
        for (h, f) in [(1u32, 0u32), (2, 2), (3, 5), (4, 9), (5, 40)] {
            a.merge(&Aggregate::of_sample(&sample(h, f, [0.0, 0.0]), &b));
        }
        // Buckets entirely ≥ 4: [4,8), [8,16), [16,32), [32,∞) → hosts with
        // free 5, 9, 40.
        assert_eq!(a.guaranteed_at_least(4), 3);
        // min_free 5 cannot count the [4,8) bucket (it may hold a 4).
        assert_eq!(a.guaranteed_at_least(5), 2);
        assert_eq!(a.guaranteed_at_least(0), 5);
    }

    #[test]
    fn region_buckets_clamp_out_of_range() {
        let b = RegionBounds::default();
        assert_eq!(b.bucket([-1e9, -1e9]), 0);
        assert_eq!(b.bucket([1e9, 1e9]), REGION_BUCKETS - 1);
        // bucket_box inverts bucket for in-range points.
        for bucket in 0..REGION_BUCKETS {
            let (lo, hi) = b.bucket_box(bucket);
            let mid = [(lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0];
            assert_eq!(b.bucket(mid), bucket);
        }
    }

    #[test]
    fn pressure_is_a_capacity_weighted_free_fraction() {
        let b = RegionBounds::default();
        // Empty aggregate: no capacity, no pressure.
        let p0 = Aggregate::empty().pressure();
        assert_eq!(p0.free_frac, [0.0; 4]);
        assert_eq!(p0.queue_depth, 0);
        assert_eq!(p0.preemption_rate, 0.0);
        // Two hosts: capacities 6 and 8, rank-3 free 2 and 4.
        let mut a = Aggregate::of_sample(&sample(3, 2, [0.0, 0.0]), &b);
        a.merge(&Aggregate::of_sample(&sample(4, 4, [0.0, 0.0]), &b));
        let p = a.pressure();
        assert!((p.free_frac[3] - 6.0 / 14.0).abs() < 1e-12);
        // `sample(h, ..)` reports queue depth h % 3 and preemption rate
        // h % 2: hosts 3 and 4 sum to depth 0 + 1 and mean rate (1 + 0)/2.
        assert_eq!(p.queue_depth, 1);
        assert!((p.preemption_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wire_size_is_constant() {
        let b = RegionBounds::default();
        let mut a = Aggregate::of_sample(&sample(1, 3, [5.0, 5.0]), &b);
        assert_eq!(a.encoded_len(), Aggregate::WIRE_BYTES);
        for h in 2..100 {
            a.merge(&Aggregate::of_sample(
                &sample(h, h % 13, [h as f64, -(h as f64)]),
                &b,
            ));
        }
        assert_eq!(a.encoded_len(), Aggregate::WIRE_BYTES);
    }
}
