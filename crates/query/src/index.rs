//! The incrementally-maintained aggregate index over a SOMO tree.
//!
//! A [`QueryIndex`] caches one [`Aggregate`] per logical SOMO node: the
//! summary of every member whose canonical leaf lies in that node's
//! subtree. Maintenance is incremental — when a member republishes its
//! [`HostSample`], only the leaf→root path is recomputed (`O(k·log_k N)`
//! merges, `O(log_k N)` messages on the wire) — exactly the update
//! discipline §3.2 prescribes for SOMO reports, just with a richer report
//! type.
//!
//! The index also carries the metadata needed to turn a cached view into a
//! *bounded-staleness* answer: the gather period it is refreshed at, from
//! which [`QueryIndex::freshness_bound`] derives the paper's
//! `ceil(log_k N)·T` staleness bound (see [`somo::flow`]).

use std::collections::HashMap;

use dht::Ring;
use simcore::SimTime;
use somo::traffic::TrafficLedger;
use somo::{Report, SomoTree};

use crate::aggregate::{Aggregate, HostSample, RegionBounds};

/// Aggregates cached at every SOMO node, maintained incrementally.
pub struct QueryIndex {
    pub(crate) tree: SomoTree,
    pub(crate) bounds: RegionBounds,
    pub(crate) period: SimTime,
    /// One cached aggregate per logical node (index-aligned with
    /// `tree.nodes()`).
    pub(crate) aggs: Vec<Aggregate>,
    /// Latest published sample per ring member (`None` = silent/dead).
    pub(crate) samples: Vec<Option<HostSample>>,
    /// Ring member → its canonical reporting leaf.
    pub(crate) leaf_of: Vec<u32>,
    /// Canonical reporting leaf → ring member.
    pub(crate) member_of_leaf: HashMap<u32, usize>,
    /// Host label → ring member index (for point lookups).
    pub(crate) member_of_host: HashMap<netsim::HostId, usize>,
    /// Upward maintenance traffic (full builds + incremental updates).
    pub(crate) maintenance: TrafficLedger,
    /// Downward query traffic (descents + answers).
    pub(crate) query_traffic: TrafficLedger,
}

impl QueryIndex {
    /// Build the index over the current ring membership. `sample(m)`
    /// produces member `m`'s current published sample (`None` for a member
    /// that has not reported / is down). `period` is the reporting interval
    /// the samples are refreshed at — the `T` of the staleness bound.
    pub fn build(
        ring: &Ring,
        fanout: usize,
        period: SimTime,
        bounds: RegionBounds,
        mut sample: impl FnMut(usize) -> Option<HostSample>,
    ) -> QueryIndex {
        let tree = SomoTree::build(ring, fanout);
        let mut leaf_of = Vec::with_capacity(ring.len());
        let mut member_of_leaf = HashMap::new();
        for m in 0..ring.len() {
            let leaf = tree.canonical_leaf_of(ring.member(m).id);
            leaf_of.push(leaf);
            let prev = member_of_leaf.insert(leaf, m);
            debug_assert!(prev.is_none(), "two members share a canonical leaf");
        }
        let samples: Vec<Option<HostSample>> = (0..ring.len()).map(&mut sample).collect();
        let mut member_of_host = HashMap::new();
        for (m, s) in samples.iter().enumerate() {
            if let Some(s) = s {
                member_of_host.insert(s.host, m);
            }
        }
        let mut idx = QueryIndex {
            aggs: vec![Aggregate::empty(); tree.len()],
            tree,
            bounds,
            period,
            samples,
            leaf_of,
            member_of_leaf,
            member_of_host,
            maintenance: TrafficLedger::default(),
            query_traffic: TrafficLedger::default(),
        };
        idx.rebuild_all();
        idx
    }

    /// Recompute every cached aggregate bottom-up and account one full
    /// gather round of maintenance traffic (each inter-host tree edge ships
    /// one fixed-size aggregate).
    pub fn rebuild_all(&mut self) {
        let n = self.tree.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.tree.nodes()[i as usize].level));
        for &i in &order {
            self.recompute_node(i);
        }
        // Traffic: every non-root node with a non-empty subtree pushes its
        // aggregate to its parent; same-host hops are free (GatherSim's
        // convention).
        for (i, node) in self.tree.nodes().iter().enumerate() {
            if let Some(p) = node.parent {
                if !self.aggs[i].is_empty() && self.tree.nodes()[p as usize].host != node.host {
                    self.maintenance.record(Aggregate::WIRE_BYTES);
                }
            }
        }
    }

    /// One full periodic gather round: every member republishes its sample
    /// and the whole aggregate cache is recomputed bottom-up, charging one
    /// fixed-size aggregate per inter-host tree edge (the batched
    /// once-per-period cost — per-member deltas go through
    /// [`Self::update_member`] instead).
    pub fn refresh(&mut self, mut sample: impl FnMut(usize) -> Option<HostSample>) {
        for m in 0..self.samples.len() {
            let s = sample(m);
            if let Some(s) = &s {
                self.member_of_host.insert(s.host, m);
            } else if let Some(old) = &self.samples[m] {
                self.member_of_host.remove(&old.host);
            }
            self.samples[m] = s;
        }
        self.rebuild_all();
    }

    /// Replace member `m`'s published sample and refresh the cached
    /// aggregates on its leaf→root path (`None` withdraws the member, e.g.
    /// on crash). `O(k·log_k N)` merges; one aggregate crosses each
    /// inter-host edge of the path.
    pub fn update_member(&mut self, m: usize, sample: Option<HostSample>) {
        if let Some(s) = &sample {
            self.member_of_host.insert(s.host, m);
        } else if let Some(old) = &self.samples[m] {
            self.member_of_host.remove(&old.host);
        }
        self.samples[m] = sample;
        let mut cur = self.leaf_of[m];
        loop {
            self.recompute_node(cur);
            let node = &self.tree.nodes()[cur as usize];
            let Some(p) = node.parent else { break };
            if self.tree.nodes()[p as usize].host != node.host {
                self.maintenance.record(Aggregate::WIRE_BYTES);
            }
            cur = p;
        }
    }

    /// Recompute one node's aggregate from its (already current) children
    /// plus its own canonical member's sample if it is a reporting leaf.
    fn recompute_node(&mut self, i: u32) {
        let mut acc = Aggregate::empty();
        if let Some(&m) = self.member_of_leaf.get(&i) {
            if let Some(s) = &self.samples[m] {
                acc.merge(&Aggregate::of_sample(s, &self.bounds));
            }
        }
        let children = self.tree.nodes()[i as usize].children.clone();
        for c in children {
            let child = self.aggs[c as usize].clone();
            acc.merge(&child);
        }
        self.aggs[i as usize] = acc;
    }

    /// The underlying SOMO tree snapshot.
    pub fn tree(&self) -> &SomoTree {
        &self.tree
    }

    /// The region grid the histograms are drawn over.
    pub fn bounds(&self) -> &RegionBounds {
        &self.bounds
    }

    /// The cached aggregate of one logical node's subtree.
    pub fn aggregate(&self, node: u32) -> &Aggregate {
        &self.aggs[node as usize]
    }

    /// The whole-pool aggregate (cached at the root).
    pub fn root_aggregate(&self) -> &Aggregate {
        &self.aggs[0]
    }

    /// Member `m`'s latest published sample.
    pub fn sample(&self, m: usize) -> Option<&HostSample> {
        self.samples[m].as_ref()
    }

    /// Number of ring members the index was built over.
    pub fn members(&self) -> usize {
        self.samples.len()
    }

    /// Member `m`'s canonical reporting leaf.
    pub fn leaf_of(&self, m: usize) -> u32 {
        self.leaf_of[m]
    }

    /// The reporting member behind a leaf, if any.
    pub fn member_of_leaf(&self, leaf: u32) -> Option<usize> {
        self.member_of_leaf.get(&leaf).copied()
    }

    /// The ring member currently publishing as host `h`, if any — the hook
    /// a task manager uses to anchor a [`crate::Scope::Nearest`] descent at
    /// its own position in the tree.
    pub fn member_of(&self, h: netsim::HostId) -> Option<usize> {
        self.member_of_host.get(&h).copied()
    }

    /// The reporting period the index is refreshed at.
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// The staleness bound attached to every answer served from this index:
    /// the paper's unsynchronized gather bound `ceil(log_k N)·T` — cached
    /// data can lag a member's truth by at most one report per level.
    pub fn freshness_bound(&self) -> SimTime {
        somo::flow::unsync_staleness_bound(self.samples.len(), self.tree.fanout(), self.period)
    }

    /// Upward maintenance traffic accounted so far.
    pub fn maintenance_traffic(&self) -> TrafficLedger {
        self.maintenance
    }

    /// Query traffic (descents + answers) accounted so far.
    pub fn query_traffic(&self) -> TrafficLedger {
        self.query_traffic
    }

    /// Reset the query-traffic ledger (benches measure per-window rates).
    pub fn reset_query_traffic(&mut self) {
        self.query_traffic = TrafficLedger::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::HostId;

    fn sample(m: usize, free3: u32) -> HostSample {
        HostSample {
            host: HostId(m as u32),
            free: [free3 + 3, free3 + 2, free3 + 1, free3],
            pos: [
                (m as f64 % 19.0) * 10.0 - 90.0,
                (m as f64 % 7.0) * 20.0 - 60.0,
            ],
            bw_class: (m % 5) as u8,
            sampled_at: SimTime::from_secs(1),
            capacity: free3 + 4,
            queued: 0,
            preempted: 0,
        }
    }

    fn build(n: u32, seed: u64) -> (Ring, QueryIndex) {
        let ring = Ring::with_random_ids((0..n).map(HostId), seed);
        let idx = QueryIndex::build(
            &ring,
            4,
            SimTime::from_secs(5),
            RegionBounds::default(),
            |m| Some(sample(m, (m % 9) as u32)),
        );
        (ring, idx)
    }

    #[test]
    fn root_aggregate_counts_every_member() {
        let (ring, idx) = build(100, 11);
        assert_eq!(idx.root_aggregate().hosts, ring.len() as u64);
        let hist_total: u64 = idx.root_aggregate().degree_hist.iter().sum();
        assert_eq!(hist_total, ring.len() as u64);
    }

    #[test]
    fn every_node_aggregate_equals_subtree_brute_force() {
        let (_ring, idx) = build(64, 12);
        // For each node, fold the canonical samples of its subtree by hand.
        for i in 0..idx.tree().len() as u32 {
            let mut want = Aggregate::empty();
            let mut stack = vec![i];
            while let Some(cur) = stack.pop() {
                if let Some(m) = idx.member_of_leaf(cur) {
                    if let Some(s) = idx.sample(m) {
                        want.merge(&Aggregate::of_sample(s, idx.bounds()));
                    }
                }
                stack.extend(idx.tree().nodes()[cur as usize].children.iter().copied());
            }
            assert_eq!(idx.aggregate(i), &want, "node {i} cache diverged");
        }
    }

    #[test]
    fn incremental_update_matches_full_rebuild() {
        let (_ring, mut idx) = build(80, 13);
        // Mutate a handful of members incrementally...
        for m in [0usize, 7, 33, 79] {
            let mut s = sample(m, 40);
            s.sampled_at = SimTime::from_secs(9);
            idx.update_member(m, Some(s));
        }
        idx.update_member(5, None); // member 5 goes silent
        let incremental: Vec<Aggregate> = (0..idx.tree().len() as u32)
            .map(|i| idx.aggregate(i).clone())
            .collect();
        // ...then recompute everything from scratch and compare.
        idx.rebuild_all();
        for (i, want) in incremental.iter().enumerate() {
            assert_eq!(idx.aggregate(i as u32), want, "node {i}");
        }
        assert_eq!(idx.root_aggregate().hosts, 79);
    }

    #[test]
    fn update_traffic_is_logarithmic_not_linear() {
        let (_ring, mut idx) = build(256, 14);
        let before = idx.maintenance_traffic();
        idx.update_member(100, Some(sample(100, 7)));
        let delta = idx.maintenance_traffic().messages - before.messages;
        // The path to the root is at most depth hops.
        assert!(
            delta <= idx.tree().depth() as u64 + 1,
            "update cost {delta}"
        );
        assert!(delta >= 1, "update shipped nothing");
    }

    #[test]
    fn freshness_bound_matches_flow_math() {
        let (_ring, idx) = build(256, 15);
        assert_eq!(
            idx.freshness_bound(),
            somo::flow::unsync_staleness_bound(256, 4, SimTime::from_secs(5))
        );
    }
}
