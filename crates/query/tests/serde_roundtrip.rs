//! Serde roundtrips for every wire type the query subsystem ships:
//! aggregates (gather path), requests/answers (query path) and
//! subscription deltas (newscast path). A type that cannot survive
//! serialize→deserialize intact cannot cross a process boundary.

use netsim::HostId;
use query::{
    Aggregate, Freshness, HostSample, QueryAnswer, QueryIndex, QueryRequest, QueryStats,
    RegionBounds, Scope, Subscription, ThresholdDelta,
};
use simcore::SimTime;
use somo::Report;

fn roundtrip<T>(v: &T) -> T
where
    T: serde::Serialize + serde::Deserialize,
{
    let json = serde_json::to_string(v).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

fn sample(m: u32, free3: u32) -> HostSample {
    HostSample {
        host: HostId(m),
        free: [free3 + 3, free3 + 2, free3 + 1, free3],
        pos: [m as f64 * 3.5 - 50.0, m as f64 * -2.25 + 40.0],
        bw_class: (m % 5) as u8,
        sampled_at: SimTime::from_millis(1000 + m as u64),
        capacity: free3 + 5,
        queued: m % 3,
        preempted: m % 2,
    }
}

#[test]
fn host_sample_roundtrips() {
    let s = sample(7, 4);
    assert_eq!(roundtrip(&s), s);
}

#[test]
fn aggregate_roundtrips() {
    let bounds = RegionBounds::default();
    let mut a = Aggregate::empty();
    for m in 0..40 {
        a.merge(&Aggregate::of_sample(&sample(m, m % 11), &bounds));
    }
    assert_eq!(roundtrip(&a), a);
    // The identity element survives too (SimTime::MAX stamp included).
    assert_eq!(roundtrip(&Aggregate::empty()), Aggregate::empty());
}

#[test]
fn region_bounds_roundtrip() {
    let b = RegionBounds {
        min: [-123.0, -45.5],
        max: [67.25, 89.0],
    };
    assert_eq!(roundtrip(&b), b);
}

#[test]
fn query_requests_roundtrip() {
    let reqs = [
        QueryRequest::Point { host: HostId(9) },
        QueryRequest::Range {
            center: [12.5, -8.0],
            radius: 55.0,
            rank: 3,
            min_free: 2,
        },
        QueryRequest::TopK {
            k: 12,
            rank: 1,
            min_free: 1,
            exclude: vec![HostId(1), HostId(4)],
            scope: Scope::Nearest { member: 33 },
        },
        QueryRequest::TopK {
            k: 3,
            rank: 3,
            min_free: 0,
            exclude: vec![],
            scope: Scope::Global,
        },
    ];
    for r in &reqs {
        assert_eq!(&roundtrip(r), r);
    }
}

#[test]
fn full_query_answer_roundtrips() {
    // A real answer produced by the engine, not a hand-built one.
    let ring = dht::Ring::with_random_ids((0..80u32).map(HostId), 5);
    let mut idx = QueryIndex::build(
        &ring,
        4,
        SimTime::from_secs(5),
        RegionBounds::default(),
        |m| Some(sample(m as u32, (m % 9) as u32)),
    );
    let ans = idx.top_k(6, 3, 1, &[HostId(2)], Scope::Global);
    assert!(!ans.hosts.is_empty());
    assert_eq!(roundtrip(&ans), ans);

    let range = idx.range([0.0, 0.0], 80.0, 3, 1);
    assert_eq!(roundtrip(&range), range);
}

#[test]
fn freshness_and_stats_roundtrip() {
    let f = Freshness {
        oldest: SimTime::from_millis(750),
        bound: SimTime::from_secs(20),
    };
    assert_eq!(roundtrip(&f), f);
    let s = QueryStats {
        nodes_visited: 10,
        leaves_scanned: 4,
        subtrees_pruned: 17,
        messages: 12,
        bytes: 2048,
    };
    assert_eq!(roundtrip(&s), s);
}

#[test]
fn subscription_types_roundtrip() {
    let sub = Subscription {
        id: 3,
        member: 14,
        center: [5.0, -5.0],
        radius: 60.0,
        rank: 3,
        min_free: 2,
        threshold: 10,
    };
    assert_eq!(roundtrip(&sub), sub);
    let d = ThresholdDelta {
        sub: 3,
        at: SimTime::from_secs(42),
        below: true,
        count: 7,
    };
    assert_eq!(roundtrip(&d), d);
}

#[test]
fn answer_json_is_self_describing() {
    // Field names survive in the JSON (a renamed field would silently break
    // cross-version compatibility).
    let f = Freshness {
        oldest: SimTime::ZERO,
        bound: SimTime::from_secs(1),
    };
    let json = serde_json::to_string(&f).unwrap();
    assert!(json.contains("oldest"), "{json}");
    assert!(json.contains("bound"), "{json}");
}

#[test]
fn answer_roundtrip_preserves_order() {
    // Host order is part of the answer's contract (free desc, host asc) —
    // make sure deserialization does not reshuffle.
    let ring = dht::Ring::with_random_ids((0..60u32).map(HostId), 6);
    let mut idx = QueryIndex::build(
        &ring,
        8,
        SimTime::from_secs(5),
        RegionBounds::default(),
        |m| Some(sample(m as u32, (m % 6) as u32)),
    );
    let ans = idx.top_k(10, 3, 0, &[], Scope::Global);
    let back: QueryAnswer = roundtrip(&ans);
    let hosts: Vec<HostId> = back.hosts.iter().map(|s| s.host).collect();
    let orig: Vec<HostId> = ans.hosts.iter().map(|s| s.host).collect();
    assert_eq!(hosts, orig);
}
