//! Algebraic laws of the aggregate lattice, property-checked.
//!
//! The SOMO gather folds child aggregates in whatever order partials
//! happen to arrive, over whatever intermediate grouping the tree shape
//! imposes. Correctness therefore rests on `merge` being a commutative,
//! associative monoid operation with `Aggregate::empty` as identity —
//! pinned down here over arbitrary sample populations.

use netsim::HostId;
use proptest::prelude::*;
use query::{Aggregate, HostSample, RegionBounds};
use simcore::SimTime;
use somo::Report;

/// Deterministic pseudo-random sample population. Frees are sorted
/// non-increasing per the pool invariant (`DegreeTable::available_at`
/// counts strictly-worse holders as preemptible, so availability can only
/// shrink as rank weakens).
fn gen_samples(seed: u64, n: usize) -> Vec<HostSample> {
    (0..n)
        .map(|i| {
            let r = |salt: u64| simcore::rng::derive_seed(seed, i as u64 * 16 + salt);
            let mut free = [
                (r(1) % 64) as u32,
                (r(2) % 64) as u32,
                (r(3) % 64) as u32,
                (r(4) % 64) as u32,
            ];
            free.sort_unstable_by(|a, b| b.cmp(a));
            HostSample {
                host: HostId((r(5) % 10_000) as u32),
                free,
                pos: [(r(6) % 1000) as f64 - 500.0, (r(7) % 1000) as f64 - 500.0],
                bw_class: (r(8) % 5) as u8,
                sampled_at: SimTime::from_millis(r(9) % 1_000_000),
                capacity: free[0] + (r(10) % 8) as u32,
                queued: (r(11) % 4) as u32,
                preempted: (r(12) % 3) as u32,
            }
        })
        .collect()
}

fn agg_of(samples: &[HostSample]) -> Aggregate {
    let bounds = RegionBounds::default();
    let mut a = Aggregate::empty();
    for s in samples {
        a.merge(&Aggregate::of_sample(s, &bounds));
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(seed: u64, nx in 0usize..20, ny in 0usize..20) {
        let (a, b) = (agg_of(&gen_samples(seed, nx)), agg_of(&gen_samples(!seed, ny)));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        seed: u64,
        nx in 0usize..15,
        ny in 0usize..15,
        nz in 0usize..15,
    ) {
        let a = agg_of(&gen_samples(seed, nx));
        let b = agg_of(&gen_samples(seed ^ 0xA5A5, ny));
        let c = agg_of(&gen_samples(seed ^ 0x5A5A, nz));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn empty_is_identity(seed: u64, n in 0usize..20) {
        let a = agg_of(&gen_samples(seed, n));
        let mut le = Aggregate::empty();
        le.merge(&a);
        prop_assert_eq!(&le, &a);
        let mut re = a.clone();
        re.merge(&Aggregate::empty());
        prop_assert_eq!(&re, &a);
    }

    #[test]
    fn fold_order_and_grouping_are_irrelevant(
        seed: u64,
        n in 1usize..24,
        split in 0usize..24,
    ) {
        // Left-to-right fold == fold of two arbitrary halves == reversed fold.
        let xs = gen_samples(seed, n);
        let flat = agg_of(&xs);
        let cut = split.min(xs.len());
        let mut grouped = agg_of(&xs[..cut]);
        grouped.merge(&agg_of(&xs[cut..]));
        prop_assert_eq!(&grouped, &flat);
        let rev: Vec<HostSample> = xs.iter().rev().copied().collect();
        prop_assert_eq!(&agg_of(&rev), &flat);
    }

    #[test]
    fn aggregate_is_a_census(seed: u64, n in 0usize..30) {
        // Every histogram partitions the same population: bucket sums all
        // equal the host count, and min/max/sum are the scan values.
        let xs = gen_samples(seed, n);
        let a = agg_of(&xs);
        prop_assert_eq!(a.hosts, xs.len() as u64);
        prop_assert_eq!(a.degree_hist.iter().sum::<u64>(), xs.len() as u64);
        prop_assert_eq!(a.region_hist.iter().sum::<u64>(), xs.len() as u64);
        prop_assert_eq!(a.bw_hist.iter().sum::<u64>(), xs.len() as u64);
        for rank in 0..4 {
            let frees: Vec<u32> = xs.iter().map(|s| s.free[rank]).collect();
            prop_assert_eq!(a.free[rank].sum, frees.iter().map(|&f| f as u64).sum::<u64>());
            if !xs.is_empty() {
                prop_assert_eq!(a.free[rank].min, *frees.iter().min().unwrap());
                prop_assert_eq!(a.free[rank].max, *frees.iter().max().unwrap());
            }
        }
        if let Some(oldest) = xs.iter().map(|s| s.sampled_at).min() {
            prop_assert_eq!(a.oldest, oldest);
        }
        // The pressure fields are plain sums over the population too.
        prop_assert_eq!(a.capacity, xs.iter().map(|s| s.capacity as u64).sum::<u64>());
        prop_assert_eq!(a.queued, xs.iter().map(|s| s.queued as u64).sum::<u64>());
        prop_assert_eq!(a.preempted, xs.iter().map(|s| s.preempted as u64).sum::<u64>());
    }

    #[test]
    fn guaranteed_at_least_never_overcounts(
        seed: u64,
        n in 0usize..30,
        min_free in 0u32..70,
    ) {
        // The histogram lower bound must stay conservative at every rank —
        // that is what licenses its use for top-k subtree pruning.
        let xs = gen_samples(seed, n);
        let a = agg_of(&xs);
        for rank in 0..4 {
            let truth = xs.iter().filter(|s| s.free[rank] >= min_free).count() as u64;
            prop_assert!(
                a.guaranteed_at_least(min_free) <= truth,
                "guarantee {} exceeds truth {} at rank {} (min_free {})",
                a.guaranteed_at_least(min_free), truth, rank, min_free
            );
        }
    }
}
