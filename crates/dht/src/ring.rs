//! The structural ring: membership snapshot with zones, leafsets and owner
//! lookup.
//!
//! This is consistent hashing exactly as §3.1 describes it: an ordered set of
//! node IDs partitions the 64-bit circle, node `x` owning
//! `zone(x) = (ID(pred(x)), ID(x)]`. The ring supports O(log N) owner lookup
//! (binary search — this is the *data structure*; the *protocol* lookup cost
//! is measured by [`crate::routing`]), leafset extraction, and instant
//! join/leave for churn experiments.

use netsim::HostId;
use serde::{Deserialize, Serialize};

use crate::id::{in_arc, NodeId};

/// A member of the ring: a logical ID bound to the end host that owns it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Member {
    /// Position in the logical space.
    pub id: NodeId,
    /// The physical end host behind this DHT node.
    pub host: HostId,
}

/// A snapshot of ring membership, sorted by ID.
///
/// Indices returned by the query methods are positions in the sorted order
/// and are invalidated by `insert`/`remove`.
#[derive(Clone, Debug, Default)]
pub struct Ring {
    members: Vec<Member>,
}

impl Ring {
    /// An empty ring.
    pub fn new() -> Ring {
        Ring {
            members: Vec::new(),
        }
    }

    /// Build a ring giving each host a pseudo-random ID derived from
    /// `(seed, host)` — the simulation analogue of "ID = MD5(IP address)".
    pub fn with_random_ids(hosts: impl IntoIterator<Item = HostId>, seed: u64) -> Ring {
        let mut ring = Ring::new();
        for h in hosts {
            let id = NodeId::hash_of(simcore::rng::derive_seed(seed, h.0 as u64));
            ring.insert(Member { id, host: h });
        }
        ring
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// All members in ID order.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// The member at a sorted index.
    pub fn member(&self, idx: usize) -> Member {
        self.members[idx]
    }

    /// Insert a member, keeping the ring sorted. Duplicate IDs are rejected.
    ///
    /// # Panics
    /// If a member with the same ID already exists.
    pub fn insert(&mut self, m: Member) {
        match self.members.binary_search_by_key(&m.id, |x| x.id) {
            Ok(_) => panic!("duplicate node ID {:?}", m.id),
            Err(pos) => self.members.insert(pos, m),
        }
    }

    /// Remove the member at sorted index `idx`, returning it.
    pub fn remove(&mut self, idx: usize) -> Member {
        self.members.remove(idx)
    }

    /// Remove the member with the given ID, if present.
    pub fn remove_id(&mut self, id: NodeId) -> Option<Member> {
        match self.members.binary_search_by_key(&id, |x| x.id) {
            Ok(pos) => Some(self.members.remove(pos)),
            Err(_) => None,
        }
    }

    /// Sorted index of the member with ID `id`, if present.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.members.binary_search_by_key(&id, |x| x.id).ok()
    }

    /// Index of the node whose zone contains `key`: the first member with
    /// `id >= key`, wrapping to index 0.
    ///
    /// # Panics
    /// On an empty ring.
    pub fn owner(&self, key: NodeId) -> usize {
        assert!(!self.members.is_empty(), "owner() on empty ring");
        match self.members.binary_search_by_key(&key, |x| x.id) {
            Ok(pos) => pos,
            Err(pos) => {
                if pos == self.members.len() {
                    0
                } else {
                    pos
                }
            }
        }
    }

    /// The successor index (clockwise neighbor).
    pub fn successor(&self, idx: usize) -> usize {
        (idx + 1) % self.members.len()
    }

    /// The predecessor index (counter-clockwise neighbor).
    pub fn predecessor(&self, idx: usize) -> usize {
        (idx + self.members.len() - 1) % self.members.len()
    }

    /// The zone of the member at `idx`: `(pred_id, own_id]`.
    pub fn zone(&self, idx: usize) -> (NodeId, NodeId) {
        let pred = self.predecessor(idx);
        (self.members[pred].id, self.members[idx].id)
    }

    /// Whether `key` falls in the zone of member `idx`.
    pub fn zone_contains(&self, idx: usize, key: NodeId) -> bool {
        let (lo, hi) = self.zone(idx);
        in_arc(lo, hi, key)
    }

    /// The leafset of member `idx`: up to `r` members to each side (fewer in
    /// tiny rings — a node is never its own leafset member). Returned as
    /// sorted indices, predecessor side first, then successor side, each
    /// nearest-first.
    pub fn leafset(&self, idx: usize, r: usize) -> Vec<usize> {
        let n = self.members.len();
        if n <= 1 {
            return vec![];
        }
        let mut out = Vec::with_capacity(2 * r.min(n));
        let mut seen = vec![false; n];
        seen[idx] = true;
        let mut p = idx;
        for _ in 0..r {
            p = self.predecessor(p);
            if seen[p] {
                break;
            }
            seen[p] = true;
            out.push(p);
        }
        let mut s = idx;
        for _ in 0..r {
            s = self.successor(s);
            if seen[s] {
                break;
            }
            seen[s] = true;
            out.push(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ring_of(ids: &[u64]) -> Ring {
        let mut r = Ring::new();
        for (i, &id) in ids.iter().enumerate() {
            r.insert(Member {
                id: NodeId(id),
                host: HostId(i as u32),
            });
        }
        r
    }

    #[test]
    fn members_stay_sorted() {
        let r = ring_of(&[50, 10, 30]);
        let ids: Vec<u64> = r.members().iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![10, 30, 50]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ids_rejected() {
        ring_of(&[5, 5]);
    }

    #[test]
    fn owner_basic_and_wrapping() {
        let r = ring_of(&[10, 30, 50]);
        assert_eq!(r.owner(NodeId(10)), 0); // key == id → that node
        assert_eq!(r.owner(NodeId(11)), 1);
        assert_eq!(r.owner(NodeId(30)), 1);
        assert_eq!(r.owner(NodeId(45)), 2);
        assert_eq!(r.owner(NodeId(51)), 0); // wraps
        assert_eq!(r.owner(NodeId(0)), 0);
    }

    #[test]
    fn zones_partition_the_circle() {
        let r = ring_of(&[10, 30, 50]);
        // zone(0) = (50, 10], zone(1) = (10, 30], zone(2) = (30, 50]
        assert_eq!(r.zone(0), (NodeId(50), NodeId(10)));
        assert!(r.zone_contains(0, NodeId(60)));
        assert!(r.zone_contains(0, NodeId(5)));
        assert!(!r.zone_contains(0, NodeId(11)));
    }

    #[test]
    fn single_node_owns_everything() {
        let r = ring_of(&[42]);
        assert_eq!(r.owner(NodeId(0)), 0);
        assert_eq!(r.owner(NodeId(u64::MAX)), 0);
        assert!(r.zone_contains(0, NodeId(7)));
        assert!(r.leafset(0, 4).is_empty());
    }

    #[test]
    fn leafset_sizes() {
        let r = ring_of(&[0, 10, 20, 30, 40, 50, 60, 70]);
        let ls = r.leafset(0, 2);
        assert_eq!(ls.len(), 4);
        // Predecessor side nearest-first: 7, 6; successor side: 1, 2.
        assert_eq!(ls, vec![7, 6, 1, 2]);
    }

    #[test]
    fn leafset_never_contains_self_or_duplicates() {
        let r = ring_of(&[0, 10, 20]);
        let ls = r.leafset(1, 8); // r bigger than ring
        assert!(!ls.contains(&1));
        let mut sorted = ls.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ls.len());
        assert_eq!(ls.len(), 2);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut r = ring_of(&[10, 30, 50]);
        let m = r.remove_id(NodeId(30)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.owner(NodeId(29)), r.index_of(NodeId(50)).unwrap());
        r.insert(m);
        assert_eq!(r.owner(NodeId(29)), r.index_of(NodeId(30)).unwrap());
        assert!(r.remove_id(NodeId(999)).is_none());
    }

    #[test]
    fn with_random_ids_is_deterministic() {
        let a = Ring::with_random_ids((0..100).map(HostId), 5);
        let b = Ring::with_random_ids((0..100).map(HostId), 5);
        assert_eq!(a.members(), b.members());
        assert_eq!(a.len(), 100);
    }

    proptest! {
        #[test]
        fn prop_every_key_has_exactly_one_owner(
            ids in proptest::collection::btree_set(any::<u64>(), 1..40),
            key: u64,
        ) {
            let ids: Vec<u64> = ids.into_iter().collect();
            let r = ring_of(&ids);
            let key = NodeId(key);
            let owner = r.owner(key);
            prop_assert!(r.zone_contains(owner, key));
            // No other node's zone contains it.
            for i in 0..r.len() {
                if i != owner {
                    prop_assert!(!r.zone_contains(i, key) || r.len() == 1);
                }
            }
        }

        #[test]
        fn prop_zones_cover_whole_circle(
            ids in proptest::collection::btree_set(any::<u64>(), 1..20),
        ) {
            let ids: Vec<u64> = ids.into_iter().collect();
            let r = ring_of(&ids);
            // Sum of clockwise zone widths must be the whole circle.
            let mut total: u128 = 0;
            for i in 0..r.len() {
                let (lo, hi) = r.zone(i);
                let w = lo.distance_cw(hi);
                total += if w == 0 { 1u128 << 64 } else { w as u128 };
            }
            prop_assert_eq!(total, 1u128 << 64);
        }

        #[test]
        fn prop_leafset_symmetric(
            ids in proptest::collection::btree_set(any::<u64>(), 3..30),
            r_size in 1usize..5,
        ) {
            // If y is in x's leafset, x is in y's leafset (same r).
            let ids: Vec<u64> = ids.into_iter().collect();
            let ring = ring_of(&ids);
            for x in 0..ring.len() {
                for &y in &ring.leafset(x, r_size) {
                    prop_assert!(
                        ring.leafset(y, r_size).contains(&x),
                        "asymmetric leafset x={} y={}", x, y
                    );
                }
            }
        }
    }
}
