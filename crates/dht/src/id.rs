//! The logical ID space.
//!
//! The paper assumes "a very large logical space (e.g. 160-bits)"; 64 bits is
//! ample for simulations of up to millions of nodes (collision probability
//! for 2M random 64-bit IDs is ~10⁻⁷) and keeps arithmetic on native words.
//! The space is a circle: all arithmetic wraps modulo 2⁶⁴.

use serde::{Deserialize, Serialize};
use simcore::rng::mix64;

/// A point in the logical ID space (a 64-bit circle).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The zero point of the space.
    pub const ZERO: NodeId = NodeId(0);

    /// The midpoint of the whole space (0.5 of `[0, 1)`) — the logical
    /// position of the SOMO root.
    pub const MID: NodeId = NodeId(1 << 63);

    /// Hash an arbitrary 64-bit value into the space (stands in for "MD5
    /// over a node's IP address").
    pub fn hash_of(v: u64) -> NodeId {
        NodeId(mix64(v ^ 0xA5A5_5A5A_C3C3_3C3C))
    }

    /// Clockwise distance from `self` to `other` (how far clockwise you must
    /// travel from `self` to reach `other`).
    pub fn distance_cw(self, other: NodeId) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// The point `delta` further clockwise.
    pub fn offset(self, delta: u64) -> NodeId {
        NodeId(self.0.wrapping_add(delta))
    }

    /// The point in the space as a fraction of the full circle, in `[0, 1)`.
    pub fn as_fraction(self) -> f64 {
        self.0 as f64 / 2f64.powi(64)
    }
}

/// Whether `x` lies in the half-open arc `(a, b]` travelling clockwise from
/// `a`. When `a == b` the arc is the **entire circle** (the single-node ring
/// owns everything).
pub fn in_arc(a: NodeId, b: NodeId, x: NodeId) -> bool {
    if a == b {
        return true;
    }
    // Clockwise from a: x is inside iff dist(a→x) ∈ (0, dist(a→b)].
    let dx = a.distance_cw(x);
    let db = a.distance_cw(b);
    dx != 0 && dx <= db
}

/// The midpoint of the clockwise arc from `a` to `b` (half the clockwise
/// distance past `a`). For `a == b` (full circle) it is the antipode of `a`.
pub fn arc_midpoint(a: NodeId, b: NodeId) -> NodeId {
    let d = a.distance_cw(b);
    if d == 0 {
        a.offset(1 << 63)
    } else {
        a.offset(d / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_wraps() {
        let a = NodeId(u64::MAX - 1);
        let b = NodeId(3);
        assert_eq!(a.distance_cw(b), 5);
        assert_eq!(b.distance_cw(a), u64::MAX - 4);
    }

    #[test]
    fn arc_membership_simple() {
        let a = NodeId(10);
        let b = NodeId(20);
        assert!(!in_arc(a, b, NodeId(10))); // open at a
        assert!(in_arc(a, b, NodeId(11)));
        assert!(in_arc(a, b, NodeId(20))); // closed at b
        assert!(!in_arc(a, b, NodeId(21)));
        assert!(!in_arc(a, b, NodeId(5)));
    }

    #[test]
    fn arc_membership_wrapping() {
        let a = NodeId(u64::MAX - 10);
        let b = NodeId(10);
        assert!(in_arc(a, b, NodeId(0)));
        assert!(in_arc(a, b, NodeId(10)));
        assert!(in_arc(a, b, NodeId(u64::MAX)));
        assert!(!in_arc(a, b, NodeId(11)));
        assert!(!in_arc(a, b, NodeId(u64::MAX - 10)));
    }

    #[test]
    fn degenerate_arc_is_full_circle() {
        let a = NodeId(42);
        assert!(in_arc(a, a, NodeId(0)));
        assert!(in_arc(a, a, NodeId(u64::MAX)));
        assert!(in_arc(a, a, NodeId(42)));
    }

    #[test]
    fn midpoint_plain_and_wrapping() {
        assert_eq!(arc_midpoint(NodeId(10), NodeId(20)), NodeId(15));
        let m = arc_midpoint(NodeId(u64::MAX - 9), NodeId(10));
        assert_eq!(m, NodeId(0)); // 20 across the wrap, half is 10 past a.
        assert_eq!(
            arc_midpoint(NodeId(7), NodeId(7)),
            NodeId(7).offset(1 << 63)
        );
    }

    #[test]
    fn hash_is_stable_and_spread() {
        assert_eq!(NodeId::hash_of(1), NodeId::hash_of(1));
        let mut ids: Vec<u64> = (0..1000).map(|i| NodeId::hash_of(i).0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 1000, "hash collision in small domain");
    }

    #[test]
    fn fraction_maps_mid() {
        assert!((NodeId::MID.as_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(NodeId::ZERO.as_fraction(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_arc_total_partition(a: u64, b: u64, x: u64) {
            // Every point is in exactly one of (a, b] and (b, a],
            // except the endpoints a and b themselves when a != b.
            let (a, b, x) = (NodeId(a), NodeId(b), NodeId(x));
            prop_assume!(a != b);
            let in_ab = in_arc(a, b, x);
            let in_ba = in_arc(b, a, x);
            prop_assert!(in_ab ^ in_ba, "x must be in exactly one arc");
        }

        #[test]
        fn prop_midpoint_is_inside(a: u64, b: u64) {
            let (a, b) = (NodeId(a), NodeId(b));
            prop_assume!(a != b);
            let d = a.distance_cw(b);
            prop_assume!(d >= 2); // midpoint of a 1-step arc equals a, which is excluded
            let m = arc_midpoint(a, b);
            prop_assert!(in_arc(a, b, m));
        }

        #[test]
        fn prop_distance_antisymmetric(a: u64, b: u64) {
            let (a, b) = (NodeId(a), NodeId(b));
            prop_assume!(a != b);
            let sum = a.distance_cw(b) as u128 + b.distance_cw(a) as u128;
            prop_assert_eq!(sum, 1u128 << 64);
        }
    }
}
