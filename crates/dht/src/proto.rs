//! Message-level ring maintenance protocol on the discrete-event simulator.
//!
//! §3.1: "each node records r neighbors to each side in the rudimentary
//! routing table that is commonly known as leaf-set. Neighbors exchange
//! heartbeats to keep their routing tables current, updating their routing
//! tables when node join/leave events occur."
//!
//! [`DhtSim`] simulates exactly that: every node runs a periodic heartbeat
//! timer, heartbeats carry the sender's current view (gossip), receivers
//! merge views and expire members they have not heard from (directly or via
//! gossip) within a timeout. The simulation exposes each node's *believed*
//! leafset so tests can measure convergence and self-healing — the property
//! SOMO inherits from the hosting DHT.
//!
//! Message latency comes from any function of the two endpoint hosts, so the
//! protocol can run over the `netsim` oracle or a constant-delay fabric.

use std::collections::BTreeMap;

use netsim::HostId;
use simcore::audit::{AuditCtx, Auditor, InvariantSet};
use simcore::trace::{TraceEvent, TraceRecord, Tracer};
use simcore::{EventQueue, FaultPlan, FaultyLink, SimTime};

use crate::id::NodeId;
use crate::ring::{Member, Ring};

/// Protocol timing parameters.
#[derive(Clone, Copy, Debug)]
pub struct ProtoConfig {
    /// Heartbeat period.
    pub heartbeat: SimTime,
    /// A member not heard from for this long is declared dead.
    pub timeout: SimTime,
    /// Leafset radius (r neighbors per side).
    pub leafset_r: usize,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        ProtoConfig {
            heartbeat: SimTime::from_secs(5),
            timeout: SimTime::from_secs(16),
            leafset_r: 4,
        }
    }
}

#[derive(Clone, Debug)]
enum Event {
    /// Periodic heartbeat timer for a node. The epoch guards against
    /// duplicate timer chains across kill/revive cycles: a timer scheduled
    /// before a crash is stale once the node restarts.
    Timer { node: usize, epoch: u32 },
    /// A heartbeat or its acknowledgment arriving at `to`.
    Deliver {
        to: usize,
        from_id: NodeId,
        view: Vec<NodeId>,
        /// Acks do not trigger further replies (no ping-pong).
        ack: bool,
    },
}

struct ProtoNode {
    member: Member,
    alive: bool,
    /// Incremented on every kill and revive; stale timers are dropped.
    epoch: u32,
    /// Known peers → last time we heard evidence they were alive.
    view: BTreeMap<NodeId, SimTime>,
    /// Last-resort probe targets for when the view empties out (e.g. a
    /// partition long enough to expire every peer): the node's configured
    /// contacts. Without this a fully-isolated node maroons itself forever
    /// even after the network heals.
    fallback: Vec<NodeId>,
    /// Death certificates: peers we expired, with the time the tombstone
    /// lapses. Gossip cannot resurrect a tombstoned peer — only direct
    /// evidence (a message from the peer itself) clears it. Without this,
    /// neighbors re-inserting each other's stale gossip keeps a dead node
    /// flapping in and out of leafsets indefinitely.
    tombstones: BTreeMap<NodeId, SimTime>,
}

impl ProtoNode {
    /// The node's current *believed* leafset: the r nearest live view
    /// entries on each side of its own ID.
    fn leafset(&self, r: usize) -> Vec<NodeId> {
        let ids: Vec<NodeId> = self.view.keys().copied().collect();
        if ids.is_empty() {
            return vec![];
        }
        // ids are sorted (BTreeMap); find our position.
        let pos = ids.partition_point(|&x| x < self.member.id);
        let n = ids.len();
        let take = r.min(n);
        let mut out = Vec::with_capacity(2 * take);
        // Successor side: pos, pos+1, ... (skipping self, which is not in view)
        for k in 0..take {
            out.push(ids[(pos + k) % n]);
        }
        // Predecessor side.
        for k in 1..=take {
            let idx = (pos + n - k) % n;
            let id = ids[idx];
            if !out.contains(&id) {
                out.push(id);
            }
        }
        out
    }
}

/// The simulated ring-maintenance protocol.
pub struct DhtSim<D: Fn(HostId, HostId) -> SimTime> {
    nodes: Vec<ProtoNode>,
    queue: EventQueue<Event>,
    cfg: ProtoConfig,
    delay: D,
    faults: FaultyLink,
    messages: u64,
    tracer: Tracer,
}

impl<D: Fn(HostId, HostId) -> SimTime> DhtSim<D> {
    /// Create a simulation where every node starts knowing its true leafset
    /// (as it would after a correct join protocol). Heartbeat timers are
    /// staggered across the first period so the network does not fire in
    /// lockstep.
    pub fn new(ring: &Ring, cfg: ProtoConfig, delay: D) -> Self {
        Self::with_faults(ring, cfg, delay, FaultPlan::none())
    }

    /// Like [`DhtSim::new`], but every message is threaded through the
    /// fault plan (endpoints are labeled by `HostId`). A no-op plan behaves
    /// exactly like the fault-free constructor.
    pub fn with_faults(ring: &Ring, cfg: ProtoConfig, delay: D, plan: FaultPlan) -> Self {
        let mut nodes = Vec::with_capacity(ring.len());
        for i in 0..ring.len() {
            let mut view = BTreeMap::new();
            for j in ring.leafset(i, cfg.leafset_r) {
                view.insert(ring.member(j).id, SimTime::ZERO);
            }
            let fallback = view.keys().copied().collect();
            nodes.push(ProtoNode {
                member: ring.member(i),
                alive: true,
                epoch: 0,
                view,
                fallback,
                tombstones: BTreeMap::new(),
            });
        }
        let mut queue = EventQueue::new();
        let period = cfg.heartbeat.as_micros().max(1);
        for (i, _) in nodes.iter().enumerate() {
            let jitter = SimTime::from_micros(simcore::rng::derive_seed(0xBEA7, i as u64) % period);
            queue.schedule(jitter, Event::Timer { node: i, epoch: 0 });
        }
        DhtSim {
            nodes,
            queue,
            cfg,
            delay,
            faults: FaultyLink::new(plan),
            messages: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer: heartbeat fan-outs ([`TraceEvent::DhtHeartbeat`])
    /// and view expulsions ([`TraceEvent::DhtExpel`]) are recorded on the
    /// simulated clock. The default is [`Tracer::disabled`] (zero cost).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Drain the attached tracer's buffered records (empty when untraced,
    /// `None` when a custom sink owns them — drain that sink instead).
    pub fn take_trace(&mut self) -> Option<Vec<TraceRecord>> {
        self.tracer.take_records()
    }

    /// Kill a node (it stops heartbeating and acking immediately).
    pub fn kill(&mut self, node: usize) {
        self.nodes[node].alive = false;
        self.nodes[node].epoch += 1;
    }

    /// Restart a crashed node. It comes back amnesiac — its view is wiped
    /// and reseeded with `contact` only (a restarted process re-bootstraps
    /// from a configured contact), keeping its old ID and host. Gossip and
    /// the heartbeat/ack exchange re-integrate it; direct heartbeats clear
    /// the tombstones its neighbors hold for it.
    ///
    /// # Panics
    /// If the node is still alive.
    pub fn revive(&mut self, node: usize, contact: usize) {
        assert!(!self.nodes[node].alive, "revive() on a live node");
        let now = self.queue.now();
        let contact_id = self.nodes[contact].member.id;
        let n = &mut self.nodes[node];
        n.alive = true;
        n.epoch += 1;
        n.view.clear();
        n.tombstones.clear();
        n.view.insert(contact_id, now);
        n.fallback = vec![contact_id];
        let epoch = n.epoch;
        self.queue
            .schedule_after(SimTime::ZERO, Event::Timer { node, epoch });
    }

    /// Add a fresh node that initially knows only `contact`. Returns its
    /// index.
    ///
    /// Gossip alone integrates the joiner over a few heartbeat rounds; see
    /// [`DhtSim::join_via_lookup`] for the full join protocol.
    pub fn join(&mut self, member: Member, contact: usize) -> usize {
        let contact_id = self.nodes[contact].member.id;
        let mut view = BTreeMap::new();
        view.insert(contact_id, self.queue.now());
        self.nodes.push(ProtoNode {
            member,
            alive: true,
            epoch: 0,
            view,
            fallback: vec![contact_id],
            tombstones: BTreeMap::new(),
        });
        let idx = self.nodes.len() - 1;
        self.queue.schedule_after(
            SimTime::ZERO,
            Event::Timer {
                node: idx,
                epoch: 0,
            },
        );
        idx
    }

    /// The standard join protocol: route a lookup for the joiner's own ID
    /// from `contact`; the owner found is the joiner's future successor,
    /// and its view (which brackets the joiner's zone) seeds the joiner's
    /// leafset. Converges in one heartbeat round instead of several
    /// gossip rounds. Returns the new node's index, or `None` while the
    /// overlay is too broken to route.
    pub fn join_via_lookup(&mut self, member: Member, contact: usize) -> Option<usize> {
        let (owner_id, _) = self.lookup(contact, member.id)?;
        let owner = self.index_of(owner_id)?;
        let now = self.queue.now();
        let mut view = BTreeMap::new();
        view.insert(owner_id, now);
        // Adopt the successor's view as half-stale candidates: they must
        // confirm themselves, exactly like gossip-learned entries.
        let half = SimTime::from_micros(self.cfg.timeout.as_micros() / 2);
        let stale = now.saturating_sub(half);
        for id in self.nodes[owner].view.keys().copied() {
            if id != member.id {
                view.entry(id).or_insert(stale);
            }
        }
        let fallback = view.keys().copied().collect();
        self.nodes.push(ProtoNode {
            member,
            alive: true,
            epoch: 0,
            view,
            fallback,
            tombstones: BTreeMap::new(),
        });
        let idx = self.nodes.len() - 1;
        self.queue.schedule_after(
            SimTime::ZERO,
            Event::Timer {
                node: idx,
                epoch: 0,
            },
        );
        Some(idx)
    }

    /// Run the simulation until simulated time `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            self.handle(now, ev);
        }
    }

    /// Send a message through the fault layer: counts it as sent, schedules
    /// delivery unless the plan drops it.
    fn send(&mut self, from_host: HostId, to_host: HostId, ev: Event) {
        self.messages += 1;
        let base = (self.delay)(from_host, to_host);
        let now = self.queue.now();
        if let Some(d) = self
            .faults
            .transmit(from_host.0 as u64, to_host.0 as u64, now, base)
        {
            self.queue.schedule_after(d, ev);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Timer { node, epoch } => {
                if !self.nodes[node].alive || self.nodes[node].epoch != epoch {
                    return; // dead nodes stop ticking; stale chains die out
                }
                self.expire(node, now);
                // Heartbeat every current leafset member, carrying our view.
                // If the view has emptied out entirely (e.g. a partition long
                // enough to expire every peer), fall back to probing the
                // configured contacts so the node can rejoin once the network
                // heals instead of marooning itself.
                let mut targets = self.nodes[node].leafset(self.cfg.leafset_r);
                if targets.is_empty() {
                    let my_id = self.nodes[node].member.id;
                    targets = self.nodes[node]
                        .fallback
                        .iter()
                        .copied()
                        .filter(|&id| id != my_id)
                        .collect();
                }
                let my_id = self.nodes[node].member.id;
                let my_host = self.nodes[node].member.host;
                let fanout = targets.len() as u32;
                self.tracer.emit(now, || TraceEvent::DhtHeartbeat {
                    node: node as u32,
                    targets: fanout,
                });
                let mut gossip: Vec<NodeId> = targets.clone();
                gossip.push(my_id);
                for target_id in targets {
                    if let Some(to) = self.index_of(target_id) {
                        let to_host = self.nodes[to].member.host;
                        self.send(
                            my_host,
                            to_host,
                            Event::Deliver {
                                to,
                                from_id: my_id,
                                view: gossip.clone(),
                                ack: false,
                            },
                        );
                    }
                }
                self.queue
                    .schedule_after(self.cfg.heartbeat, Event::Timer { node, epoch });
            }
            Event::Deliver {
                to,
                from_id,
                view,
                ack,
            } => {
                if !self.nodes[to].alive {
                    return;
                }
                let my_id = self.nodes[to].member.id;
                // Direct evidence: the sender is alive now (and any death
                // certificate for it is void).
                self.nodes[to].tombstones.remove(&from_id);
                self.nodes[to].view.insert(from_id, now);
                // Gossip: adopt unknown IDs with "half-stale" evidence so
                // they must confirm themselves within timeout/2 — this stops
                // dead nodes from being resurrected by stale gossip forever.
                let half = SimTime::from_micros(self.cfg.timeout.as_micros() / 2);
                let stale = now.saturating_sub(half);
                for id in view {
                    if id != my_id && !self.nodes[to].tombstones.contains_key(&id) {
                        self.nodes[to].view.entry(id).or_insert(stale);
                    }
                }
                // Acknowledge heartbeats (§4.1's heartbeat/ack exchange):
                // the reply keeps the *sender's* entry for us fresh even
                // when the sender is not in our own leafset — without this a
                // joiner heartbeating a distant contact would never hear
                // back and maroon itself.
                if !ack {
                    if let Some(sender) = self.index_of(from_id) {
                        let mut reply: Vec<NodeId> = self.nodes[to].leafset(self.cfg.leafset_r);
                        reply.push(my_id);
                        let from_host = self.nodes[to].member.host;
                        let to_host = self.nodes[sender].member.host;
                        self.send(
                            from_host,
                            to_host,
                            Event::Deliver {
                                to: sender,
                                from_id: my_id,
                                view: reply,
                                ack: true,
                            },
                        );
                    }
                }
            }
        }
    }

    fn expire(&mut self, node: usize, now: SimTime) {
        let timeout = self.cfg.timeout;
        let n = &mut self.nodes[node];
        let mut dead: Vec<NodeId> = Vec::new();
        n.view.retain(|&id, &mut last| {
            let alive = now.saturating_sub(last) < timeout;
            if !alive {
                dead.push(id);
            }
            alive
        });
        for id in &dead {
            n.tombstones.insert(*id, now + timeout);
        }
        n.tombstones.retain(|_, &mut until| until > now);
        for id in dead {
            self.tracer.emit(now, || TraceEvent::DhtExpel {
                node: node as u32,
                peer: id.0,
            });
        }
    }

    fn index_of(&self, id: NodeId) -> Option<usize> {
        self.nodes.iter().position(|n| n.member.id == id)
    }

    /// The believed leafset of a node (IDs, both sides).
    /// Resolve the owner of `key` by greedy clockwise routing over the
    /// nodes' **believed** views — the protocol-level lookup, as opposed to
    /// [`crate::routing`]'s structural one. Returns `(owner_id, hops)`, or
    /// `None` if routing gets stuck (possible while views are healing).
    pub fn lookup(&self, from: usize, key: NodeId) -> Option<(NodeId, usize)> {
        let mut cur = from;
        let mut hops = 0usize;
        loop {
            let node = &self.nodes[cur];
            if !node.alive {
                return None;
            }
            let my = node.member.id;
            // Believed predecessor: the view member closest counter-
            // clockwise of me. I believe I own (pred, me].
            let pred = node
                .view
                .keys()
                .copied()
                .min_by_key(|v| v.distance_cw(my))?;
            if crate::id::in_arc(pred, my, key) {
                return Some((my, hops));
            }
            // Believed successor owns (me, succ].
            let succ = node
                .view
                .keys()
                .copied()
                .min_by_key(|v| my.distance_cw(*v))?;
            if crate::id::in_arc(my, succ, key) {
                return Some((succ, hops + 1));
            }
            // Otherwise forward to the view member making the most
            // clockwise progress without passing the key.
            let target = my.distance_cw(key);
            let next_id = node
                .view
                .keys()
                .copied()
                .filter(|v| {
                    let d = my.distance_cw(*v);
                    d > 0 && d <= target
                })
                .max_by_key(|v| my.distance_cw(*v))?;
            let next = self.index_of(next_id)?;
            if next == cur {
                return None; // stuck
            }
            cur = next;
            hops += 1;
            if hops > self.nodes.len() {
                return None; // routing loop while views are inconsistent
            }
        }
    }

    /// The believed leafset of a node (IDs, both sides) as derived from
    /// its current view.
    pub fn believed_leafset(&self, node: usize) -> Vec<NodeId> {
        self.nodes[node].leafset(self.cfg.leafset_r)
    }

    /// The true leafset of a node given who is actually alive.
    pub fn true_leafset(&self, node: usize) -> Vec<NodeId> {
        let mut ring = Ring::new();
        for n in &self.nodes {
            if n.alive {
                ring.insert(n.member);
            }
        }
        let idx = ring.index_of(self.nodes[node].member.id).expect("alive");
        let mut ids: Vec<NodeId> = ring
            .leafset(idx, self.cfg.leafset_r)
            .into_iter()
            .map(|j| ring.member(j).id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Whether every live node's believed leafset matches the truth.
    pub fn converged(&self) -> bool {
        (0..self.nodes.len()).all(|i| {
            if !self.nodes[i].alive {
                return true;
            }
            let mut believed = self.believed_leafset(i);
            believed.sort_unstable();
            believed == self.true_leafset(i)
        })
    }

    /// Total messages sent so far (dropped ones included — they left the
    /// sender).
    pub fn messages_sent(&self) -> u64 {
        self.messages
    }

    /// Messages the fault plan dropped so far.
    pub fn messages_dropped(&self) -> u64 {
        self.faults.dropped()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of simulated nodes (alive or dead).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the simulation holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether node `i` is currently alive.
    pub fn is_alive(&self, i: usize) -> bool {
        self.nodes[i].alive
    }

    /// The ring member simulated at index `i`.
    pub fn member_of(&self, i: usize) -> Member {
        self.nodes[i].member
    }

    /// Whether node `i`'s current view still contains `id` — the signal the
    /// recovery pipeline polls to time failure detection and expulsion.
    pub fn view_contains(&self, i: usize, id: NodeId) -> bool {
        self.nodes[i].view.contains_key(&id)
    }

    /// Whether node `i` currently holds a death certificate for `id`.
    pub fn tombstoned(&self, i: usize, id: NodeId) -> bool {
        self.nodes[i].tombstones.contains_key(&id)
    }

    /// Sample the ring/tombstone coherence invariants if the auditor is
    /// due. Returns whether a sample was taken.
    pub fn audit_sample(&self, auditor: &mut Auditor) -> bool {
        auditor.sample_due(&dht_invariants(), self, self.queue.now())
    }
}

/// The protocol's coherence invariants, checkable at any instant:
///
/// * **view-tombstone-disjoint** — a peer is never simultaneously believed
///   alive and certified dead; direct evidence voids the certificate, and
///   a certificate blocks gossip re-insertion.
/// * **self-absent-from-view** — a node never gossips itself into its own
///   view (the leafset derivation assumes it).
/// * **leafset-within-view** — the believed leafset is derived from the
///   view and nothing else.
/// * **tombstone-deadline-bounded** — every death certificate lapses within
///   one failure-detection timeout of its issue, so a wrongly-expelled but
///   live peer can always rejoin.
pub fn dht_invariants<D: Fn(HostId, HostId) -> SimTime>() -> InvariantSet<DhtSim<D>> {
    InvariantSet::new()
        .register("view-tombstone-disjoint", inv_view_tombstone_disjoint::<D>)
        .register("self-absent-from-view", inv_self_absent::<D>)
        .register("leafset-within-view", inv_leafset_within_view::<D>)
        .register("tombstone-deadline-bounded", inv_tombstone_bounded::<D>)
}

fn inv_view_tombstone_disjoint<D: Fn(HostId, HostId) -> SimTime>(
    s: &DhtSim<D>,
    ctx: &mut AuditCtx<'_>,
) {
    for (i, n) in s.nodes.iter().enumerate() {
        for id in n.view.keys() {
            ctx.check(!n.tombstones.contains_key(id), || {
                format!("node {i} holds {id:?} in both view and tombstones")
            });
        }
    }
}

fn inv_self_absent<D: Fn(HostId, HostId) -> SimTime>(s: &DhtSim<D>, ctx: &mut AuditCtx<'_>) {
    for (i, n) in s.nodes.iter().enumerate() {
        ctx.check(!n.view.contains_key(&n.member.id), || {
            format!("node {i} gossiped itself into its own view")
        });
    }
}

fn inv_leafset_within_view<D: Fn(HostId, HostId) -> SimTime>(
    s: &DhtSim<D>,
    ctx: &mut AuditCtx<'_>,
) {
    for (i, n) in s.nodes.iter().enumerate() {
        for id in n.leafset(s.cfg.leafset_r) {
            ctx.check(n.view.contains_key(&id), || {
                format!("node {i}'s believed leafset lists {id:?} outside its view")
            });
        }
    }
}

fn inv_tombstone_bounded<D: Fn(HostId, HostId) -> SimTime>(s: &DhtSim<D>, ctx: &mut AuditCtx<'_>) {
    let horizon = ctx.now() + s.cfg.timeout;
    for (i, n) in s.nodes.iter().enumerate() {
        for (id, &until) in &n.tombstones {
            ctx.check(until <= horizon, || {
                format!("node {i}'s certificate for {id:?} outlives a detection timeout ({until})")
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(n: u32) -> DhtSim<impl Fn(HostId, HostId) -> SimTime> {
        let ring = Ring::with_random_ids((0..n).map(HostId), 17);
        DhtSim::new(&ring, ProtoConfig::default(), |_a, _b| {
            SimTime::from_millis(50)
        })
    }

    #[test]
    fn stable_ring_stays_converged() {
        let mut s = sim(32);
        assert!(s.converged(), "bootstrap views should be exact");
        s.run_until(SimTime::from_secs(60));
        assert!(s.converged(), "stable ring drifted");
        assert!(s.messages_sent() > 0);
    }

    #[test]
    fn failure_is_detected_and_leafsets_repair() {
        let mut s = sim(32);
        s.run_until(SimTime::from_secs(10));
        s.kill(5);
        assert!(!s.converged(), "victim still in neighbors' views");
        // After timeout + a couple of heartbeats, views must have healed:
        // the dead node expired everywhere and replacements discovered via
        // gossip.
        s.run_until(SimTime::from_secs(80));
        assert!(s.converged(), "leafsets did not repair after failure");
    }

    #[test]
    fn multiple_failures_repair() {
        let mut s = sim(48);
        s.run_until(SimTime::from_secs(10));
        s.kill(1);
        s.kill(2);
        s.kill(30);
        s.run_until(SimTime::from_secs(120));
        assert!(s.converged(), "leafsets did not repair after 3 failures");
    }

    #[test]
    fn join_via_lookup_integrates_faster_than_gossip() {
        let ring = Ring::with_random_ids((0..24u32).map(HostId), 19);
        let mk = || {
            DhtSim::new(&ring, ProtoConfig::default(), |_a, _b| {
                SimTime::from_millis(50)
            })
        };
        let member = Member {
            id: NodeId::hash_of(0xABCD),
            host: HostId(777),
        };
        // Lookup-based join: converged within ~2 heartbeat periods.
        let mut fast = mk();
        fast.run_until(SimTime::from_secs(10));
        fast.join_via_lookup(member, 0).expect("routable overlay");
        fast.run_until(SimTime::from_secs(25));
        assert!(fast.converged(), "lookup join did not integrate quickly");
        // Naive contact-only join needs gossip rounds; measure that it is
        // not *already* converged at the same instant it joined (sanity
        // that the comparison is meaningful) — then eventually converges.
        let mut slow = mk();
        slow.run_until(SimTime::from_secs(10));
        slow.join(member, 0);
        assert!(!slow.converged());
        // Gossip alone crawls the ring a few leafset-widths per round; give
        // it an order of magnitude more time than the lookup join needed.
        slow.run_until(SimTime::from_secs(400));
        assert!(slow.converged());
    }

    #[test]
    fn coherence_invariants_hold_through_churn() {
        // Sample the view/tombstone invariants every second across a run
        // with kills, a revival, and a join — the flows that historically
        // produce flapping views. Hard-fail is on in debug builds, so a
        // violation panics with the offending node; the final report must
        // be clean either way.
        let mut s = sim(32);
        let mut auditor = Auditor::every(SimTime::from_secs(1));
        let step = SimTime::from_secs(1);
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(120) {
            t += step;
            s.run_until(t);
            s.audit_sample(&mut auditor);
            if t == SimTime::from_secs(10) {
                s.kill(5);
                s.kill(11);
            }
            if t == SimTime::from_secs(60) {
                s.revive(5, 0);
                s.join(
                    Member {
                        id: NodeId::hash_of(0xC0DE),
                        host: HostId(888),
                    },
                    3,
                );
            }
        }
        let report = auditor.into_report();
        // The event clock only advances when messages flow, so quiet gaps
        // between heartbeat waves coalesce polls: expect roughly one sample
        // per wave, not one per poll.
        assert!(report.samples >= 20, "auditor barely sampled");
        assert!(report.checks > 0);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        // The dead node is certified, not believed: no live neighbor holds
        // victim 11 in its view once expelled.
        let dead_id = s.member_of(11).id;
        for i in 0..s.len() {
            if s.is_alive(i) {
                assert!(!s.view_contains(i, dead_id));
            }
        }
    }

    #[test]
    fn join_integrates_via_gossip() {
        let mut s = sim(16);
        s.run_until(SimTime::from_secs(10));
        let id = NodeId::hash_of(0xFEED);
        s.join(
            Member {
                id,
                host: HostId(999),
            },
            0,
        );
        s.run_until(SimTime::from_secs(120));
        assert!(s.converged(), "joiner did not integrate");
    }

    #[test]
    fn lookups_resolve_to_true_owner_on_converged_ring() {
        use rand::{Rng, SeedableRng};
        let ring = Ring::with_random_ids((0..48u32).map(HostId), 17);
        let mut s = DhtSim::new(&ring, ProtoConfig::default(), |_a, _b| {
            SimTime::from_millis(50)
        });
        s.run_until(SimTime::from_secs(30));
        assert!(s.converged());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let key = NodeId(rng.random());
            let from = rng.random_range(0..48);
            let (owner, hops) = s.lookup(from, key).expect("lookup stuck");
            let true_owner = ring.member(ring.owner(key)).id;
            assert_eq!(owner, true_owner, "lookup resolved the wrong owner");
            assert!(hops <= 48);
        }
    }

    #[test]
    fn lookups_recover_after_failure_heals() {
        use rand::{Rng, SeedableRng};
        let ring = Ring::with_random_ids((0..32u32).map(HostId), 18);
        let mut s = DhtSim::new(&ring, ProtoConfig::default(), |_a, _b| {
            SimTime::from_millis(50)
        });
        s.run_until(SimTime::from_secs(10));
        s.kill(7);
        s.run_until(SimTime::from_secs(90));
        assert!(s.converged());
        // The truth now excludes the victim.
        let mut truth = Ring::new();
        for i in (0..32).filter(|&i| i != 7) {
            truth.insert(ring.member(i));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let key = NodeId(rng.random());
            let mut from = rng.random_range(0..32);
            if from == 7 {
                from = 8; // never start at the dead node
            }
            let (owner, _) = s.lookup(from, key).expect("lookup stuck after heal");
            let true_owner = truth.member(truth.owner(key)).id;
            assert_eq!(owner, true_owner);
        }
    }

    #[test]
    fn revived_node_reintegrates() {
        let mut s = sim(24);
        s.run_until(SimTime::from_secs(10));
        s.kill(5);
        s.run_until(SimTime::from_secs(80));
        assert!(s.converged(), "ring did not heal around the crash");
        s.revive(5, 0);
        s.run_until(SimTime::from_secs(400));
        assert!(s.is_alive(5));
        assert!(s.converged(), "revived node did not reintegrate");
    }

    #[test]
    fn kill_revive_flap_does_not_double_heartbeats() {
        // A node killed and revived within one heartbeat period must not end
        // up with two live timer chains (which would double its send rate).
        let mut stable = sim(16);
        stable.run_until(SimTime::from_secs(300));
        let baseline = stable.messages_sent();

        let mut flappy = sim(16);
        flappy.run_until(SimTime::from_secs(10));
        for _ in 0..5 {
            flappy.kill(3);
            flappy.revive(3, 0);
        }
        flappy.run_until(SimTime::from_secs(300));
        // The flapping node re-bootstraps via gossip, which costs a few extra
        // messages — but nowhere near a doubled heartbeat chain (which would
        // add ~6% of total volume per flap).
        let flap = flappy.messages_sent();
        assert!(
            flap < baseline + baseline / 8,
            "flapping inflated traffic: {flap} vs baseline {baseline}"
        );
    }

    #[test]
    fn heals_under_message_loss() {
        let ring = Ring::with_random_ids((0..32u32).map(HostId), 17);
        let mut s = DhtSim::with_faults(
            &ring,
            ProtoConfig::default(),
            |_a, _b| SimTime::from_millis(50),
            FaultPlan::with_loss(3, 0.05).jitter(SimTime::from_millis(20)),
        );
        s.run_until(SimTime::from_secs(10));
        s.kill(5);
        // Lossy links delay convergence but must not prevent it.
        s.run_until(SimTime::from_secs(200));
        assert!(s.converged(), "leafsets did not repair under 5% loss");
        assert!(s.messages_dropped() > 0, "loss plan never fired");
    }

    #[test]
    fn tombstones_hold_under_loss_while_victim_is_down() {
        // Flap test: kill a node, let the ring expel it, and verify that
        // while it stays down no live node's view resurrects it from stale
        // gossip — even with message loss perturbing the gossip schedule.
        let ring = Ring::with_random_ids((0..24u32).map(HostId), 21);
        let mut s = DhtSim::with_faults(
            &ring,
            ProtoConfig::default(),
            |_a, _b| SimTime::from_millis(50),
            FaultPlan::with_loss(11, 0.05),
        );
        s.run_until(SimTime::from_secs(10));
        let victim_id = s.member_of(7).id;
        s.kill(7);
        s.run_until(SimTime::from_secs(90));
        for i in 0..s.len() {
            if s.is_alive(i) {
                assert!(
                    !s.view_contains(i, victim_id),
                    "node {i} still believes in the dead node"
                );
            }
        }
        // Keep running: gossip must not flap it back in.
        let mut t = 90;
        while t < 240 {
            t += 10;
            s.run_until(SimTime::from_secs(t));
            for i in 0..s.len() {
                if s.is_alive(i) {
                    assert!(
                        !s.view_contains(i, victim_id),
                        "stale gossip resurrected the dead node at t={t}s"
                    );
                }
            }
        }
    }

    #[test]
    fn no_fault_plan_is_bit_identical_to_plain_sim() {
        let ring = Ring::with_random_ids((0..24u32).map(HostId), 9);
        let mk_plain = || {
            DhtSim::new(&ring, ProtoConfig::default(), |_a, _b| {
                SimTime::from_millis(50)
            })
        };
        let mk_faulty = || {
            DhtSim::with_faults(
                &ring,
                ProtoConfig::default(),
                |_a, _b| SimTime::from_millis(50),
                FaultPlan::none(),
            )
        };
        let mut a = mk_plain();
        let mut b = mk_faulty();
        for &t in &[10u64, 40, 90] {
            a.run_until(SimTime::from_secs(t));
            b.run_until(SimTime::from_secs(t));
            assert_eq!(a.messages_sent(), b.messages_sent());
            for i in 0..a.len() {
                assert_eq!(a.believed_leafset(i), b.believed_leafset(i));
            }
        }
        assert_eq!(b.messages_dropped(), 0);
    }

    #[test]
    fn partition_heals_after_window() {
        // Cut one node off from everyone for a while; after the window ends
        // it must re-integrate without a restart (its own timers kept going).
        let ring = Ring::with_random_ids((0..16u32).map(HostId), 23);
        let lone = ring.member(4).host.0 as u64;
        let plan = FaultPlan::with_loss(5, 0.0).partition(
            vec![lone],
            SimTime::from_secs(20),
            SimTime::from_secs(60),
        );
        let mut s = DhtSim::with_faults(
            &ring,
            ProtoConfig::default(),
            |_a, _b| SimTime::from_millis(50),
            plan,
        );
        s.run_until(SimTime::from_secs(50));
        // Inside the window the isolated node has been expired by peers.
        assert!(!s.converged(), "partition had no visible effect");
        s.run_until(SimTime::from_secs(300));
        assert!(s.converged(), "ring did not heal after partition lifted");
    }

    #[test]
    fn dead_nodes_send_nothing() {
        let mut s = sim(8);
        s.run_until(SimTime::from_secs(5));
        let before = s.messages_sent();
        for i in 0..8 {
            s.kill(i);
        }
        s.run_until(SimTime::from_secs(60));
        // Messages already in flight may land, but no new ones are sent
        // after every node's next timer fires; the count must plateau well
        // below a live network's volume (8 nodes * ~11 rounds * 8 targets).
        let after = s.messages_sent();
        assert!(after - before < 200, "dead network kept chattering");
    }
}
