//! Message-level ring maintenance protocol on the discrete-event simulator.
//!
//! §3.1: "each node records r neighbors to each side in the rudimentary
//! routing table that is commonly known as leaf-set. Neighbors exchange
//! heartbeats to keep their routing tables current, updating their routing
//! tables when node join/leave events occur."
//!
//! [`DhtSim`] simulates exactly that: every node runs a periodic heartbeat
//! timer, heartbeats carry the sender's current view (gossip), receivers
//! merge views and expire members they have not heard from (directly or via
//! gossip) within a timeout. The simulation exposes each node's *believed*
//! leafset so tests can measure convergence and self-healing — the property
//! SOMO inherits from the hosting DHT.
//!
//! Message latency comes from any function of the two endpoint hosts, so the
//! protocol can run over the `netsim` oracle or a constant-delay fabric.

use std::collections::BTreeMap;

use netsim::HostId;
use simcore::{EventQueue, SimTime};

use crate::id::NodeId;
use crate::ring::{Member, Ring};

/// Protocol timing parameters.
#[derive(Clone, Copy, Debug)]
pub struct ProtoConfig {
    /// Heartbeat period.
    pub heartbeat: SimTime,
    /// A member not heard from for this long is declared dead.
    pub timeout: SimTime,
    /// Leafset radius (r neighbors per side).
    pub leafset_r: usize,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        ProtoConfig {
            heartbeat: SimTime::from_secs(5),
            timeout: SimTime::from_secs(16),
            leafset_r: 4,
        }
    }
}

#[derive(Clone, Debug)]
enum Event {
    /// Periodic heartbeat timer for a node.
    Timer { node: usize },
    /// A heartbeat or its acknowledgment arriving at `to`.
    Deliver {
        to: usize,
        from_id: NodeId,
        view: Vec<NodeId>,
        /// Acks do not trigger further replies (no ping-pong).
        ack: bool,
    },
}

struct ProtoNode {
    member: Member,
    alive: bool,
    /// Known peers → last time we heard evidence they were alive.
    view: BTreeMap<NodeId, SimTime>,
    /// Death certificates: peers we expired, with the time the tombstone
    /// lapses. Gossip cannot resurrect a tombstoned peer — only direct
    /// evidence (a message from the peer itself) clears it. Without this,
    /// neighbors re-inserting each other's stale gossip keeps a dead node
    /// flapping in and out of leafsets indefinitely.
    tombstones: BTreeMap<NodeId, SimTime>,
}

impl ProtoNode {
    /// The node's current *believed* leafset: the r nearest live view
    /// entries on each side of its own ID.
    fn leafset(&self, r: usize) -> Vec<NodeId> {
        let ids: Vec<NodeId> = self.view.keys().copied().collect();
        if ids.is_empty() {
            return vec![];
        }
        // ids are sorted (BTreeMap); find our position.
        let pos = ids.partition_point(|&x| x < self.member.id);
        let n = ids.len();
        let take = r.min(n);
        let mut out = Vec::with_capacity(2 * take);
        // Successor side: pos, pos+1, ... (skipping self, which is not in view)
        for k in 0..take {
            out.push(ids[(pos + k) % n]);
        }
        // Predecessor side.
        for k in 1..=take {
            let idx = (pos + n - k) % n;
            let id = ids[idx];
            if !out.contains(&id) {
                out.push(id);
            }
        }
        out
    }
}

/// The simulated ring-maintenance protocol.
pub struct DhtSim<D: Fn(HostId, HostId) -> SimTime> {
    nodes: Vec<ProtoNode>,
    queue: EventQueue<Event>,
    cfg: ProtoConfig,
    delay: D,
    messages: u64,
}

impl<D: Fn(HostId, HostId) -> SimTime> DhtSim<D> {
    /// Create a simulation where every node starts knowing its true leafset
    /// (as it would after a correct join protocol). Heartbeat timers are
    /// staggered across the first period so the network does not fire in
    /// lockstep.
    pub fn new(ring: &Ring, cfg: ProtoConfig, delay: D) -> Self {
        let mut nodes = Vec::with_capacity(ring.len());
        for i in 0..ring.len() {
            let mut view = BTreeMap::new();
            for j in ring.leafset(i, cfg.leafset_r) {
                view.insert(ring.member(j).id, SimTime::ZERO);
            }
            nodes.push(ProtoNode {
                member: ring.member(i),
                alive: true,
                view,
                tombstones: BTreeMap::new(),
            });
        }
        let mut queue = EventQueue::new();
        let period = cfg.heartbeat.as_micros().max(1);
        for (i, _) in nodes.iter().enumerate() {
            let jitter = SimTime::from_micros(
                simcore::rng::derive_seed(0xBEA7, i as u64) % period,
            );
            queue.schedule(jitter, Event::Timer { node: i });
        }
        DhtSim {
            nodes,
            queue,
            cfg,
            delay,
            messages: 0,
        }
    }

    /// Kill a node (it stops heartbeating and acking immediately).
    pub fn kill(&mut self, node: usize) {
        self.nodes[node].alive = false;
    }

    /// Add a fresh node that initially knows only `contact`. Returns its
    /// index.
    ///
    /// Gossip alone integrates the joiner over a few heartbeat rounds; see
    /// [`DhtSim::join_via_lookup`] for the full join protocol.
    pub fn join(&mut self, member: Member, contact: usize) -> usize {
        let mut view = BTreeMap::new();
        view.insert(self.nodes[contact].member.id, self.queue.now());
        self.nodes.push(ProtoNode {
            member,
            alive: true,
            view,
            tombstones: BTreeMap::new(),
        });
        let idx = self.nodes.len() - 1;
        self.queue.schedule_after(SimTime::ZERO, Event::Timer { node: idx });
        idx
    }

    /// The standard join protocol: route a lookup for the joiner's own ID
    /// from `contact`; the owner found is the joiner's future successor,
    /// and its view (which brackets the joiner's zone) seeds the joiner's
    /// leafset. Converges in one heartbeat round instead of several
    /// gossip rounds. Returns the new node's index, or `None` while the
    /// overlay is too broken to route.
    pub fn join_via_lookup(&mut self, member: Member, contact: usize) -> Option<usize> {
        let (owner_id, _) = self.lookup(contact, member.id)?;
        let owner = self.index_of(owner_id)?;
        let now = self.queue.now();
        let mut view = BTreeMap::new();
        view.insert(owner_id, now);
        // Adopt the successor's view as half-stale candidates: they must
        // confirm themselves, exactly like gossip-learned entries.
        let half = SimTime::from_micros(self.cfg.timeout.as_micros() / 2);
        let stale = now.saturating_sub(half);
        for id in self.nodes[owner].view.keys().copied() {
            if id != member.id {
                view.entry(id).or_insert(stale);
            }
        }
        self.nodes.push(ProtoNode {
            member,
            alive: true,
            view,
            tombstones: BTreeMap::new(),
        });
        let idx = self.nodes.len() - 1;
        self.queue.schedule_after(SimTime::ZERO, Event::Timer { node: idx });
        Some(idx)
    }

    /// Run the simulation until simulated time `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            self.handle(now, ev);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Timer { node } => {
                if !self.nodes[node].alive {
                    return; // dead nodes stop ticking
                }
                self.expire(node, now);
                // Heartbeat every current leafset member, carrying our view.
                let targets = self.nodes[node].leafset(self.cfg.leafset_r);
                let my_id = self.nodes[node].member.id;
                let my_host = self.nodes[node].member.host;
                let mut gossip: Vec<NodeId> = targets.clone();
                gossip.push(my_id);
                for target_id in targets {
                    if let Some(to) = self.index_of(target_id) {
                        let d = (self.delay)(my_host, self.nodes[to].member.host);
                        self.messages += 1;
                        self.queue.schedule_after(
                            d,
                            Event::Deliver {
                                to,
                                from_id: my_id,
                                view: gossip.clone(),
                                ack: false,
                            },
                        );
                    }
                }
                self.queue
                    .schedule_after(self.cfg.heartbeat, Event::Timer { node });
            }
            Event::Deliver {
                to,
                from_id,
                view,
                ack,
            } => {
                if !self.nodes[to].alive {
                    return;
                }
                let my_id = self.nodes[to].member.id;
                // Direct evidence: the sender is alive now (and any death
                // certificate for it is void).
                self.nodes[to].tombstones.remove(&from_id);
                self.nodes[to].view.insert(from_id, now);
                // Gossip: adopt unknown IDs with "half-stale" evidence so
                // they must confirm themselves within timeout/2 — this stops
                // dead nodes from being resurrected by stale gossip forever.
                let half = SimTime::from_micros(self.cfg.timeout.as_micros() / 2);
                let stale = now.saturating_sub(half);
                for id in view {
                    if id != my_id && !self.nodes[to].tombstones.contains_key(&id) {
                        self.nodes[to].view.entry(id).or_insert(stale);
                    }
                }
                // Acknowledge heartbeats (§4.1's heartbeat/ack exchange):
                // the reply keeps the *sender's* entry for us fresh even
                // when the sender is not in our own leafset — without this a
                // joiner heartbeating a distant contact would never hear
                // back and maroon itself.
                if !ack {
                    if let Some(sender) = self.index_of(from_id) {
                        let mut reply: Vec<NodeId> =
                            self.nodes[to].leafset(self.cfg.leafset_r);
                        reply.push(my_id);
                        let d = (self.delay)(
                            self.nodes[to].member.host,
                            self.nodes[sender].member.host,
                        );
                        self.messages += 1;
                        self.queue.schedule_after(
                            d,
                            Event::Deliver {
                                to: sender,
                                from_id: my_id,
                                view: reply,
                                ack: true,
                            },
                        );
                    }
                }
            }
        }
    }

    fn expire(&mut self, node: usize, now: SimTime) {
        let timeout = self.cfg.timeout;
        let n = &mut self.nodes[node];
        let mut dead: Vec<NodeId> = Vec::new();
        n.view.retain(|&id, &mut last| {
            let alive = now.saturating_sub(last) < timeout;
            if !alive {
                dead.push(id);
            }
            alive
        });
        for id in dead {
            n.tombstones.insert(id, now + timeout);
        }
        n.tombstones.retain(|_, &mut until| until > now);
    }

    fn index_of(&self, id: NodeId) -> Option<usize> {
        self.nodes.iter().position(|n| n.member.id == id)
    }

    /// The believed leafset of a node (IDs, both sides).
    /// Resolve the owner of `key` by greedy clockwise routing over the
    /// nodes' **believed** views — the protocol-level lookup, as opposed to
    /// [`crate::routing`]'s structural one. Returns `(owner_id, hops)`, or
    /// `None` if routing gets stuck (possible while views are healing).
    pub fn lookup(&self, from: usize, key: NodeId) -> Option<(NodeId, usize)> {
        let mut cur = from;
        let mut hops = 0usize;
        loop {
            let node = &self.nodes[cur];
            if !node.alive {
                return None;
            }
            let my = node.member.id;
            // Believed predecessor: the view member closest counter-
            // clockwise of me. I believe I own (pred, me].
            let pred = node
                .view
                .keys()
                .copied()
                .min_by_key(|v| v.distance_cw(my))?;
            if crate::id::in_arc(pred, my, key) {
                return Some((my, hops));
            }
            // Believed successor owns (me, succ].
            let succ = node
                .view
                .keys()
                .copied()
                .min_by_key(|v| my.distance_cw(*v))?;
            if crate::id::in_arc(my, succ, key) {
                return Some((succ, hops + 1));
            }
            // Otherwise forward to the view member making the most
            // clockwise progress without passing the key.
            let target = my.distance_cw(key);
            let next_id = node
                .view
                .keys()
                .copied()
                .filter(|v| {
                    let d = my.distance_cw(*v);
                    d > 0 && d <= target
                })
                .max_by_key(|v| my.distance_cw(*v))?;
            let next = self.index_of(next_id)?;
            if next == cur {
                return None; // stuck
            }
            cur = next;
            hops += 1;
            if hops > self.nodes.len() {
                return None; // routing loop while views are inconsistent
            }
        }
    }

    /// The believed leafset of a node (IDs, both sides) as derived from
    /// its current view.
    pub fn believed_leafset(&self, node: usize) -> Vec<NodeId> {
        self.nodes[node].leafset(self.cfg.leafset_r)
    }

    /// The true leafset of a node given who is actually alive.
    pub fn true_leafset(&self, node: usize) -> Vec<NodeId> {
        let mut ring = Ring::new();
        for n in &self.nodes {
            if n.alive {
                ring.insert(n.member);
            }
        }
        let idx = ring.index_of(self.nodes[node].member.id).expect("alive");
        let mut ids: Vec<NodeId> = ring
            .leafset(idx, self.cfg.leafset_r)
            .into_iter()
            .map(|j| ring.member(j).id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Whether every live node's believed leafset matches the truth.
    pub fn converged(&self) -> bool {
        (0..self.nodes.len()).all(|i| {
            if !self.nodes[i].alive {
                return true;
            }
            let mut believed = self.believed_leafset(i);
            believed.sort_unstable();
            believed == self.true_leafset(i)
        })
    }

    /// Total messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(n: u32) -> DhtSim<impl Fn(HostId, HostId) -> SimTime> {
        let ring = Ring::with_random_ids((0..n).map(HostId), 17);
        DhtSim::new(
            &ring,
            ProtoConfig::default(),
            |_a, _b| SimTime::from_millis(50),
        )
    }

    #[test]
    fn stable_ring_stays_converged() {
        let mut s = sim(32);
        assert!(s.converged(), "bootstrap views should be exact");
        s.run_until(SimTime::from_secs(60));
        assert!(s.converged(), "stable ring drifted");
        assert!(s.messages_sent() > 0);
    }

    #[test]
    fn failure_is_detected_and_leafsets_repair() {
        let mut s = sim(32);
        s.run_until(SimTime::from_secs(10));
        s.kill(5);
        assert!(!s.converged(), "victim still in neighbors' views");
        // After timeout + a couple of heartbeats, views must have healed:
        // the dead node expired everywhere and replacements discovered via
        // gossip.
        s.run_until(SimTime::from_secs(80));
        assert!(s.converged(), "leafsets did not repair after failure");
    }

    #[test]
    fn multiple_failures_repair() {
        let mut s = sim(48);
        s.run_until(SimTime::from_secs(10));
        s.kill(1);
        s.kill(2);
        s.kill(30);
        s.run_until(SimTime::from_secs(120));
        assert!(s.converged(), "leafsets did not repair after 3 failures");
    }

    #[test]
    fn join_via_lookup_integrates_faster_than_gossip() {
        let ring = Ring::with_random_ids((0..24u32).map(HostId), 19);
        let mk = || {
            DhtSim::new(
                &ring,
                ProtoConfig::default(),
                |_a, _b| SimTime::from_millis(50),
            )
        };
        let member = Member {
            id: NodeId::hash_of(0xABCD),
            host: HostId(777),
        };
        // Lookup-based join: converged within ~2 heartbeat periods.
        let mut fast = mk();
        fast.run_until(SimTime::from_secs(10));
        fast.join_via_lookup(member, 0).expect("routable overlay");
        fast.run_until(SimTime::from_secs(25));
        assert!(fast.converged(), "lookup join did not integrate quickly");
        // Naive contact-only join needs gossip rounds; measure that it is
        // not *already* converged at the same instant it joined (sanity
        // that the comparison is meaningful) — then eventually converges.
        let mut slow = mk();
        slow.run_until(SimTime::from_secs(10));
        slow.join(member, 0);
        assert!(!slow.converged());
        // Gossip alone crawls the ring a few leafset-widths per round; give
        // it an order of magnitude more time than the lookup join needed.
        slow.run_until(SimTime::from_secs(400));
        assert!(slow.converged());
    }

    #[test]
    fn join_integrates_via_gossip() {
        let mut s = sim(16);
        s.run_until(SimTime::from_secs(10));
        let id = NodeId::hash_of(0xFEED);
        s.join(
            Member {
                id,
                host: HostId(999),
            },
            0,
        );
        s.run_until(SimTime::from_secs(120));
        assert!(s.converged(), "joiner did not integrate");
    }

    #[test]
    fn lookups_resolve_to_true_owner_on_converged_ring() {
        use rand::{Rng, SeedableRng};
        let ring = Ring::with_random_ids((0..48u32).map(HostId), 17);
        let mut s = DhtSim::new(
            &ring,
            ProtoConfig::default(),
            |_a, _b| SimTime::from_millis(50),
        );
        s.run_until(SimTime::from_secs(30));
        assert!(s.converged());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let key = NodeId(rng.random());
            let from = rng.random_range(0..48);
            let (owner, hops) = s.lookup(from, key).expect("lookup stuck");
            let true_owner = ring.member(ring.owner(key)).id;
            assert_eq!(owner, true_owner, "lookup resolved the wrong owner");
            assert!(hops <= 48);
        }
    }

    #[test]
    fn lookups_recover_after_failure_heals() {
        use rand::{Rng, SeedableRng};
        let ring = Ring::with_random_ids((0..32u32).map(HostId), 18);
        let mut s = DhtSim::new(
            &ring,
            ProtoConfig::default(),
            |_a, _b| SimTime::from_millis(50),
        );
        s.run_until(SimTime::from_secs(10));
        s.kill(7);
        s.run_until(SimTime::from_secs(90));
        assert!(s.converged());
        // The truth now excludes the victim.
        let mut truth = Ring::new();
        for i in (0..32).filter(|&i| i != 7) {
            truth.insert(ring.member(i));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let key = NodeId(rng.random());
            let mut from = rng.random_range(0..32);
            if from == 7 {
                from = 8; // never start at the dead node
            }
            let (owner, _) = s.lookup(from, key).expect("lookup stuck after heal");
            let true_owner = truth.member(truth.owner(key)).id;
            assert_eq!(owner, true_owner);
        }
    }

    #[test]
    fn dead_nodes_send_nothing() {
        let mut s = sim(8);
        s.run_until(SimTime::from_secs(5));
        let before = s.messages_sent();
        for i in 0..8 {
            s.kill(i);
        }
        s.run_until(SimTime::from_secs(60));
        // Messages already in flight may land, but no new ones are sent
        // after every node's next timer fires; the count must plateau well
        // below a live network's volume (8 nodes * ~11 rounds * 8 targets).
        let after = s.messages_sent();
        assert!(after - before < 200, "dead network kept chattering");
    }
}
