//! Finger tables and greedy clockwise routing.
//!
//! §3.1: "the lookup performance is O(N) in this simple ring structure...
//! elaborate algorithms built upon the above concept achieve O(log N)
//! performance". We implement both, so the bench suite can show the
//! difference:
//!
//! * **ring walk** — follow successors until the key's owner is reached
//!   (O(N) hops);
//! * **finger routing** — each node keeps a finger at the owner of
//!   `own_id + 2^k` for every k; greedy routing forwards to the farthest
//!   known node that does not overshoot the key (O(log N) hops).

use crate::id::NodeId;
use crate::ring::Ring;

/// Finger tables for every ring member, built from a membership snapshot.
pub struct FingerTables {
    /// `fingers[i][k]` = sorted ring index of the owner of `id(i) + 2^k`.
    fingers: Vec<Vec<usize>>,
}

impl FingerTables {
    /// Build full 64-entry finger tables for all members of `ring`.
    pub fn build(ring: &Ring) -> FingerTables {
        let n = ring.len();
        let mut fingers = Vec::with_capacity(n);
        for i in 0..n {
            let own = ring.member(i).id;
            let mut f = Vec::with_capacity(64);
            for k in 0..64 {
                f.push(ring.owner(own.offset(1u64 << k)));
            }
            fingers.push(f);
        }
        FingerTables { fingers }
    }

    /// The finger entries of member `i`.
    pub fn of(&self, i: usize) -> &[usize] {
        &self.fingers[i]
    }
}

/// Outcome of a routed lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteResult {
    /// Sorted ring index of the node that owns the key.
    pub owner: usize,
    /// Number of overlay hops taken.
    pub hops: usize,
}

/// Route by walking successors: O(N) hops.
pub fn route_ring_walk(ring: &Ring, from: usize, key: NodeId) -> RouteResult {
    let mut cur = from;
    let mut hops = 0;
    while !ring.zone_contains(cur, key) {
        cur = ring.successor(cur);
        hops += 1;
        debug_assert!(hops <= ring.len(), "ring walk failed to terminate");
    }
    RouteResult { owner: cur, hops }
}

/// Outcome of a routed lookup with underlay timing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedRoute {
    /// Sorted ring index of the node that owns the key.
    pub owner: usize,
    /// Number of overlay hops taken.
    pub hops: usize,
    /// Total underlay latency of the path, ms — the `t_hop · hops` quantity
    /// SOMO's §3.2 staleness bound is built on.
    pub latency_ms: f64,
}

/// Finger routing with per-hop underlay latency accounting: the overlay
/// path visits real hosts, and each hop costs the underlay latency between
/// the two hosts' machines.
pub fn route_fingers_timed(
    ring: &Ring,
    fingers: &FingerTables,
    from: usize,
    key: NodeId,
    underlay: &impl netsim::LatencyModel,
) -> TimedRoute {
    let mut cur = from;
    let mut hops = 0;
    let mut latency = 0.0;
    loop {
        if ring.zone_contains(cur, key) {
            return TimedRoute {
                owner: cur,
                hops,
                latency_ms: latency,
            };
        }
        let next = best_finger_step(ring, fingers, cur, key);
        latency += underlay.latency_ms(ring.member(cur).host, ring.member(next).host);
        cur = next;
        hops += 1;
        debug_assert!(hops <= ring.len(), "finger routing failed to terminate");
    }
}

/// Route greedily using finger tables: forward to the finger that makes the
/// most clockwise progress without passing the key. O(log N) hops.
pub fn route_fingers(ring: &Ring, fingers: &FingerTables, from: usize, key: NodeId) -> RouteResult {
    let mut cur = from;
    let mut hops = 0;
    loop {
        if ring.zone_contains(cur, key) {
            return RouteResult { owner: cur, hops };
        }
        cur = best_finger_step(ring, fingers, cur, key);
        hops += 1;
        debug_assert!(hops <= ring.len(), "finger routing failed to terminate");
    }
}

/// The greedy forwarding decision: the finger (or successor) making the
/// most clockwise progress without passing the key.
fn best_finger_step(ring: &Ring, fingers: &FingerTables, cur: usize, key: NodeId) -> usize {
    let cur_id = ring.member(cur).id;
    let target_dist = cur_id.distance_cw(key);
    // Best finger: the one whose clockwise distance from cur is largest
    // while strictly less than the distance to the key (never overshoot
    // past the key; landing exactly on the key's owner is handled by the
    // zone check in the caller).
    let mut best = ring.successor(cur);
    let mut best_dist = cur_id.distance_cw(ring.member(best).id);
    for &f in fingers.of(cur) {
        if f == cur {
            continue;
        }
        let d = cur_id.distance_cw(ring.member(f).id);
        if d <= target_dist && d > best_dist {
            best = f;
            best_dist = d;
        }
    }
    debug_assert_ne!(best, cur);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Ring;
    use netsim::HostId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ring(n: u32, seed: u64) -> Ring {
        Ring::with_random_ids((0..n).map(HostId), seed)
    }

    #[test]
    fn both_routes_agree_with_owner() {
        let r = ring(128, 3);
        let f = FingerTables::build(&r);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let key = NodeId(rng.random());
            let from = rng.random_range(0..r.len());
            let expect = r.owner(key);
            assert_eq!(route_ring_walk(&r, from, key).owner, expect);
            assert_eq!(route_fingers(&r, &f, from, key).owner, expect);
        }
    }

    #[test]
    fn finger_routing_is_logarithmic() {
        let r = ring(1024, 9);
        let f = FingerTables::build(&r);
        let mut rng = StdRng::seed_from_u64(10);
        let mut total = 0usize;
        let trials = 500;
        for _ in 0..trials {
            let key = NodeId(rng.random());
            let from = rng.random_range(0..r.len());
            let hops = route_fingers(&r, &f, from, key).hops;
            assert!(hops <= 2 * 11, "hop count {hops} too large for N=1024");
            total += hops;
        }
        let avg = total as f64 / trials as f64;
        // Expected ~ (log2 N)/2 = 5; allow generous slack.
        assert!(avg < 8.0, "average hops {avg}");
        assert!(avg > 2.0, "suspiciously few hops {avg}");
    }

    #[test]
    fn ring_walk_is_linear_on_average() {
        let r = ring(64, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut total = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let key = NodeId(rng.random());
            let from = rng.random_range(0..r.len());
            total += route_ring_walk(&r, from, key).hops;
        }
        let avg = total as f64 / trials as f64;
        assert!(avg > 16.0, "ring walk should average ~N/2 hops, got {avg}");
    }

    #[test]
    fn routing_from_owner_takes_zero_hops() {
        let r = ring(32, 7);
        let f = FingerTables::build(&r);
        let key = NodeId(12345);
        let owner = r.owner(key);
        assert_eq!(
            route_fingers(&r, &f, owner, key),
            RouteResult { owner, hops: 0 }
        );
    }

    #[test]
    fn timed_route_matches_untimed_and_accumulates_latency() {
        use netsim::{Network, NetworkConfig};
        let net = Network::generate(
            &NetworkConfig {
                transit_domains: 2,
                transit_per_domain: 3,
                stub_domains_per_transit: 2,
                routers_per_stub: 3,
                num_hosts: 200,
                ..NetworkConfig::default()
            },
            4,
        );
        let r = Ring::with_random_ids(net.hosts.ids(), 8);
        let f = FingerTables::build(&r);
        let mut rng = StdRng::seed_from_u64(11);
        let mut total_ms = 0.0;
        let mut total_hops = 0usize;
        for _ in 0..100 {
            let key = NodeId(rng.random());
            let from = rng.random_range(0..r.len());
            let timed = route_fingers_timed(&r, &f, from, key, &net.latency);
            let plain = route_fingers(&r, &f, from, key);
            assert_eq!(timed.owner, plain.owner);
            assert_eq!(timed.hops, plain.hops);
            assert!(timed.latency_ms >= 0.0);
            if timed.hops > 0 {
                assert!(timed.latency_ms > 0.0, "hops without latency");
            }
            total_ms += timed.latency_ms;
            total_hops += timed.hops;
        }
        // Average per-hop latency must sit in the underlay's plausible
        // range (paper assumes ~200 ms per DHT hop on the wide area).
        let per_hop = total_ms / total_hops as f64;
        assert!((20.0..800.0).contains(&per_hop), "per-hop {per_hop} ms");
    }

    #[test]
    fn two_node_ring_routes() {
        let r = ring(2, 1);
        let f = FingerTables::build(&r);
        let key = NodeId(u64::MAX / 3);
        let expect = r.owner(key);
        for from in 0..2 {
            assert_eq!(route_fingers(&r, &f, from, key).owner, expect);
            assert_eq!(route_ring_walk(&r, from, key).owner, expect);
        }
    }
}
