#![warn(missing_docs)]

//! # dht — the ring DHT that pools resources (§3.1)
//!
//! The paper's resource pool is built on the simplest structured P2P system:
//! a consistent-hashing **ring**. Nodes join a very large logical space with
//! random IDs; an ordered set of nodes partitions the space into *zones*
//! `zone(x) = (ID(pred(x)), ID(x)]`; each node maintains a *leafset* of `r`
//! neighbors to each side, kept fresh by heartbeats. Elaborations (finger
//! tables) bring lookups from O(N) to O(log N).
//!
//! This crate provides both views of that system:
//!
//! * [`ring::Ring`] — the **structural** view: a snapshot of the membership
//!   with exact zones, leafsets and owner lookups. The metric-generation
//!   layers (`coords`, `bwest`) and SOMO build on this; it supports instant
//!   join/leave for churn experiments.
//! * [`proto::DhtSim`] — the **protocol** view: heartbeats, acks, failure
//!   detection and leafset repair simulated message-by-message on
//!   [`simcore::EventQueue`], with message latencies taken from the underlay.
//! * [`routing`] — finger tables and greedy clockwise routing with hop
//!   counting, for the O(log N) lookup bound.
//!
//! ## Example
//!
//! ```
//! use dht::id::NodeId;
//! use dht::ring::Ring;
//!
//! // A ring of 64 nodes with IDs hashed from host indices.
//! let ring = Ring::with_random_ids((0..64u32).map(netsim::HostId), 42);
//! let key = NodeId(0xDEAD_BEEF_DEAD_BEEF);
//! let owner = ring.owner(key);
//! // The owner's zone contains the key.
//! let (lo, hi) = ring.zone(owner);
//! assert!(dht::id::in_arc(lo, hi, key));
//! ```

pub mod id;
pub mod proto;
pub mod ring;
pub mod routing;

pub use id::NodeId;
pub use ring::Ring;
