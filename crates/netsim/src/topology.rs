//! Transit–stub topology generation (GT-ITM style, §5.2 of the paper).
//!
//! Structure:
//!
//! * `transit_domains` top-level domains, connected to each other in a ring
//!   plus random chords (so the transit backbone survives any single domain
//!   link loss and has realistic path diversity);
//! * within each transit domain, `transit_per_domain` routers connected in a
//!   ring plus random chords;
//! * each transit router sponsors `stub_domains_per_transit` stub domains of
//!   `routers_per_stub` routers; stub-domain routers form a ring plus random
//!   chords, and the stub's gateway router connects up to its transit router.
//!
//! All inter-router links carry one of the three paper latencies:
//! transit–transit 100 ms, stub–transit 25 ms, intra-stub 10 ms (defaults;
//! configurable). Router indices are assigned transit-first, so
//! `RouterId(0..T)` are transit routers and the rest are stub routers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// Identifier of a router in the underlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouterId(pub u32);

impl From<u32> for RouterId {
    fn from(v: u32) -> Self {
        RouterId(v)
    }
}

/// Configuration of the transit–stub generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransitStubConfig {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Transit routers per domain.
    pub transit_per_domain: usize,
    /// Stub domains per transit router.
    pub stub_domains_per_transit: usize,
    /// Routers per stub domain.
    pub routers_per_stub: usize,
    /// Transit–transit link latency, ms.
    pub intra_transit_ms: f64,
    /// Stub–transit link latency, ms.
    pub stub_transit_ms: f64,
    /// Intra-stub link latency, ms.
    pub intra_stub_ms: f64,
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        TransitStubConfig {
            transit_domains: 4,
            transit_per_domain: 6,
            stub_domains_per_transit: 4,
            routers_per_stub: 6,
            intra_transit_ms: 100.0,
            stub_transit_ms: 25.0,
            intra_stub_ms: 10.0,
        }
    }
}

/// Which tier a router belongs to, and which domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterKind {
    /// Backbone router: `domain` is the transit-domain index.
    Transit {
        /// Transit domain index.
        domain: u32,
    },
    /// Stub router: `stub` is a global stub-domain index, `gateway` the
    /// transit router the stub hangs off.
    Stub {
        /// Global stub-domain index.
        stub: u32,
        /// The transit router this stub domain attaches to.
        gateway: RouterId,
    },
}

/// The generated router-level network.
#[derive(Clone)]
pub struct RouterNet {
    /// Link graph; edge weights are latencies in ms.
    pub graph: Graph,
    /// Per-router tier/domain info, indexed by `RouterId`.
    pub kinds: Vec<RouterKind>,
    /// Number of transit routers (they occupy ids `0..num_transit`).
    pub num_transit: usize,
    cfg: TransitStubConfig,
}

impl RouterNet {
    /// Generate a transit–stub network. Deterministic in `(cfg, seed)`.
    ///
    /// # Panics
    /// If any dimension is zero.
    pub fn generate(cfg: &TransitStubConfig, seed: u64) -> RouterNet {
        assert!(
            cfg.transit_domains > 0
                && cfg.transit_per_domain > 0
                && cfg.stub_domains_per_transit > 0
                && cfg.routers_per_stub > 0,
            "all topology dimensions must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let t_total = cfg.transit_domains * cfg.transit_per_domain;
        let s_total = t_total * cfg.stub_domains_per_transit * cfg.routers_per_stub;
        let n = t_total + s_total;
        let mut graph = Graph::with_nodes(n);
        let mut kinds = Vec::with_capacity(n);

        // Transit routers: ids [0, t_total), domain-major.
        for d in 0..cfg.transit_domains {
            for _ in 0..cfg.transit_per_domain {
                kinds.push(RouterKind::Transit { domain: d as u32 });
            }
            let base = (d * cfg.transit_per_domain) as u32;
            ring_plus_chords(
                &mut graph,
                base,
                cfg.transit_per_domain,
                cfg.intra_transit_ms as f32,
                &mut rng,
            );
        }

        // Inter-domain backbone: domain ring + chords; each inter-domain link
        // connects a random router of each side.
        if cfg.transit_domains > 1 {
            for d in 0..cfg.transit_domains {
                let e = (d + 1) % cfg.transit_domains;
                connect_domains(&mut graph, cfg, d, e, &mut rng);
            }
            // One random chord per domain for diversity (skipped when it
            // would duplicate a ring edge).
            for d in 0..cfg.transit_domains {
                let e = rng.random_range(0..cfg.transit_domains);
                if e != d
                    && e != (d + 1) % cfg.transit_domains
                    && d != (e + 1) % cfg.transit_domains
                {
                    connect_domains(&mut graph, cfg, d, e, &mut rng);
                }
            }
        }

        // Stub domains: ids [t_total, n), grouped per transit router.
        let mut next = t_total as u32;
        let mut stub_idx = 0u32;
        for t in 0..t_total {
            for _ in 0..cfg.stub_domains_per_transit {
                let base = next;
                for _ in 0..cfg.routers_per_stub {
                    kinds.push(RouterKind::Stub {
                        stub: stub_idx,
                        gateway: RouterId(t as u32),
                    });
                    next += 1;
                }
                ring_plus_chords(
                    &mut graph,
                    base,
                    cfg.routers_per_stub,
                    cfg.intra_stub_ms as f32,
                    &mut rng,
                );
                // Gateway link: a random router in the stub uplinks to the
                // sponsoring transit router.
                let gw = base + rng.random_range(0..cfg.routers_per_stub) as u32;
                graph.add_edge(gw, t as u32, cfg.stub_transit_ms as f32);
                stub_idx += 1;
            }
        }

        debug_assert_eq!(kinds.len(), n);
        let net = RouterNet {
            graph,
            kinds,
            num_transit: t_total,
            cfg: cfg.clone(),
        };
        debug_assert!(net.graph.is_connected(), "generated topology disconnected");
        net
    }

    /// Total number of routers.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the network is empty (never true for a generated net).
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Ids of all stub routers (the ones end hosts attach to).
    pub fn stub_routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        (self.num_transit as u32..self.len() as u32).map(RouterId)
    }

    /// The generator configuration.
    pub fn config(&self) -> &TransitStubConfig {
        &self.cfg
    }
}

/// Connect nodes `base..base+n` in a ring, then add ~n/3 random chords.
fn ring_plus_chords(graph: &mut Graph, base: u32, n: usize, w: f32, rng: &mut StdRng) {
    if n == 1 {
        return;
    }
    if n == 2 {
        graph.add_edge(base, base + 1, w);
        return;
    }
    for i in 0..n as u32 {
        graph.add_edge(base + i, base + (i + 1) % n as u32, w);
    }
    let chords = n / 3;
    for _ in 0..chords {
        let a = base + rng.random_range(0..n) as u32;
        let b = base + rng.random_range(0..n) as u32;
        if a != b {
            graph.add_edge(a, b, w);
        }
    }
}

/// Add a transit link between random routers of two transit domains.
fn connect_domains(
    graph: &mut Graph,
    cfg: &TransitStubConfig,
    d: usize,
    e: usize,
    rng: &mut StdRng,
) {
    let a = (d * cfg.transit_per_domain + rng.random_range(0..cfg.transit_per_domain)) as u32;
    let b = (e * cfg.transit_per_domain + rng.random_range(0..cfg.transit_per_domain)) as u32;
    graph.add_edge(a, b, cfg.intra_transit_ms as f32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_dimensions() {
        let cfg = TransitStubConfig::default();
        let net = RouterNet::generate(&cfg, 7);
        assert_eq!(net.num_transit, 24);
        assert_eq!(net.len(), 600);
        assert_eq!(net.stub_routers().count(), 576);
    }

    #[test]
    fn generated_topology_is_connected() {
        for seed in 0..5 {
            let net = RouterNet::generate(&TransitStubConfig::default(), seed);
            assert!(net.graph.is_connected(), "seed {seed} disconnected");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = TransitStubConfig::default();
        let a = RouterNet::generate(&cfg, 99);
        let b = RouterNet::generate(&cfg, 99);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for v in 0..a.len() as u32 {
            assert_eq!(a.graph.neighbors(v), b.graph.neighbors(v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = TransitStubConfig::default();
        let a = RouterNet::generate(&cfg, 1);
        let b = RouterNet::generate(&cfg, 2);
        let same = (0..a.len() as u32).all(|v| a.graph.neighbors(v) == b.graph.neighbors(v));
        assert!(!same);
    }

    #[test]
    fn stub_routers_have_correct_kind_and_gateway() {
        let net = RouterNet::generate(&TransitStubConfig::default(), 3);
        for r in net.stub_routers() {
            match net.kinds[r.0 as usize] {
                RouterKind::Stub { gateway, .. } => {
                    assert!((gateway.0 as usize) < net.num_transit);
                }
                RouterKind::Transit { .. } => panic!("stub range contains transit router"),
            }
        }
    }

    #[test]
    fn intra_stub_links_use_stub_latency() {
        let net = RouterNet::generate(&TransitStubConfig::default(), 3);
        let cfg = net.config().clone();
        // Every edge between two stub routers of the same stub domain must be
        // the intra-stub latency.
        for v in net.num_transit as u32..net.len() as u32 {
            let RouterKind::Stub { stub: sv, .. } = net.kinds[v as usize] else {
                unreachable!()
            };
            for &(u, w) in net.graph.neighbors(v) {
                if let RouterKind::Stub { stub: su, .. } = net.kinds[u as usize] {
                    if su == sv {
                        assert_eq!(w, cfg.intra_stub_ms as f32);
                    }
                }
            }
        }
    }

    #[test]
    fn minimal_topology_works() {
        let cfg = TransitStubConfig {
            transit_domains: 1,
            transit_per_domain: 1,
            stub_domains_per_transit: 1,
            routers_per_stub: 1,
            ..Default::default()
        };
        let net = RouterNet::generate(&cfg, 0);
        assert_eq!(net.len(), 2);
        assert!(net.graph.is_connected());
    }
}
