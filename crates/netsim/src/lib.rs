#![warn(missing_docs)]

//! # netsim — the simulated wide-area underlay
//!
//! The paper evaluates on a GT-ITM two-layer *transit–stub* topology: 24
//! transit routers, 576 stub routers, link latencies of 100 ms
//! (transit–transit), 25 ms (stub–transit) and 10 ms (intra-stub), with 1200
//! end systems attached to stub routers by a 3–8 ms last hop (§5.2). GT-ITM
//! itself is 1990s C that we cannot ship, so this crate implements a
//! transit–stub generator with exactly those structural parameters — the only
//! properties the paper's experiments rely on.
//!
//! The crate provides:
//!
//! * [`topology`] — the router-level transit–stub generator;
//! * [`graph`] — a small weighted-graph type with Dijkstra;
//! * [`hosts`] — end-host attachment, last-hop latencies, and the paper's
//!   degree-bound distribution (P(degree = i+1) = 2⁻ⁱ);
//! * [`latency`] — the all-pairs host latency oracle and the [`LatencyModel`]
//!   trait shared by every ALM algorithm (oracle vs. coordinate-estimated);
//! * [`bandwidth`] — the synthetic access-bandwidth mixture standing in for
//!   the Gnutella trace, plus the packet-pair dispersion model.
//!
//! ## Example
//!
//! ```
//! use netsim::{Network, NetworkConfig};
//!
//! // A scaled-down network for tests: 2×3 transit, 2 stubs × 3 routers each.
//! let cfg = NetworkConfig {
//!     transit_domains: 2,
//!     transit_per_domain: 3,
//!     stub_domains_per_transit: 2,
//!     routers_per_stub: 3,
//!     num_hosts: 60,
//!     ..NetworkConfig::default()
//! };
//! let net = Network::generate(&cfg, 42);
//! assert_eq!(net.num_hosts(), 60);
//! let d = net.latency_ms(0.into(), 1.into());
//! assert!(d > 0.0);
//! ```

pub mod bandwidth;
pub mod graph;
pub mod hosts;
pub mod latency;
pub mod topology;

pub use bandwidth::{AccessBandwidth, BandwidthClass, PacketPair};
pub use hosts::{DegreeDistribution, HostId};
pub use latency::{CachedLatency, LatencyMatrix, LatencyModel, NanLatency};
pub use topology::{RouterId, RouterNet, TransitStubConfig};

use serde::{Deserialize, Serialize};

/// Full configuration for a generated network: router topology + end hosts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Transit routers per transit domain.
    pub transit_per_domain: usize,
    /// Stub domains hanging off each transit router.
    pub stub_domains_per_transit: usize,
    /// Routers per stub domain.
    pub routers_per_stub: usize,
    /// Latency of transit–transit links, ms.
    pub intra_transit_ms: f64,
    /// Latency of stub–transit links, ms.
    pub stub_transit_ms: f64,
    /// Latency of intra-stub links, ms.
    pub intra_stub_ms: f64,
    /// Last-hop latency range for end hosts, ms (inclusive low, exclusive high).
    pub last_hop_ms: (f64, f64),
    /// Number of end hosts attached to random stub routers.
    pub num_hosts: usize,
}

impl Default for NetworkConfig {
    /// The paper's §5.2 configuration: 24 transit routers (4 domains × 6),
    /// 576 stub routers (24 × 4 stubs × 6 routers), 600 routers total,
    /// 1200 end systems, 100/25/10 ms links and a 3–8 ms last hop.
    fn default() -> Self {
        NetworkConfig {
            transit_domains: 4,
            transit_per_domain: 6,
            stub_domains_per_transit: 4,
            routers_per_stub: 6,
            intra_transit_ms: 100.0,
            stub_transit_ms: 25.0,
            intra_stub_ms: 10.0,
            last_hop_ms: (3.0, 8.0),
            num_hosts: 1200,
        }
    }
}

impl NetworkConfig {
    /// Total number of routers this configuration produces.
    pub fn num_routers(&self) -> usize {
        let transit = self.transit_domains * self.transit_per_domain;
        transit + transit * self.stub_domains_per_transit * self.routers_per_stub
    }
}

/// A fully generated network: router topology, all-pairs router distances,
/// end hosts with last-hop latencies, degree bounds and access bandwidths.
///
/// This is the "physical world" every experiment runs against. Generation is
/// deterministic from `(config, seed)`.
#[derive(Clone)]
pub struct Network {
    /// Router-level topology.
    pub routers: RouterNet,
    /// End-host attachment and attributes.
    pub hosts: hosts::HostSet,
    /// All-pairs host latency oracle.
    pub latency: LatencyMatrix,
}

impl Network {
    /// Generate a network from a configuration and a master seed.
    pub fn generate(cfg: &NetworkConfig, seed: u64) -> Network {
        let ts_cfg = TransitStubConfig {
            transit_domains: cfg.transit_domains,
            transit_per_domain: cfg.transit_per_domain,
            stub_domains_per_transit: cfg.stub_domains_per_transit,
            routers_per_stub: cfg.routers_per_stub,
            intra_transit_ms: cfg.intra_transit_ms,
            stub_transit_ms: cfg.stub_transit_ms,
            intra_stub_ms: cfg.intra_stub_ms,
        };
        let routers = RouterNet::generate(&ts_cfg, simcore::rng::derive_seed(seed, 1));
        let hosts = hosts::HostSet::attach(
            &routers,
            cfg.num_hosts,
            cfg.last_hop_ms,
            simcore::rng::derive_seed(seed, 2),
        );
        let latency = LatencyMatrix::build(&routers, &hosts);
        Network {
            routers,
            hosts,
            latency,
        }
    }

    /// Number of end hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Oracle latency between two hosts, ms.
    pub fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        self.latency.latency_ms(a, b)
    }
}
