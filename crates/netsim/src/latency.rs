//! All-pairs host latency oracle and the [`LatencyModel`] abstraction.
//!
//! Every ALM planning algorithm in the workspace is written against
//! [`LatencyModel`], so the same code runs in the paper's two modes:
//!
//! * *Critical* — pair-wise latency known a priori via an oracle
//!   ([`LatencyMatrix`], exact shortest-path distances), and
//! * *Leafset* — latency predicted from network coordinates (the `coords`
//!   crate implements `LatencyModel` for its coordinate store).

use crate::hosts::{HostId, HostSet};
use crate::topology::RouterNet;

/// Anything that can estimate the latency between two end hosts.
///
/// Implementations must be symmetric (`latency(a, b) == latency(b, a)`) and
/// return `0` for `a == b`; the provided algorithms rely on both.
pub trait LatencyModel {
    /// Latency estimate between hosts `a` and `b`, in milliseconds.
    fn latency_ms(&self, a: HostId, b: HostId) -> f64;

    /// Number of hosts this model covers (hosts have ids `0..num_hosts`).
    fn num_hosts(&self) -> usize;
}

impl<T: LatencyModel + ?Sized> LatencyModel for &T {
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        (**self).latency_ms(a, b)
    }
    fn num_hosts(&self) -> usize {
        (**self).num_hosts()
    }
}

/// Exact all-pairs host latencies: last-hop + shortest router path +
/// last-hop. Stored as a dense `n × n` matrix of `f32` ms (1200 hosts → 5.8
/// MB), built from one Dijkstra per router.
#[derive(Clone)]
pub struct LatencyMatrix {
    n: usize,
    /// Row-major `n*n` distances in ms.
    dist: Vec<f32>,
}

impl LatencyMatrix {
    /// Build the oracle for all hosts of a network.
    pub fn build(net: &RouterNet, hosts: &HostSet) -> LatencyMatrix {
        let n = hosts.len();
        // All-pairs router distances — only rows for routers that actually
        // host endpoints would suffice, but the full matrix is cheap (600²)
        // and reusable.
        let rd = net.graph.all_pairs();
        let mut dist = vec![0f32; n * n];
        for (a, ha) in hosts.iter() {
            for (b, hb) in hosts.iter() {
                if a == b {
                    continue;
                }
                let router_d = rd[ha.router.0 as usize][hb.router.0 as usize];
                debug_assert!(router_d.is_finite(), "disconnected routers");
                dist[a.idx() * n + b.idx()] =
                    (ha.last_hop_ms + router_d as f64 + hb.last_hop_ms) as f32;
            }
        }
        LatencyMatrix { n, dist }
    }

    /// The largest pairwise latency in the matrix (diameter), ms.
    pub fn diameter_ms(&self) -> f64 {
        self.dist.iter().copied().fold(0f32, f32::max) as f64
    }
}

impl LatencyModel for LatencyMatrix {
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        self.dist[a.idx() * self.n + b.idx()] as f64
    }

    fn num_hosts(&self) -> usize {
        self.n
    }
}

/// A planner's-eye latency model: pairs inside a *measured set* (e.g. a
/// session's members, who ping each other directly — O(m²) probes for a
/// 20-member session is nothing) use real measurements, while any pair
/// involving an outside host (the huge helper candidate list from SOMO)
/// falls back to an estimate such as network coordinates.
///
/// This is exactly the paper's *Leafset* algorithm family: "the one used
/// the leafset estimation for **vicinity judgment**" — coordinates judge
/// helper vicinity; they do not replace the members' own measurements.
pub struct MeasuredSetLatency<'a, M: LatencyModel, E: LatencyModel> {
    measured: std::collections::HashSet<HostId>,
    oracle: &'a M,
    estimate: &'a E,
}

impl<'a, M: LatencyModel, E: LatencyModel> MeasuredSetLatency<'a, M, E> {
    /// A model where pairs within `measured` use `oracle` and all other
    /// pairs use `estimate`.
    pub fn new(measured: impl IntoIterator<Item = HostId>, oracle: &'a M, estimate: &'a E) -> Self {
        MeasuredSetLatency {
            measured: measured.into_iter().collect(),
            oracle,
            estimate,
        }
    }
}

impl<M: LatencyModel, E: LatencyModel> LatencyModel for MeasuredSetLatency<'_, M, E> {
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        if self.measured.contains(&a) && self.measured.contains(&b) {
            self.oracle.latency_ms(a, b)
        } else {
            self.estimate.latency_ms(a, b)
        }
    }

    fn num_hosts(&self) -> usize {
        self.oracle.num_hosts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosts::HostSet;
    use crate::topology::{RouterNet, TransitStubConfig};

    fn small() -> (RouterNet, HostSet) {
        let cfg = TransitStubConfig {
            transit_domains: 2,
            transit_per_domain: 3,
            stub_domains_per_transit: 2,
            routers_per_stub: 3,
            ..Default::default()
        };
        let net = RouterNet::generate(&cfg, 9);
        let hosts = HostSet::attach(&net, 50, (3.0, 8.0), 10);
        (net, hosts)
    }

    #[test]
    fn symmetric_and_zero_diagonal() {
        let (net, hosts) = small();
        let m = LatencyMatrix::build(&net, &hosts);
        for a in hosts.ids() {
            assert_eq!(m.latency_ms(a, a), 0.0);
            for b in hosts.ids() {
                assert_eq!(m.latency_ms(a, b), m.latency_ms(b, a));
            }
        }
    }

    #[test]
    fn triangle_inequality_holds_for_shortest_paths() {
        // Underlay shortest-path distances satisfy the triangle inequality
        // up to the double-counted last hop of the intermediate host: d(a,c)
        // <= d(a,b) + d(b,c) always holds because the router path through
        // b's router is a candidate path and host b adds 2*last_hop >= 0.
        let (net, hosts) = small();
        let m = LatencyMatrix::build(&net, &hosts);
        for a in hosts.ids().take(10) {
            for b in hosts.ids().take(10) {
                for c in hosts.ids().take(10) {
                    let lhs = m.latency_ms(a, c);
                    let rhs = m.latency_ms(a, b) + m.latency_ms(b, c);
                    assert!(lhs <= rhs + 1e-3, "triangle violated: {lhs} > {rhs}");
                }
            }
        }
    }

    #[test]
    fn same_stub_is_much_closer_than_cross_transit() {
        let (net, hosts) = small();
        let m = LatencyMatrix::build(&net, &hosts);
        // Find two hosts in the same stub domain and two in different
        // transit domains; same-stub pairs must be far cheaper.
        let mut same_stub = None;
        let mut cross = None;
        for (a, ha) in hosts.iter() {
            for (b, hb) in hosts.iter() {
                if a >= b {
                    continue;
                }
                if ha.router == hb.router && same_stub.is_none() {
                    same_stub = Some(m.latency_ms(a, b));
                }
                let ka = &net.kinds[ha.router.0 as usize];
                let kb = &net.kinds[hb.router.0 as usize];
                if let (
                    crate::topology::RouterKind::Stub { gateway: ga, .. },
                    crate::topology::RouterKind::Stub { gateway: gb, .. },
                ) = (ka, kb)
                {
                    if ga != gb && cross.is_none() {
                        cross = Some(m.latency_ms(a, b));
                    }
                }
            }
        }
        if let (Some(s), Some(c)) = (same_stub, cross) {
            assert!(s < c, "same-stub {s} should beat cross-gateway {c}");
        }
    }

    #[test]
    fn measured_set_routes_by_membership() {
        struct Fixed(f64);
        impl LatencyModel for Fixed {
            fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
                if a == b {
                    0.0
                } else {
                    self.0
                }
            }
            fn num_hosts(&self) -> usize {
                10
            }
        }
        let oracle = Fixed(100.0);
        let estimate = Fixed(7.0);
        let m = MeasuredSetLatency::new([HostId(0), HostId(1)], &oracle, &estimate);
        assert_eq!(m.latency_ms(HostId(0), HostId(1)), 100.0);
        assert_eq!(m.latency_ms(HostId(0), HostId(5)), 7.0);
        assert_eq!(m.latency_ms(HostId(5), HostId(6)), 7.0);
        assert_eq!(m.num_hosts(), 10);
    }

    #[test]
    fn diameter_is_positive_and_bounded() {
        let (net, hosts) = small();
        let m = LatencyMatrix::build(&net, &hosts);
        let d = m.diameter_ms();
        assert!(d > 0.0);
        // Upper bound: every path is at most (#routers * max link) + 2 last hops.
        assert!(d < net.len() as f64 * 100.0 + 16.0);
    }
}
