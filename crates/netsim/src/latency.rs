//! All-pairs host latency oracle and the [`LatencyModel`] abstraction.
//!
//! Every ALM planning algorithm in the workspace is written against
//! [`LatencyModel`], so the same code runs in the paper's two modes:
//!
//! * *Critical* — pair-wise latency known a priori via an oracle
//!   ([`LatencyMatrix`], exact shortest-path distances), and
//! * *Leafset* — latency predicted from network coordinates (the `coords`
//!   crate implements `LatencyModel` for its coordinate store).

use std::sync::Arc;

use crate::hosts::{HostId, HostSet};
use crate::topology::RouterNet;

/// Anything that can estimate the latency between two end hosts.
///
/// Implementations must be symmetric (`latency(a, b) == latency(b, a)`),
/// return `0` for `a == b`, and never return a negative or NaN value; the
/// provided algorithms rely on all three (the planners' relaxation pruning
/// in particular assumes `latency >= 0`, so a negative estimate would
/// silently change results rather than error).
///
/// # Precision contract
///
/// Implementations may carry either `f32`- or `f64`-precision values:
///
/// * [`LatencyMatrix`] quantizes once, at build time, to `f32`. Its
///   `latency_ms` widens `f32 → f64`, which is exact (every `f32` is
///   representable as an `f64`), so snapshotting a matrix-backed model into
///   another `f32` store ([`CachedLatency::from_matrix`]) is value-identical
///   and zero-copy — there is no repeated `f64 → f32 → f64` round-trip per
///   call site.
/// * Genuine `f64` models (e.g. coordinate stores) keep full precision.
///   Snapshotting one with [`CachedLatency::snapshot`] rounds each pair to
///   `f32` exactly once; callers that require bit-identical outputs against
///   the original model must keep using the original model.
pub trait LatencyModel {
    /// Latency estimate between hosts `a` and `b`, in milliseconds.
    fn latency_ms(&self, a: HostId, b: HostId) -> f64;

    /// Number of hosts this model covers (hosts have ids `0..num_hosts`).
    fn num_hosts(&self) -> usize;
}

impl<T: LatencyModel + ?Sized> LatencyModel for &T {
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        (**self).latency_ms(a, b)
    }
    fn num_hosts(&self) -> usize {
        (**self).num_hosts()
    }
}

/// Exact all-pairs host latencies: last-hop + shortest router path +
/// last-hop. Stored as a dense `n × n` matrix of `f32` ms (1200 hosts → 5.8
/// MB), built from one Dijkstra per *host-attached* router. The storage is
/// shared (`Arc`), so cloning a matrix — or a whole network/pool that embeds
/// one — is O(1).
#[derive(Clone)]
pub struct LatencyMatrix {
    n: usize,
    /// Row-major `n*n` distances in ms.
    dist: Arc<[f32]>,
}

impl LatencyMatrix {
    /// Build the oracle for all hosts of a network.
    ///
    /// Only routers that actually host endpoints are Dijkstra sources:
    /// hosts attach to stub routers, so transit routers (and any stub router
    /// without endpoints) never need a distance row of their own.
    pub fn build(net: &RouterNet, hosts: &HostSet) -> LatencyMatrix {
        let n = hosts.len();
        let mut srcs: Vec<u32> = hosts.iter().map(|(_, h)| h.router.0).collect();
        srcs.sort_unstable();
        srcs.dedup();
        let mut row_of = vec![usize::MAX; net.graph.len()];
        for (i, &r) in srcs.iter().enumerate() {
            row_of[r as usize] = i;
        }
        let rd: Vec<Vec<f32>> = srcs.iter().map(|&r| net.graph.dijkstra(r)).collect();
        let mut dist = vec![0f32; n * n];
        for (a, ha) in hosts.iter() {
            for (b, hb) in hosts.iter() {
                if a == b {
                    continue;
                }
                let router_d = rd[row_of[ha.router.0 as usize]][hb.router.0 as usize];
                debug_assert!(router_d.is_finite(), "disconnected routers");
                dist[a.idx() * n + b.idx()] =
                    (ha.last_hop_ms + router_d as f64 + hb.last_hop_ms) as f32;
            }
        }
        LatencyMatrix {
            n,
            dist: dist.into(),
        }
    }

    /// The largest pairwise latency in the matrix (diameter), ms.
    pub fn diameter_ms(&self) -> f64 {
        self.dist.iter().copied().fold(0f32, f32::max) as f64
    }
}

impl LatencyModel for LatencyMatrix {
    #[inline]
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        let i = a.idx() * self.n + b.idx();
        debug_assert!(i < self.dist.len(), "host id out of matrix range");
        // SAFETY: ids come from the host set the matrix was built over
        // (`idx() < n`); debug builds assert the bound.
        f64::from(unsafe { *self.dist.get_unchecked(i) })
    }

    #[inline]
    fn num_hosts(&self) -> usize {
        self.n
    }
}

/// A dense, monomorphized latency kernel: any [`LatencyModel`] snapshotted
/// into a row-major `f32` matrix so planner inner loops pay one array load
/// per pair instead of whatever the source model computes.
///
/// Two constructions with different precision guarantees (see the
/// [`LatencyModel`] precision contract):
///
/// * [`CachedLatency::from_matrix`] shares a [`LatencyMatrix`]'s storage —
///   zero-copy, value-identical, safe wherever bit-reproducibility matters.
/// * [`CachedLatency::snapshot`] evaluates an arbitrary model once per pair
///   and rounds to `f32` — a fast approximation of `f64` models, *not*
///   value-identical to them.
#[derive(Clone)]
pub struct CachedLatency {
    n: usize,
    dist: Arc<[f32]>,
}

impl std::fmt::Debug for CachedLatency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The matrix itself is n² entries — print its shape, not its body.
        f.debug_struct("CachedLatency").field("n", &self.n).finish()
    }
}

impl CachedLatency {
    /// Share a matrix's storage without copying. Value-identical to the
    /// source: the matrix already stores `f32`, and widening is exact.
    pub fn from_matrix(m: &LatencyMatrix) -> CachedLatency {
        CachedLatency {
            n: m.n,
            dist: Arc::clone(&m.dist),
        }
    }

    /// Evaluate `model` for every ordered pair and store the results as
    /// `f32`. O(n²) calls, done once; quantizes genuine `f64` models.
    ///
    /// A NaN from `model` (a corrupted coordinate store, an uninitialized
    /// estimate) is rejected here with [`NanLatency`] — the quantization
    /// boundary is the one place every estimated pair flows through, so
    /// catching it here means the planners downstream never see a NaN.
    pub fn snapshot<L: LatencyModel + ?Sized>(model: &L) -> Result<CachedLatency, NanLatency> {
        let n = model.num_hosts();
        let mut dist = vec![0f32; n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    let d = model.latency_ms(HostId(a as u32), HostId(b as u32));
                    if d.is_nan() {
                        return Err(NanLatency {
                            a: HostId(a as u32),
                            b: HostId(b as u32),
                        });
                    }
                    dist[a * n + b] = d as f32;
                }
            }
        }
        Ok(CachedLatency {
            n,
            dist: dist.into(),
        })
    }
}

/// A latency model produced NaN for the given host pair — returned by
/// [`CachedLatency::snapshot`] instead of letting the poisoned value leak
/// into planner orderings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NanLatency {
    /// First host of the offending pair.
    pub a: HostId,
    /// Second host of the offending pair.
    pub b: HostId,
}

impl std::fmt::Display for NanLatency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latency model returned NaN for hosts {} and {}",
            self.a.0, self.b.0
        )
    }
}

impl std::error::Error for NanLatency {}

impl From<&LatencyMatrix> for CachedLatency {
    fn from(m: &LatencyMatrix) -> CachedLatency {
        CachedLatency::from_matrix(m)
    }
}

impl LatencyModel for CachedLatency {
    #[inline]
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        let i = a.idx() * self.n + b.idx();
        debug_assert!(i < self.dist.len(), "host id out of matrix range");
        // SAFETY: ids are below `num_hosts` by the model contract; debug
        // builds assert the bound.
        f64::from(unsafe { *self.dist.get_unchecked(i) })
    }

    #[inline]
    fn num_hosts(&self) -> usize {
        self.n
    }
}

thread_local! {
    static LATENCY_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Zero the current thread's [`Counted`] call counter.
pub fn reset_latency_calls() {
    LATENCY_CALLS.with(|c| c.set(0));
}

/// `latency_ms` evaluations made through [`Counted`] on this thread since
/// the last [`reset_latency_calls`].
pub fn latency_calls() -> u64 {
    LATENCY_CALLS.with(|c| c.get())
}

/// Fold [`Counted`] evaluations made on *another* thread into this
/// thread's tally. Parallel planners lose worker-thread counts when the
/// workers exit; the coordinator absorbs each plan's reported count here
/// so the harness's thread-local view matches a sequential run.
pub fn absorb_latency_calls(n: u64) {
    LATENCY_CALLS.with(|c| c.set(c.get() + n));
}

/// Instrumentation wrapper: forwards to the inner model and counts every
/// `latency_ms` evaluation in a thread-local tally (the perf harness's
/// "latency calls" column). Not meant for production paths — the counter
/// bump is cheap but not free.
pub struct Counted<L>(pub L);

impl<L: LatencyModel> LatencyModel for Counted<L> {
    #[inline]
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        LATENCY_CALLS.with(|c| c.set(c.get() + 1));
        self.0.latency_ms(a, b)
    }

    #[inline]
    fn num_hosts(&self) -> usize {
        self.0.num_hosts()
    }
}

/// A planner's-eye latency model: pairs inside a *measured set* (e.g. a
/// session's members, who ping each other directly — O(m²) probes for a
/// 20-member session is nothing) use real measurements, while any pair
/// involving an outside host (the huge helper candidate list from SOMO)
/// falls back to an estimate such as network coordinates.
///
/// This is exactly the paper's *Leafset* algorithm family: "the one used
/// the leafset estimation for **vicinity judgment**" — coordinates judge
/// helper vicinity; they do not replace the members' own measurements.
pub struct MeasuredSetLatency<'a, M: LatencyModel, E: LatencyModel> {
    measured: std::collections::HashSet<HostId>,
    oracle: &'a M,
    estimate: &'a E,
}

impl<'a, M: LatencyModel, E: LatencyModel> MeasuredSetLatency<'a, M, E> {
    /// A model where pairs within `measured` use `oracle` and all other
    /// pairs use `estimate`.
    pub fn new(measured: impl IntoIterator<Item = HostId>, oracle: &'a M, estimate: &'a E) -> Self {
        MeasuredSetLatency {
            measured: measured.into_iter().collect(),
            oracle,
            estimate,
        }
    }
}

impl<M: LatencyModel, E: LatencyModel> LatencyModel for MeasuredSetLatency<'_, M, E> {
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        if self.measured.contains(&a) && self.measured.contains(&b) {
            self.oracle.latency_ms(a, b)
        } else {
            self.estimate.latency_ms(a, b)
        }
    }

    fn num_hosts(&self) -> usize {
        self.oracle.num_hosts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosts::HostSet;
    use crate::topology::{RouterNet, TransitStubConfig};

    fn small() -> (RouterNet, HostSet) {
        let cfg = TransitStubConfig {
            transit_domains: 2,
            transit_per_domain: 3,
            stub_domains_per_transit: 2,
            routers_per_stub: 3,
            ..Default::default()
        };
        let net = RouterNet::generate(&cfg, 9);
        let hosts = HostSet::attach(&net, 50, (3.0, 8.0), 10);
        (net, hosts)
    }

    #[test]
    fn symmetric_and_zero_diagonal() {
        let (net, hosts) = small();
        let m = LatencyMatrix::build(&net, &hosts);
        for a in hosts.ids() {
            assert_eq!(m.latency_ms(a, a), 0.0);
            for b in hosts.ids() {
                assert_eq!(m.latency_ms(a, b), m.latency_ms(b, a));
            }
        }
    }

    #[test]
    fn triangle_inequality_holds_for_shortest_paths() {
        // Underlay shortest-path distances satisfy the triangle inequality
        // up to the double-counted last hop of the intermediate host: d(a,c)
        // <= d(a,b) + d(b,c) always holds because the router path through
        // b's router is a candidate path and host b adds 2*last_hop >= 0.
        let (net, hosts) = small();
        let m = LatencyMatrix::build(&net, &hosts);
        for a in hosts.ids().take(10) {
            for b in hosts.ids().take(10) {
                for c in hosts.ids().take(10) {
                    let lhs = m.latency_ms(a, c);
                    let rhs = m.latency_ms(a, b) + m.latency_ms(b, c);
                    assert!(lhs <= rhs + 1e-3, "triangle violated: {lhs} > {rhs}");
                }
            }
        }
    }

    #[test]
    fn same_stub_is_much_closer_than_cross_transit() {
        let (net, hosts) = small();
        let m = LatencyMatrix::build(&net, &hosts);
        // Find two hosts in the same stub domain and two in different
        // transit domains; same-stub pairs must be far cheaper.
        let mut same_stub = None;
        let mut cross = None;
        for (a, ha) in hosts.iter() {
            for (b, hb) in hosts.iter() {
                if a >= b {
                    continue;
                }
                if ha.router == hb.router && same_stub.is_none() {
                    same_stub = Some(m.latency_ms(a, b));
                }
                let ka = &net.kinds[ha.router.0 as usize];
                let kb = &net.kinds[hb.router.0 as usize];
                if let (
                    crate::topology::RouterKind::Stub { gateway: ga, .. },
                    crate::topology::RouterKind::Stub { gateway: gb, .. },
                ) = (ka, kb)
                {
                    if ga != gb && cross.is_none() {
                        cross = Some(m.latency_ms(a, b));
                    }
                }
            }
        }
        if let (Some(s), Some(c)) = (same_stub, cross) {
            assert!(s < c, "same-stub {s} should beat cross-gateway {c}");
        }
    }

    #[test]
    fn measured_set_routes_by_membership() {
        struct Fixed(f64);
        impl LatencyModel for Fixed {
            fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
                if a == b {
                    0.0
                } else {
                    self.0
                }
            }
            fn num_hosts(&self) -> usize {
                10
            }
        }
        let oracle = Fixed(100.0);
        let estimate = Fixed(7.0);
        let m = MeasuredSetLatency::new([HostId(0), HostId(1)], &oracle, &estimate);
        assert_eq!(m.latency_ms(HostId(0), HostId(1)), 100.0);
        assert_eq!(m.latency_ms(HostId(0), HostId(5)), 7.0);
        assert_eq!(m.latency_ms(HostId(5), HostId(6)), 7.0);
        assert_eq!(m.num_hosts(), 10);
    }

    #[test]
    fn restricted_dijkstra_matches_full_all_pairs_build() {
        // Satellite check: sourcing Dijkstra only from host-attached routers
        // must produce exactly the matrix the old every-router build did.
        let (net, hosts) = small();
        let m = LatencyMatrix::build(&net, &hosts);
        let rd = net.graph.all_pairs();
        let n = hosts.len();
        let mut full = vec![0f32; n * n];
        for (a, ha) in hosts.iter() {
            for (b, hb) in hosts.iter() {
                if a == b {
                    continue;
                }
                let router_d = rd[ha.router.0 as usize][hb.router.0 as usize];
                full[a.idx() * n + b.idx()] =
                    (ha.last_hop_ms + router_d as f64 + hb.last_hop_ms) as f32;
            }
        }
        for a in hosts.ids() {
            for b in hosts.ids() {
                assert_eq!(m.latency_ms(a, b), f64::from(full[a.idx() * n + b.idx()]));
            }
        }
    }

    #[test]
    fn cached_from_matrix_is_value_identical_and_zero_copy() {
        let (net, hosts) = small();
        let m = LatencyMatrix::build(&net, &hosts);
        let c = CachedLatency::from_matrix(&m);
        assert_eq!(c.num_hosts(), m.num_hosts());
        for a in hosts.ids() {
            for b in hosts.ids() {
                // Bit-identical, not merely close: the storage is shared.
                assert_eq!(c.latency_ms(a, b).to_bits(), m.latency_ms(a, b).to_bits());
            }
        }
        assert!(Arc::ptr_eq(&c.dist, &m.dist));
    }

    #[test]
    fn snapshot_quantizes_f64_models_once() {
        struct Pi;
        impl LatencyModel for Pi {
            fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
                if a == b {
                    0.0
                } else {
                    std::f64::consts::PI
                }
            }
            fn num_hosts(&self) -> usize {
                4
            }
        }
        let c = CachedLatency::snapshot(&Pi).unwrap();
        let want = f64::from(std::f64::consts::PI as f32);
        assert_eq!(c.latency_ms(HostId(0), HostId(3)), want);
        assert_eq!(c.latency_ms(HostId(2), HostId(2)), 0.0);
    }

    #[test]
    fn snapshot_rejects_nan_model_with_typed_error() {
        struct Poisoned;
        impl LatencyModel for Poisoned {
            fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
                if a == HostId(1) && b == HostId(2) {
                    f64::NAN
                } else {
                    1.0
                }
            }
            fn num_hosts(&self) -> usize {
                4
            }
        }
        let err = CachedLatency::snapshot(&Poisoned).unwrap_err();
        assert_eq!(
            err,
            NanLatency {
                a: HostId(1),
                b: HostId(2)
            }
        );
        assert!(err.to_string().contains("NaN"));
    }

    #[test]
    fn counted_wrapper_tallies_calls() {
        let (net, hosts) = small();
        let m = Counted(LatencyMatrix::build(&net, &hosts));
        reset_latency_calls();
        let _ = m.latency_ms(HostId(0), HostId(1));
        let _ = m.latency_ms(HostId(1), HostId(2));
        assert_eq!(latency_calls(), 2);
        reset_latency_calls();
        assert_eq!(latency_calls(), 0);
    }

    #[test]
    fn diameter_is_positive_and_bounded() {
        let (net, hosts) = small();
        let m = LatencyMatrix::build(&net, &hosts);
        let d = m.diameter_ms();
        assert!(d > 0.0);
        // Upper bound: every path is at most (#routers * max link) + 2 last hops.
        assert!(d < net.len() as f64 * 100.0 + 16.0);
    }
}
