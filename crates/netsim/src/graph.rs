//! Weighted undirected graph with single-source shortest paths.
//!
//! Small and purpose-built: the router graph is a few hundred nodes, and we
//! run one Dijkstra per router to build the all-pairs latency matrix. Sources
//! are fanned out across threads (crossbeam scoped threads) with each thread
//! writing a disjoint slice of rows, so the result is deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A weighted undirected graph stored as adjacency lists.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<(u32, f32)>>,
}

impl Graph {
    /// A graph with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> Graph {
        Graph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Add an undirected edge `a <-> b` with weight `w` (ms). Parallel edges
    /// are ignored; the first weight wins.
    pub fn add_edge(&mut self, a: u32, b: u32, w: f32) {
        assert!(a != b, "self-loop");
        assert!(w >= 0.0, "negative edge weight");
        if self.adj[a as usize].iter().any(|&(n, _)| n == b) {
            return;
        }
        self.adj[a as usize].push((b, w));
        self.adj[b as usize].push((a, w));
    }

    /// Whether an edge `a <-> b` exists.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.adj[a as usize].iter().any(|&(n, _)| n == b)
    }

    /// Neighbors of `v` with edge weights.
    pub fn neighbors(&self, v: u32) -> &[(u32, f32)] {
        &self.adj[v as usize]
    }

    /// Single-source shortest path distances from `src` (f32 ms;
    /// `f32::INFINITY` for unreachable nodes).
    pub fn dijkstra(&self, src: u32) -> Vec<f32> {
        let n = self.adj.len();
        let mut dist = vec![f32::INFINITY; n];
        let mut heap: BinaryHeap<Reverse<(OrdF32, u32)>> = BinaryHeap::new();
        dist[src as usize] = 0.0;
        heap.push(Reverse((OrdF32(0.0), src)));
        while let Some(Reverse((OrdF32(d), v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for &(u, w) in &self.adj[v as usize] {
                let nd = d + w;
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    heap.push(Reverse((OrdF32(nd), u)));
                }
            }
        }
        dist
    }

    /// All-pairs shortest path distances, parallelized across sources.
    /// Row `i` is `dijkstra(i)`.
    pub fn all_pairs(&self) -> Vec<Vec<f32>> {
        let n = self.adj.len();
        let mut rows: Vec<Vec<f32>> = vec![Vec::new(); n];
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n.max(1));
        let chunk = n.div_ceil(threads.max(1));
        crossbeam::thread::scope(|s| {
            for (t, slot) in rows.chunks_mut(chunk).enumerate() {
                let base = t * chunk;
                s.spawn(move |_| {
                    for (i, row) in slot.iter_mut().enumerate() {
                        *row = self.dijkstra((base + i) as u32);
                    }
                });
            }
        })
        .expect("all_pairs worker panicked");
        rows
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(u, _) in &self.adj[v as usize] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.adj.len()
    }
}

/// f32 wrapper that is `Ord`. `total_cmp` matches `partial_cmp` on the
/// non-NaN, non-negative distances Dijkstra produces (the proptest below
/// pins that) and stays a valid total order — instead of panicking — should
/// a poisoned weight ever leak a NaN into the heap.
#[derive(PartialEq, Clone, Copy)]
struct OrdF32(f32);
impl Eq for OrdF32 {}
impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3, 0 -5- 2 -1- 3
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(0, 2, 5.0);
        g.add_edge(2, 3, 1.0);
        g
    }

    #[test]
    fn dijkstra_shortest_paths() {
        let g = diamond();
        let d = g.dijkstra(0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 2.0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1.0);
        let d = g.dijkstra(0);
        assert!(d[2].is_infinite());
        assert!(!g.is_connected());
    }

    #[test]
    fn all_pairs_matches_per_source() {
        let g = diamond();
        for (src, row) in g.all_pairs().iter().enumerate() {
            assert_eq!(row, &g.dijkstra(src as u32));
        }
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let g = diamond();
        let ap = g.all_pairs();
        for (i, row) in ap.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, ap[j][i]);
            }
        }
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 9.0);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.dijkstra(0)[1], 1.0);
    }

    /// Naive single-source shortest paths with a pluggable frontier
    /// comparator, so the same reference pins both the workspace-wide
    /// `total_cmp` convention and the historical `partial_cmp` order.
    fn dijkstra_ref_by(
        g: &Graph,
        src: u32,
        cmp: impl Fn(&f32, &f32) -> std::cmp::Ordering,
    ) -> Vec<f32> {
        let n = g.len();
        let mut dist = vec![f32::INFINITY; n];
        let mut done = vec![false; n];
        dist[src as usize] = 0.0;
        for _ in 0..n {
            let Some(v) = (0..n)
                .filter(|&v| !done[v] && dist[v].is_finite())
                .min_by(|&a, &b| cmp(&dist[a], &dist[b]))
            else {
                break;
            };
            done[v] = true;
            for &(u, w) in g.neighbors(v as u32) {
                let nd = dist[v] + w;
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                }
            }
        }
        dist
    }

    /// The reference implementation, on the workspace's `total_cmp`
    /// comparator convention (PR 5/6 sweep).
    fn dijkstra_ref(g: &Graph, src: u32) -> Vec<f32> {
        dijkstra_ref_by(g, src, f32::total_cmp)
    }

    proptest::proptest! {
        // On NaN-free random graphs (quantized weights make equal-distance
        // ties common), the `total_cmp`-ordered heap, the `total_cmp`
        // reference, and the historical `partial_cmp` selection order all
        // compute bit-identical distances: on NaN-free inputs `total_cmp`
        // and `partial_cmp().unwrap()` are the same total order.
        #[test]
        fn dijkstra_matches_partial_cmp_reference_on_nan_free_graphs(
            edges in proptest::collection::vec((0u32..12, 0u32..12, 1u32..20), 1..40),
        ) {
            let mut g = Graph::with_nodes(12);
            for &(a, b, w) in &edges {
                if a != b {
                    g.add_edge(a, b, w as f32 * 0.5);
                }
            }
            for src in 0..12u32 {
                let fast = g.dijkstra(src);
                let slow = dijkstra_ref(&g, src);
                let historical =
                    dijkstra_ref_by(&g, src, |a, b| a.partial_cmp(b).unwrap());
                let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                proptest::prop_assert_eq!(&bits(&fast), &bits(&slow));
                proptest::prop_assert_eq!(&bits(&slow), &bits(&historical));
            }
        }
    }

    #[test]
    fn connected_detection() {
        let g = diamond();
        assert!(g.is_connected());
        assert!(Graph::with_nodes(0).is_connected());
        assert!(Graph::with_nodes(1).is_connected());
    }
}
