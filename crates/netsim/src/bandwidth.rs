//! Access-link bandwidth model and packet-pair dispersion (§4.2).
//!
//! The paper measures bottleneck-bandwidth estimation accuracy against the
//! Saroiu/Gummadi/Gribble Gnutella trace, which we cannot redistribute.
//! Instead we sample host access links from a mixture of connection classes
//! whose shape follows the published measurement study:
//!
//! * a large cable/DSL population with **asymmetric** links (downlink well
//!   above uplink),
//! * a modem tail, and
//! * a minority of symmetric high-capacity (T1/T3) hosts.
//!
//! The two properties the paper's Figure 5 relies on are preserved: (1)
//! strong heterogeneity, so leafset-max estimation benefits from larger
//! leafsets, and (2) "most hosts' downlinks exceed most hosts' uplinks", so
//! uplink estimates are more accurate than downlink estimates.
//!
//! Packet pair: two back-to-back packets of size S arrive with dispersion
//! T = S / bottleneck; the receiver estimates bottleneck = S / T. On the path
//! x → y the bottleneck under the last-hop assumption is
//! `min(up(x), down(y))`. Measurement noise is one-sided: cross-traffic
//! queuing can only *stretch* the dispersion, so a probe under-estimates the
//! bottleneck by a bounded factor and never over-estimates it — which is why
//! packet-pair tools (and the paper's estimator) keep the **maximum** over
//! repeated probes.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Connection class of a host's access link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BandwidthClass {
    /// Dial-up modem, symmetric ~50 kbps.
    Modem,
    /// ADSL: downlink ≫ uplink.
    Dsl,
    /// Cable: downlink ≫ uplink.
    Cable,
    /// T1: symmetric 1.5 Mbps.
    T1,
    /// T3: symmetric 45 Mbps.
    T3,
}

impl BandwidthClass {
    /// Mixture weights (fractions of the population), Gnutella-like:
    /// mostly cable/DSL, a modem tail, a minority of T1/T3.
    pub const MIX: [(BandwidthClass, f64); 5] = [
        (BandwidthClass::Modem, 0.08),
        (BandwidthClass::Dsl, 0.30),
        (BandwidthClass::Cable, 0.50),
        (BandwidthClass::T1, 0.10),
        (BandwidthClass::T3, 0.02),
    ];

    /// Nominal (uplink, downlink) capacity in kbps for the class.
    pub fn nominal_kbps(self) -> (f64, f64) {
        match self {
            BandwidthClass::Modem => (50.0, 50.0),
            BandwidthClass::Dsl => (256.0, 1500.0),
            BandwidthClass::Cable => (400.0, 3000.0),
            BandwidthClass::T1 => (1544.0, 1544.0),
            BandwidthClass::T3 => (44736.0, 44736.0),
        }
    }
}

/// A host's true access-link capacities.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AccessBandwidth {
    /// Connection class.
    pub class: BandwidthClass,
    /// True uplink capacity, kbps.
    pub up_kbps: f64,
    /// True downlink capacity, kbps.
    pub down_kbps: f64,
}

impl AccessBandwidth {
    /// Sample a host's access bandwidth: pick a class from the mixture, then
    /// jitter both directions by ±20% so no two hosts are exactly equal.
    pub fn sample(rng: &mut impl Rng) -> AccessBandwidth {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        let mut class = BandwidthClass::T3;
        for (c, w) in BandwidthClass::MIX {
            acc += w;
            if u < acc {
                class = c;
                break;
            }
        }
        let (up, down) = class.nominal_kbps();
        let jitter = |rng: &mut dyn rand::RngCore, x: f64| x * (0.8 + 0.4 * rng.random::<f64>());
        AccessBandwidth {
            class,
            up_kbps: jitter(rng, up),
            down_kbps: jitter(rng, down),
        }
    }
}

/// The packet-pair measurement model.
#[derive(Clone, Copy, Debug)]
pub struct PacketPair {
    /// Probe packet size in bytes (the paper pads heartbeats to ~1.5 KB).
    pub packet_bytes: f64,
    /// Bound on the dispersion stretch from cross traffic (e.g. `0.1` → the
    /// observed dispersion is 1.0–1.1× the true one, so the measured
    /// bandwidth is 91–100% of the truth).
    pub noise: f64,
}

impl Default for PacketPair {
    fn default() -> Self {
        PacketPair {
            packet_bytes: 1500.0,
            noise: 0.1,
        }
    }
}

impl PacketPair {
    /// True bottleneck on the path `x → y` under the last-hop assumption:
    /// limited by x's uplink and y's downlink.
    pub fn true_bottleneck_kbps(src: &AccessBandwidth, dst: &AccessBandwidth) -> f64 {
        src.up_kbps.min(dst.down_kbps)
    }

    /// Simulate one packet-pair probe from `src` to `dst`, returning the
    /// receiver's bandwidth estimate in kbps.
    pub fn measure_kbps(
        &self,
        src: &AccessBandwidth,
        dst: &AccessBandwidth,
        rng: &mut impl Rng,
    ) -> f64 {
        let truth = Self::true_bottleneck_kbps(src, dst);
        // Dispersion T = S / B; cross traffic stretches it by up to `noise`.
        let dispersion_ms = self.packet_bytes * 8.0 / truth; // kbps → ms for S in bytes*8 bits / kbps
        let measured_dispersion = dispersion_ms * (1.0 + self.noise * rng.random::<f64>());
        self.packet_bytes * 8.0 / measured_dispersion
    }

    /// The dispersion (ms) the receiver observes for a bottleneck of
    /// `bw_kbps` — exposed so protocol simulations can schedule the second
    /// packet's arrival.
    pub fn dispersion_ms(&self, bw_kbps: f64) -> f64 {
        self.packet_bytes * 8.0 / bw_kbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mixture_weights_sum_to_one() {
        let total: f64 = BandwidthClass::MIX.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_mixture_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut cable = 0;
        for _ in 0..n {
            if AccessBandwidth::sample(&mut rng).class == BandwidthClass::Cable {
                cable += 1;
            }
        }
        let frac = cable as f64 / n as f64;
        assert!((frac - 0.50).abs() < 0.01, "cable fraction {frac}");
    }

    #[test]
    fn downlinks_dominate_uplinks_in_population() {
        // The Gnutella-shape property Figure 5 relies on: most hosts'
        // downlink exceeds most (other) hosts' uplink.
        let mut rng = StdRng::seed_from_u64(2);
        let hosts: Vec<AccessBandwidth> = (0..500)
            .map(|_| AccessBandwidth::sample(&mut rng))
            .collect();
        let mut dominate = 0u64;
        let mut total = 0u64;
        for a in &hosts {
            for b in &hosts {
                total += 1;
                if a.down_kbps >= b.up_kbps {
                    dominate += 1;
                }
            }
        }
        let frac = dominate as f64 / total as f64;
        assert!(frac > 0.7, "downlink-dominance fraction too low: {frac}");
    }

    #[test]
    fn packet_pair_noise_is_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let pp = PacketPair::default();
        let a = AccessBandwidth::sample(&mut rng);
        let b = AccessBandwidth::sample(&mut rng);
        let truth = PacketPair::true_bottleneck_kbps(&a, &b);
        for _ in 0..100 {
            let m = pp.measure_kbps(&a, &b, &mut rng);
            // One-sided: never above the truth, at worst 1/1.1 of it.
            assert!(m <= truth * (1.0 + 1e-12), "overestimate {m} > {truth}");
            assert!(m >= truth / 1.1 - 1e-9, "underestimate too deep: {m}");
        }
    }

    #[test]
    fn noiseless_packet_pair_is_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        let pp = PacketPair {
            noise: 0.0,
            ..Default::default()
        };
        let a = AccessBandwidth::sample(&mut rng);
        let b = AccessBandwidth::sample(&mut rng);
        let truth = PacketPair::true_bottleneck_kbps(&a, &b);
        let m = pp.measure_kbps(&a, &b, &mut rng);
        assert!((m - truth).abs() / truth < 1e-12);
    }

    #[test]
    fn dispersion_inverts_bandwidth() {
        let pp = PacketPair::default();
        let t = pp.dispersion_ms(1000.0);
        // 1500 bytes at 1 Mbps = 12 ms.
        assert!((t - 12.0).abs() < 1e-9);
    }
}
