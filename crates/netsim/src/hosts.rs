//! End hosts: attachment to stub routers, last-hop latencies, degree bounds
//! and access bandwidths.
//!
//! The paper appends 1200 end systems to stub routers uniformly at random,
//! with a last-hop latency drawn from 3–8 ms. Each host also carries:
//!
//! * a **degree bound** — the number of simultaneous overlay connections the
//!   host can serve, distributed P(degree = i+1) = 2⁻ⁱ for i = 1..7 and
//!   P(degree = 9) = 2⁻⁷ (§5.2: half the hosts can only hold 2 connections,
//!   higher capacities decay exponentially);
//! * an **access bandwidth** (up/down), sampled from the synthetic
//!   Gnutella-like mixture in [`crate::bandwidth`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::bandwidth::AccessBandwidth;
use crate::topology::{RouterId, RouterNet};

/// Identifier of an end host.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl From<u32> for HostId {
    fn from(v: u32) -> Self {
        HostId(v)
    }
}

impl HostId {
    /// The id as a usize index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The paper's degree-bound distribution: P(degree = i+1) = 2⁻ⁱ for
/// i = 1..=7, and the leftover mass 2⁻⁷ on degree 9. Degrees span 2..=9 and
/// half of all hosts get degree 2.
#[derive(Clone, Copy, Debug, Default)]
pub struct DegreeDistribution;

impl DegreeDistribution {
    /// Sample one degree bound.
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let u: f64 = rng.random();
        // CDF over i=1..=7 with mass 2^-i at degree i+1; remainder -> 9.
        let mut acc = 0.0;
        for i in 1..=7u32 {
            acc += 0.5f64.powi(i as i32);
            if u < acc {
                return i + 1;
            }
        }
        9
    }
}

/// One end host's static attributes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Host {
    /// The stub router this host hangs off.
    pub router: RouterId,
    /// Last-hop latency host <-> router, ms.
    pub last_hop_ms: f64,
    /// Degree bound: maximum simultaneous overlay connections.
    pub degree_bound: u32,
    /// Access-link bandwidth.
    pub bandwidth: AccessBandwidth,
}

/// All end hosts of a generated network.
#[derive(Clone)]
pub struct HostSet {
    hosts: Vec<Host>,
}

impl HostSet {
    /// Attach `n` hosts to random stub routers of `net`.
    pub fn attach(net: &RouterNet, n: usize, last_hop_ms: (f64, f64), seed: u64) -> HostSet {
        assert!(last_hop_ms.0 <= last_hop_ms.1);
        let mut rng = StdRng::seed_from_u64(seed);
        let stubs: Vec<RouterId> = net.stub_routers().collect();
        assert!(!stubs.is_empty(), "no stub routers to attach hosts to");
        let dd = DegreeDistribution;
        let hosts = (0..n)
            .map(|_| {
                let router = stubs[rng.random_range(0..stubs.len())];
                let last_hop = if last_hop_ms.0 == last_hop_ms.1 {
                    last_hop_ms.0
                } else {
                    rng.random_range(last_hop_ms.0..last_hop_ms.1)
                };
                Host {
                    router,
                    last_hop_ms: last_hop,
                    degree_bound: dd.sample(&mut rng),
                    bandwidth: AccessBandwidth::sample(&mut rng),
                }
            })
            .collect();
        HostSet { hosts }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether there are no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// A host by id.
    pub fn get(&self, id: HostId) -> &Host {
        &self.hosts[id.idx()]
    }

    /// All hosts, indexed by `HostId`.
    pub fn iter(&self) -> impl Iterator<Item = (HostId, &Host)> {
        self.hosts
            .iter()
            .enumerate()
            .map(|(i, h)| (HostId(i as u32), h))
    }

    /// All host ids.
    pub fn ids(&self) -> impl Iterator<Item = HostId> {
        (0..self.hosts.len() as u32).map(HostId)
    }

    /// Degree bound of a host.
    pub fn degree_bound(&self, id: HostId) -> u32 {
        self.hosts[id.idx()].degree_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TransitStubConfig;

    fn net() -> RouterNet {
        RouterNet::generate(&TransitStubConfig::default(), 11)
    }

    #[test]
    fn hosts_attach_to_stub_routers_only() {
        let net = net();
        let hs = HostSet::attach(&net, 300, (3.0, 8.0), 5);
        for (_, h) in hs.iter() {
            assert!(
                (h.router.0 as usize) >= net.num_transit,
                "host attached to transit router"
            );
        }
    }

    #[test]
    fn last_hop_in_range() {
        let net = net();
        let hs = HostSet::attach(&net, 500, (3.0, 8.0), 5);
        for (_, h) in hs.iter() {
            assert!((3.0..8.0).contains(&h.last_hop_ms));
        }
    }

    #[test]
    fn degree_distribution_shape() {
        // Half the hosts must have degree 2, and the mean of the paper
        // distribution is sum_{i=1..7} 2^-i (i+1) + 2^-7 * 9 = 3.0234...
        let mut rng = StdRng::seed_from_u64(4);
        let dd = DegreeDistribution;
        let n = 200_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            let d = dd.sample(&mut rng);
            assert!((2..=9).contains(&d));
            counts[d as usize] += 1;
        }
        let frac2 = counts[2] as f64 / n as f64;
        assert!((frac2 - 0.5).abs() < 0.01, "P(degree=2) = {frac2}");
        let frac3 = counts[3] as f64 / n as f64;
        assert!((frac3 - 0.25).abs() < 0.01, "P(degree=3) = {frac3}");
        // Degree 8 and 9 both carry 2^-7 mass.
        let frac9 = counts[9] as f64 / n as f64;
        assert!((frac9 - 1.0 / 128.0).abs() < 0.005, "P(degree=9) = {frac9}");
    }

    #[test]
    fn fixed_last_hop_range_allowed() {
        let net = net();
        let hs = HostSet::attach(&net, 10, (5.0, 5.0), 1);
        for (_, h) in hs.iter() {
            assert_eq!(h.last_hop_ms, 5.0);
        }
    }

    #[test]
    fn attach_is_deterministic() {
        let net = net();
        let a = HostSet::attach(&net, 100, (3.0, 8.0), 77);
        let b = HostSet::attach(&net, 100, (3.0, 8.0), 77);
        for (ha, hb) in a.hosts.iter().zip(&b.hosts) {
            assert_eq!(ha.router, hb.router);
            assert_eq!(ha.degree_bound, hb.degree_bound);
            assert_eq!(ha.last_hop_ms, hb.last_hop_ms);
        }
    }
}
