//! Property tests over the topology generator: any sane parameterization
//! must produce a connected transit–stub network with exact dimensions and
//! a metric-like host latency oracle.

use netsim::{HostId, Network, NetworkConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_generated_networks_are_well_formed(
        td in 1usize..4,
        tpd in 1usize..5,
        sdt in 1usize..4,
        rps in 1usize..5,
        hosts in 2usize..60,
        seed: u64,
    ) {
        let cfg = NetworkConfig {
            transit_domains: td,
            transit_per_domain: tpd,
            stub_domains_per_transit: sdt,
            routers_per_stub: rps,
            num_hosts: hosts,
            ..NetworkConfig::default()
        };
        let net = Network::generate(&cfg, seed);
        // Dimensions.
        prop_assert_eq!(net.routers.len(), cfg.num_routers());
        prop_assert_eq!(net.routers.num_transit, td * tpd);
        prop_assert_eq!(net.num_hosts(), hosts);
        // Connectivity.
        prop_assert!(net.routers.graph.is_connected());
        // The latency oracle is a symmetric premetric with zero diagonal.
        for a in (0..hosts as u32).step_by(7) {
            let a = HostId(a);
            prop_assert_eq!(net.latency_ms(a, a), 0.0);
            for b in (0..hosts as u32).step_by(5) {
                let b = HostId(b);
                let ab = net.latency_ms(a, b);
                prop_assert_eq!(ab, net.latency_ms(b, a));
                if a != b {
                    // Two last hops at ≥3 ms each.
                    prop_assert!(ab >= 6.0, "implausibly low latency {}", ab);
                }
            }
        }
        // Degree bounds in the paper's range; bandwidths positive and
        // within the class nominal ±20% jitter.
        for (_, h) in net.hosts.iter() {
            prop_assert!((2..=9).contains(&h.degree_bound));
            let (nom_up, nom_down) = h.bandwidth.class.nominal_kbps();
            prop_assert!((nom_up * 0.8..=nom_up * 1.2).contains(&h.bandwidth.up_kbps));
            prop_assert!((nom_down * 0.8..=nom_down * 1.2).contains(&h.bandwidth.down_kbps));
        }
    }

    #[test]
    fn prop_triangle_inequality_over_random_triples(
        hosts in 10usize..40,
        seed: u64,
        triples in proptest::collection::vec((0u32..40, 0u32..40, 0u32..40), 1..20),
    ) {
        let cfg = NetworkConfig {
            transit_domains: 2,
            transit_per_domain: 2,
            stub_domains_per_transit: 2,
            routers_per_stub: 2,
            num_hosts: hosts,
            ..NetworkConfig::default()
        };
        let net = Network::generate(&cfg, seed);
        let n = hosts as u32;
        for (a, b, c) in triples {
            let (a, b, c) = (HostId(a % n), HostId(b % n), HostId(c % n));
            let lhs = net.latency_ms(a, c);
            let rhs = net.latency_ms(a, b) + net.latency_ms(b, c);
            prop_assert!(lhs <= rhs + 1e-3, "triangle violated: {} > {}", lhs, rhs);
        }
    }
}
