//! Multipath redundancy: k degree-disjoint trees per session.
//!
//! *Multipath Approach for Reliability in Query Network based Overlaid
//! Multicasting* motivates sending one stream down k trees at once: a
//! member keeps receiving as long as its root path survives in **any**
//! tree, and a session whose primary tree loses an interior node fails
//! over to the best surviving tree within one detection round instead of
//! waiting out a repair.
//!
//! The pool makes the redundancy cheap (helpers absorb the extra fan-out)
//! but the trees must be **degree-disjoint**: tree i may not consume the
//! same reserved degree units as tree j on any shared host. This module is
//! the pure-planning half of that story — residual-capacity views,
//! disjointness checking, surviving-tree selection, and per-round delivery
//! accounting — all over plain [`MulticastTree`]s so the `pool` crate can
//! layer the reservation/market mechanics on top.

use std::collections::HashMap;

use netsim::HostId;

use crate::tree::MulticastTree;

/// Total tree degree per host summed across `trees` — the denominator of
/// every disjointness and fan-out-cap argument. A host appearing in three
/// trees contributes its per-tree degree (children + parent link) three
/// times.
pub fn degree_totals(trees: &[MulticastTree]) -> HashMap<HostId, u32> {
    let mut used: HashMap<HostId, u32> = HashMap::new();
    for t in trees {
        for &h in t.hosts() {
            *used.entry(h).or_default() += t.degree(h);
        }
    }
    used
}

/// Total **fan-out** per host summed across `trees`: children only, parent
/// links excluded. Fan-out is what a host's uplink pays for (each child is
/// one outgoing stream copy; the parent link is downlink), so this is the
/// quantity the access-bandwidth cap bounds.
pub fn fanout_totals(trees: &[MulticastTree]) -> HashMap<HostId, u32> {
    let mut used: HashMap<HostId, u32> = HashMap::new();
    for t in trees {
        for &h in t.hosts() {
            *used.entry(h).or_default() += t.child_count(h) as u32;
        }
    }
    used
}

/// A kind of cross-tree capacity violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DisjointnessKind {
    /// The session's trees use more degree units on a host than the session
    /// has reserved there — some unit is double-counted across trees.
    ReservationOverrun,
    /// The host's total cross-tree **fan-out** (children summed across
    /// trees — the uplink's stream copies) exceeds its access-bandwidth
    /// cap.
    FanoutCapExceeded,
}

/// One cross-tree capacity violation on one host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DisjointnessViolation {
    /// The offending host.
    pub host: HostId,
    /// Units the session's trees use on it, summed across trees: degree
    /// units for a [`DisjointnessKind::ReservationOverrun`], children for a
    /// [`DisjointnessKind::FanoutCapExceeded`].
    pub used: u32,
    /// The limit that was exceeded (reserved units or the fan-out cap).
    pub limit: u32,
    /// Which limit was exceeded.
    pub kind: DisjointnessKind,
}

/// Check that a session's trees are degree-disjoint and within the
/// per-host fan-out cap: for every host, the summed tree **degree**
/// (children + parent links) must not exceed `reserved(h)` — the degree
/// units the session actually holds there; exceeding it means two trees
/// double-count a unit — and the summed tree **fan-out** (children only)
/// must not exceed `cap(h)`, the access-bandwidth estimate of how many
/// outgoing stream copies the uplink sustains. Returns every violation, in
/// host order; an empty vec is a clean plan.
pub fn check_disjointness(
    trees: &[MulticastTree],
    reserved: impl Fn(HostId) -> u32,
    cap: impl Fn(HostId) -> u32,
) -> Vec<DisjointnessViolation> {
    let used = degree_totals(trees);
    let fanout = fanout_totals(trees);
    let mut hosts: Vec<HostId> = used.keys().copied().collect();
    hosts.sort_unstable();
    let mut out = Vec::new();
    for h in hosts {
        let u = used[&h];
        let r = reserved(h);
        if u > r {
            out.push(DisjointnessViolation {
                host: h,
                used: u,
                limit: r,
                kind: DisjointnessKind::ReservationOverrun,
            });
        }
        let f = fanout[&h];
        let c = cap(h);
        if f > c {
            out.push(DisjointnessViolation {
                host: h,
                used: f,
                limit: c,
                kind: DisjointnessKind::FanoutCapExceeded,
            });
        }
    }
    out
}

/// Whether every host of `tree` is up — an intact tree delivers to all of
/// its members.
pub fn tree_intact(tree: &MulticastTree, alive: impl Fn(HostId) -> bool) -> bool {
    tree.hosts().iter().all(|&h| alive(h))
}

/// The best surviving tree: among the intact trees, the one of minimum
/// `(max_height, index)` — deterministic, and biased toward the earlier
/// (primary-first) tree on equal heights. `None` when every tree has lost
/// a host.
pub fn best_surviving(trees: &[MulticastTree], alive: impl Fn(HostId) -> bool) -> Option<usize> {
    trees
        .iter()
        .enumerate()
        .filter(|(_, t)| tree_intact(t, &alive))
        .min_by(|a, b| {
            a.1.max_height()
                .total_cmp(&b.1.max_height())
                .then(a.0.cmp(&b.0))
        })
        .map(|(i, _)| i)
}

/// The members `tree` currently delivers to: every member (root excluded —
/// the source doesn't deliver to itself) whose entire root path is alive.
/// Hosts outside `members` (helpers) relay but don't count.
pub fn delivered_members(
    tree: &MulticastTree,
    members: &[HostId],
    alive: &impl Fn(HostId) -> bool,
) -> Vec<HostId> {
    let root = tree.root();
    if !alive(root) {
        return Vec::new();
    }
    // Walk down from the root, pruning at the first dead host.
    let mut reachable: Vec<HostId> = Vec::with_capacity(tree.len());
    let mut stack = vec![root];
    while let Some(h) = stack.pop() {
        reachable.push(h);
        for c in tree.children_of(h) {
            if alive(c) {
                stack.push(c);
            }
        }
    }
    let set: std::collections::HashSet<HostId> = reachable.into_iter().collect();
    members
        .iter()
        .copied()
        .filter(|&m| m != root && set.contains(&m))
        .collect()
}

/// Per-round delivery ratio of a session running `trees` redundantly: the
/// fraction of live non-root members receiving through **at least one**
/// tree. A session with no live non-root members (nothing left to deliver
/// to) counts as fully delivering; a dead root delivers to nobody.
pub fn delivery_ratio(
    trees: &[MulticastTree],
    members: &[HostId],
    alive: impl Fn(HostId) -> bool,
) -> f64 {
    let root = match trees.first() {
        Some(t) => t.root(),
        None => return 1.0,
    };
    let live: Vec<HostId> = members
        .iter()
        .copied()
        .filter(|&m| m != root && alive(m))
        .collect();
    if live.is_empty() {
        return 1.0;
    }
    let mut covered: std::collections::HashSet<HostId> = std::collections::HashSet::new();
    for t in trees {
        covered.extend(delivered_members(t, &live, &alive));
    }
    covered.len() as f64 / live.len() as f64
}

/// The members `tree` delivers to under per-edge message loss: a member
/// receives only if every host *and every edge* on its root path is up
/// this round. `edge_ok(parent, child)` samples one edge's fate; it must
/// be deterministic within a round so every tree sees the same losses.
pub fn delivered_members_lossy(
    tree: &MulticastTree,
    members: &[HostId],
    alive: &impl Fn(HostId) -> bool,
    edge_ok: &mut impl FnMut(HostId, HostId) -> bool,
) -> Vec<HostId> {
    let root = tree.root();
    if !alive(root) {
        return Vec::new();
    }
    let mut reachable: Vec<HostId> = Vec::with_capacity(tree.len());
    let mut stack = vec![root];
    while let Some(h) = stack.pop() {
        reachable.push(h);
        for c in tree.children_of(h) {
            if alive(c) && edge_ok(h, c) {
                stack.push(c);
            }
        }
    }
    let set: std::collections::HashSet<HostId> = reachable.into_iter().collect();
    members
        .iter()
        .copied()
        .filter(|&m| m != root && set.contains(&m))
        .collect()
}

/// [`delivery_ratio`] under per-edge message loss: the fraction of live
/// non-root members receiving through at least one tree when each tree
/// edge independently drops per `edge_ok`. Redundant trees shine here —
/// a member survives a lost edge in one tree if another tree still
/// reaches it.
pub fn delivery_ratio_lossy(
    trees: &[MulticastTree],
    members: &[HostId],
    alive: impl Fn(HostId) -> bool,
    mut edge_ok: impl FnMut(HostId, HostId) -> bool,
) -> f64 {
    let root = match trees.first() {
        Some(t) => t.root(),
        None => return 1.0,
    };
    let live: Vec<HostId> = members
        .iter()
        .copied()
        .filter(|&m| m != root && alive(m))
        .collect();
    if live.is_empty() {
        return 1.0;
    }
    let mut covered: std::collections::HashSet<HostId> = std::collections::HashSet::new();
    for t in trees {
        covered.extend(delivered_members_lossy(t, &live, &alive, &mut edge_ok));
    }
    covered.len() as f64 / live.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root 0 → {1, 2}, 2 → 3.
    fn chain() -> MulticastTree {
        let mut t = MulticastTree::new(HostId(0));
        t.attach(HostId(1), HostId(0), 10.0);
        t.attach(HostId(2), HostId(0), 10.0);
        t.attach(HostId(3), HostId(2), 10.0);
        t
    }

    /// root 0 → 4 (helper), 4 → {1, 2, 3}.
    fn via_helper() -> MulticastTree {
        let mut t = MulticastTree::new(HostId(0));
        t.attach(HostId(4), HostId(0), 5.0);
        t.attach(HostId(1), HostId(4), 5.0);
        t.attach(HostId(2), HostId(4), 5.0);
        t.attach(HostId(3), HostId(4), 5.0);
        t
    }

    fn members() -> Vec<HostId> {
        vec![HostId(0), HostId(1), HostId(2), HostId(3)]
    }

    #[test]
    fn degree_totals_sum_across_trees() {
        let used = degree_totals(&[chain(), via_helper()]);
        // Root: 2 children in the chain, 1 in the helper tree.
        assert_eq!(used[&HostId(0)], 3);
        // Host 2: parent+child in the chain, parent link in the helper tree.
        assert_eq!(used[&HostId(2)], 3);
        // The helper appears in one tree only: parent link + 3 children.
        assert_eq!(used[&HostId(4)], 4);
        // Fan-out counts children only: the parent links drop out.
        let fanout = fanout_totals(&[chain(), via_helper()]);
        assert_eq!(fanout[&HostId(0)], 3);
        assert_eq!(fanout[&HostId(2)], 1);
        assert_eq!(fanout[&HostId(4)], 3);
        assert_eq!(fanout[&HostId(1)], 0);
    }

    #[test]
    fn disjointness_flags_overruns_and_cap_breaches() {
        let trees = [chain(), via_helper()];
        // Generous reservations and caps: clean.
        assert!(check_disjointness(&trees, |_| 10, |_| 10).is_empty());
        // Root reserved only 2 units but uses 3 → overrun.
        let v = check_disjointness(&trees, |h| if h == HostId(0) { 2 } else { 10 }, |_| 10);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].host, HostId(0));
        assert_eq!(v[0].kind, DisjointnessKind::ReservationOverrun);
        assert_eq!((v[0].used, v[0].limit), (3, 2));
        // Fan-out cap of 2 everywhere: the root and the helper (3 children
        // each across trees) breach; pure parent links don't count, so the
        // cap-3 case is clean even though the helper's *degree* is 4.
        assert!(check_disjointness(&trees, |_| 10, |_| 3).is_empty());
        let v = check_disjointness(&trees, |_| 10, |_| 2);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].host, HostId(0));
        assert_eq!(v[0].kind, DisjointnessKind::FanoutCapExceeded);
        assert_eq!((v[0].used, v[0].limit), (3, 2));
        assert_eq!(v[1].host, HostId(4));
    }

    #[test]
    fn best_surviving_prefers_low_height_then_low_index() {
        let trees = [chain(), via_helper()]; // heights 20, 10
        assert_eq!(best_surviving(&trees, |_| true), Some(1));
        // Kill the helper: only the chain survives.
        assert_eq!(best_surviving(&trees, |h| h != HostId(4)), Some(0));
        // Kill host 2 as well: nothing survives.
        assert_eq!(
            best_surviving(&trees, |h| h != HostId(4) && h != HostId(2)),
            None
        );
    }

    #[test]
    fn delivery_prunes_dead_subtrees_and_unions_trees() {
        let m = members();
        // Chain alone, host 2 dead: member 3 is cut off along with 2.
        let dead2 = |h: HostId| h != HostId(2);
        assert_eq!(delivery_ratio(&[chain()], &m, dead2), 0.5); // only 1 of {1, 3}
                                                                // Adding the helper tree restores 3 (and 1): full delivery among
                                                                // the live members (2 itself is dead, so it leaves the denominator).
        assert_eq!(delivery_ratio(&[chain(), via_helper()], &m, dead2), 1.0);
        // Dead helper kills the second tree entirely.
        let dead4 = |h: HostId| h != HostId(4);
        assert_eq!(delivery_ratio(&[via_helper()], &m, dead4), 0.0);
        // Dead root delivers nothing.
        assert_eq!(delivery_ratio(&[chain()], &m, |h| h != HostId(0)), 0.0);
        // All members intact: 1.0.
        assert_eq!(delivery_ratio(&[chain()], &m, |_| true), 1.0);
    }

    #[test]
    fn lossy_delivery_prunes_dropped_edges_but_unions_trees() {
        let m = members();
        // Losing the chain's 0→2 edge cuts members 2 and 3 off.
        let drop02 = |a: HostId, b: HostId| (a, b) != (HostId(0), HostId(2));
        let r = delivery_ratio_lossy(&[chain()], &m, |_| true, drop02);
        assert!((r - 1.0 / 3.0).abs() < 1e-12); // only 1 of {1, 2, 3}
                                                // The helper tree routes around the lost edge: full delivery.
        let r2 = delivery_ratio_lossy(&[chain(), via_helper()], &m, |_| true, drop02);
        assert_eq!(r2, 1.0);
        // No loss at all degenerates to the host-only ratio.
        let r3 = delivery_ratio_lossy(&[chain()], &m, |_| true, |_, _| true);
        assert_eq!(r3, delivery_ratio(&[chain()], &m, |_| true));
    }

    #[test]
    fn intactness_is_all_hosts_alive() {
        assert!(tree_intact(&via_helper(), |_| true));
        // A dead helper breaks the tree even though it is not a member.
        assert!(!tree_intact(&via_helper(), |h| h != HostId(4)));
    }
}
