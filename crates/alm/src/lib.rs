#![warn(missing_docs)]

//! # alm — degree-bounded minimum-height multicast trees (§5)
//!
//! The paper's QoS objective for application-level multicast:
//!
//! > **DB-MHT.** Given an undirected complete graph G(V,E), a degree bound
//! > d_bound(v) for each v ∈ V and a latency l(e) for each edge, find a
//! > spanning tree T such that every node respects its degree bound and the
//! > height of T (aggregated latency from the root) is minimized.
//!
//! DB-MHT is NP-complete; the paper builds on the AMCast greedy heuristic
//! and improves it with resources drawn from the P2P pool:
//!
//! * [`amcast()`] — the O(N³) greedy baseline (Figure 6 without the dashed
//!   box): grow the tree from the root, always absorbing the pending node
//!   of minimum tentative height;
//! * [`critical()`] — the **critical-node** algorithm (the dashed box):
//!   when a parent's free degree drops to one, recruit a nearby high-degree
//!   helper from the pool to take its place as the hub;
//! * [`adjust()`] — the post-pass of heuristic moves (re-parent the highest
//!   node / swap it with another leaf / swap subtrees);
//! * [`bound`] — the theoretical improvement ceiling (a root of infinite
//!   degree reaching every member directly);
//! * [`tree`] — the multicast-tree data structure and its invariants.
//!
//! Every algorithm is generic over [`netsim::LatencyModel`], so each runs
//! both with oracle latencies (the paper's *Critical* rows) and with
//! coordinate estimates (*Leafset* rows) — same code, different model.

pub mod adjust;
pub mod amcast;
pub mod bound;
pub mod critical;
pub mod dynamic;
pub mod metrics;
pub mod multipath;
pub mod problem;
pub mod staged;
pub mod tree;

pub use adjust::adjust;
pub use amcast::{amcast, amcast_reference, try_amcast};
pub use bound::improvement_upper_bound;
pub use critical::{critical, critical_reference, try_critical, HelperPool, HelperStrategy};
pub use problem::{improvement, Problem};
pub use staged::{staged_plan, try_staged_plan};
pub use tree::MulticastTree;
