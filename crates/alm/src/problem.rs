//! Problem definition and the paper's improvement metric.

use netsim::{HostId, LatencyModel};

use crate::tree::MulticastTree;

/// One DB-MHT instance: a session's member set, degree bounds, and the
/// latency model planning runs against.
///
/// `latency` may be the oracle (the paper's *Critical* family) or a
/// coordinate store (*Leafset* family); `dbound` typically reads the
/// underlay's per-host degree bound, or — in the multi-session setting —
/// the *free* degree visible at this session's priority.
pub struct Problem<'a, L: LatencyModel, D: Fn(HostId) -> u32> {
    /// The session root (source of the multicast).
    pub root: HostId,
    /// All members including the root, M(s).
    pub members: Vec<HostId>,
    /// The latency model used for planning.
    pub latency: &'a L,
    /// Degree bound per host.
    pub dbound: D,
}

impl<'a, L: LatencyModel, D: Fn(HostId) -> u32> Problem<'a, L, D> {
    /// Create an instance. The root is inserted into `members` if absent.
    ///
    /// # Panics
    /// If `members` contains duplicates, or any member has a degree bound
    /// below 1 (it could not even hold its parent link).
    pub fn new(root: HostId, mut members: Vec<HostId>, latency: &'a L, dbound: D) -> Self {
        if !members.contains(&root) {
            members.insert(0, root);
        }
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "duplicate members");
        for &m in &members {
            assert!(
                dbound(m) >= 1,
                "member {m:?} has degree bound 0 — cannot join any tree"
            );
        }
        Problem {
            root,
            members,
            latency,
            dbound,
        }
    }

    /// Free capacity of `h` for additional children in `tree`: the degree
    /// bound minus the parent link (non-root) minus current children.
    pub fn free_child_slots(&self, tree: &MulticastTree, h: HostId) -> u32 {
        let used = tree.degree(h);
        (self.dbound)(h).saturating_sub(used)
    }
}

/// The paper's headline metric:
/// `improvement = (H_AMCast − H_alg) / H_AMCast`.
pub fn improvement(h_amcast: f64, h_alg: f64) -> f64 {
    if h_amcast <= 0.0 {
        0.0
    } else {
        (h_amcast - h_alg) / h_amcast
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Uniform;
    impl LatencyModel for Uniform {
        fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
            if a == b {
                0.0
            } else {
                10.0
            }
        }
        fn num_hosts(&self) -> usize {
            10
        }
    }

    #[test]
    fn root_added_if_missing() {
        let p = Problem::new(HostId(0), vec![HostId(1), HostId(2)], &Uniform, |_| 4);
        assert!(p.members.contains(&HostId(0)));
        assert_eq!(p.members.len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_rejected() {
        Problem::new(HostId(0), vec![HostId(1), HostId(1)], &Uniform, |_| 4);
    }

    #[test]
    #[should_panic(expected = "degree bound 0")]
    fn zero_degree_member_rejected() {
        Problem::new(HostId(0), vec![HostId(1)], &Uniform, |h| {
            if h == HostId(1) {
                0
            } else {
                4
            }
        });
    }

    #[test]
    fn free_slots_account_for_parent_link() {
        let p = Problem::new(HostId(0), vec![HostId(1)], &Uniform, |_| 3);
        let mut t = MulticastTree::new(HostId(0));
        t.attach(HostId(1), HostId(0), 10.0);
        // Root: bound 3, one child, no parent → 2 free.
        assert_eq!(p.free_child_slots(&t, HostId(0)), 2);
        // Leaf: bound 3, parent link → 2 free.
        assert_eq!(p.free_child_slots(&t, HostId(1)), 2);
    }

    #[test]
    fn improvement_metric() {
        assert_eq!(improvement(100.0, 70.0), 0.3);
        assert_eq!(improvement(100.0, 100.0), 0.0);
        assert_eq!(improvement(0.0, 0.0), 0.0);
        assert!(improvement(100.0, 130.0) < 0.0); // regressions are visible
    }
}
