//! Tree adjustment: the paper's post-pass of heuristic moves.
//!
//! Footnote 2 of §5.2: "adjust the tree with a set of heuristic moves:
//! (a) find a new parent for the highest node; (b) swap the highest node
//! with another leaf node; (c) swap the sub-tree whose root is the parent
//! of the highest node with another sub-tree."
//!
//! Each iteration evaluates all three move families against the current
//! highest node and applies the single best height-reducing move; the loop
//! stops when no move improves the tree (or after a safety cap). On its own
//! the pass buys ~5% over AMCast; combined with coordinate-estimated
//! planning (*Leafset*) it is "remarkably effective" because it repairs the
//! errors the embedding introduced.

use netsim::{HostId, LatencyModel};

use crate::problem::Problem;
use crate::tree::MulticastTree;

/// Hard cap on adjustment iterations (each strictly improves the height, so
/// this only guards against degenerate float plateaus).
const MAX_PASSES: usize = 200;

/// Minimum height gain (ms) for a move to count as an improvement.
const EPS: f64 = 1e-6;

/// Apply adjustment moves to `tree` until none improves its height.
/// Returns the number of moves applied.
pub fn adjust<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &mut MulticastTree,
) -> usize {
    let mut applied = 0;
    for _ in 0..MAX_PASSES {
        if !improve_once(p, tree) {
            break;
        }
        applied += 1;
    }
    applied
}

/// Evaluate all three move families; apply the best improving one. Returns
/// whether a move was applied. One iteration of [`adjust`]'s loop.
pub fn improve_once<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &mut MulticastTree,
) -> bool {
    // `total_cmp` orders the candidate heights: identical to `partial_cmp`
    // for the non-NaN, non-negative sums produced here (the proptest below
    // pins that), and well-defined instead of panicking if a poisoned
    // latency model ever leaks a NaN through.
    improve_once_by(p, tree, f64::total_cmp)
}

/// [`improve_once`] with the final-pick comparator injected — lets the
/// proptest run the `total_cmp` path against the historical `partial_cmp`
/// path on the same inputs.
fn improve_once_by<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &mut MulticastTree,
    cmp: impl Fn(&f64, &f64) -> std::cmp::Ordering,
) -> bool {
    let before = tree.max_height();
    if tree.len() < 3 || before <= 0.0 {
        return false;
    }
    let v = tree.highest(); // always a leaf: heights grow along edges

    // (a) Re-parent the highest node: best new parent with free capacity.
    let mut best_a: Option<(f64, HostId)> = None;
    for &w in tree.hosts() {
        if w == v || Some(w) == tree.parent_of(v) || p.free_child_slots(tree, w) == 0 {
            continue;
        }
        let nh = tree.height_of(w) + p.latency.latency_ms(w, v);
        if nh < before - EPS && best_a.is_none_or(|(bh, _)| nh < bh) {
            best_a = Some((nh, w));
        }
    }

    // (b) Swap the highest node with another leaf.
    let mut best_b: Option<(f64, HostId)> = None;
    let pv = tree.parent_of(v).expect("highest is not the root here");
    for &u in tree.hosts() {
        if u == v || u == pv || tree.child_count(u) > 0 {
            continue;
        }
        let pu = tree.parent_of(u).expect("leaf has a parent");
        if pu == v {
            continue;
        }
        let nv = tree.height_of(pu) + p.latency.latency_ms(pu, v);
        let nu = tree.height_of(pv) + p.latency.latency_ms(pv, u);
        let worst = nv.max(nu);
        if worst < before - EPS && best_b.is_none_or(|(bh, _)| worst < bh) {
            best_b = Some((worst, u));
        }
    }

    // (c) Swap the subtree rooted at the highest node's parent with another
    // subtree. Evaluated by performing the swap and measuring; reverted if
    // it does not win the comparison below.
    let mut best_c: Option<(f64, HostId)> = None;
    if tree.parent_of(pv).is_some() {
        let candidates: Vec<HostId> = tree
            .hosts()
            .iter()
            .copied()
            .filter(|&q| {
                q != pv
                    && tree.parent_of(q).is_some()
                    && tree.parent_of(q) != Some(pv)
                    && tree.parent_of(pv) != Some(q)
                    && !tree.is_ancestor(q, pv)
                    && !tree.is_ancestor(pv, q)
            })
            .collect();
        for q in candidates {
            tree.swap_nodes(pv, q, p.latency);
            let h = tree.max_height();
            tree.swap_nodes(pv, q, p.latency); // revert
            if h < before - EPS && best_c.is_none_or(|(bh, _)| h < bh) {
                best_c = Some((h, q));
            }
        }
    }

    // Apply the best of the three.
    let pick = [
        best_a.map(|(h, w)| (h, 0u8, w)),
        best_b.map(|(h, u)| (h, 1u8, u)),
        best_c.map(|(h, q)| (h, 2u8, q)),
    ]
    .into_iter()
    .flatten()
    .min_by(|a, b| cmp(&a.0, &b.0).then(a.1.cmp(&b.1)));

    match pick {
        None => false,
        Some((_, 0, w)) => {
            tree.move_node(v, w, p.latency);
            true
        }
        Some((_, 1, u)) => {
            tree.swap_nodes(v, u, p.latency);
            true
        }
        Some((_, _, q)) => {
            tree.swap_nodes(pv, q, p.latency);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amcast::amcast;
    use netsim::{Network, NetworkConfig};

    fn net(seed: u64) -> Network {
        Network::generate(
            &NetworkConfig {
                num_hosts: 600,
                ..NetworkConfig::default()
            },
            seed,
        )
    }

    fn session(net: &Network, size: usize, seed: u64) -> Vec<HostId> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut all: Vec<u32> = (0..net.num_hosts() as u32).collect();
        all.shuffle(&mut rng);
        all[..size].iter().copied().map(HostId).collect()
    }

    #[test]
    fn adjust_never_increases_height_and_keeps_validity() {
        let net = net(11);
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        for s in 0..5 {
            let members = session(&net, 30, s);
            let p = Problem::new(members[0], members, &net.latency, dbound);
            let mut t = amcast(&p);
            let before = t.max_height();
            adjust(&p, &mut t);
            assert!(t.max_height() <= before + 1e-9);
            t.validate(&net.latency, dbound).unwrap();
        }
    }

    #[test]
    fn adjust_improves_on_average() {
        let net = net(12);
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let mut improved = 0;
        let runs = 10;
        for s in 0..runs {
            let members = session(&net, 40, 50 + s);
            let p = Problem::new(members[0], members, &net.latency, dbound);
            let mut t = amcast(&p);
            let before = t.max_height();
            let moves = adjust(&p, &mut t);
            if t.max_height() < before - 1e-9 {
                improved += 1;
                assert!(moves > 0);
            }
        }
        assert!(
            improved >= runs / 2,
            "adjust improved only {improved}/{runs} trees"
        );
    }

    /// Symmetric latency matrix over `n` hosts, for the proptest below.
    struct MatrixModel {
        n: usize,
        m: Vec<f64>,
    }
    impl LatencyModel for MatrixModel {
        fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
            if a == b {
                0.0
            } else {
                self.m[a.0 as usize * self.n + b.0 as usize]
            }
        }
        fn num_hosts(&self) -> usize {
            self.n
        }
    }

    fn fingerprint(t: &MulticastTree) -> Vec<(u32, Option<u32>, u64)> {
        t.hosts()
            .iter()
            .map(|&h| (h.0, t.parent_of(h).map(|p| p.0), t.height_of(h).to_bits()))
            .collect()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        // On NaN-free random problems, the `total_cmp`-based
        // `improve_once` applies bit-identical moves to the historical
        // `partial_cmp` path, all the way to convergence.
        #[test]
        fn improve_once_matches_partial_cmp_on_nan_free_problems(
            raw in proptest::collection::vec(1u32..2000, 144..145),
            dbound in 2u32..5,
        ) {
            let n = 12usize;
            let mut m = vec![0.0; n * n];
            for i in 0..n {
                for j in (i + 1)..n {
                    // Quantized weights make equal-height ties common.
                    let v = (raw[i * n + j] as f64) * 0.5;
                    m[i * n + j] = v;
                    m[j * n + i] = v;
                }
            }
            let model = MatrixModel { n, m };
            let members: Vec<HostId> = (0..n as u32).map(HostId).collect();
            let p = Problem::new(members[0], members, &model, |_| dbound);
            let mut t_new = amcast(&p);
            let mut t_old = t_new.clone();
            for _ in 0..MAX_PASSES {
                let a = improve_once_by(&p, &mut t_new, f64::total_cmp);
                let b = improve_once_by(&p, &mut t_old, |x, y| x.partial_cmp(y).unwrap());
                proptest::prop_assert_eq!(a, b, "one path stopped early");
                proptest::prop_assert_eq!(fingerprint(&t_new), fingerprint(&t_old));
                if !a {
                    break;
                }
            }
        }
    }

    #[test]
    fn adjust_on_tiny_trees_is_a_noop() {
        struct Uniform;
        impl LatencyModel for Uniform {
            fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
                if a == b {
                    0.0
                } else {
                    10.0
                }
            }
            fn num_hosts(&self) -> usize {
                5
            }
        }
        let p = Problem::new(HostId(0), vec![HostId(1)], &Uniform, |_| 4);
        let mut t = amcast(&p);
        assert_eq!(adjust(&p, &mut t), 0);
    }

    #[test]
    fn adjust_terminates_on_uniform_latency() {
        // Uniform latencies give endless equal-height plateaus; the EPS
        // guard must prevent cycling.
        struct Uniform;
        impl LatencyModel for Uniform {
            fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
                if a == b {
                    0.0
                } else {
                    10.0
                }
            }
            fn num_hosts(&self) -> usize {
                50
            }
        }
        let members: Vec<HostId> = (0..30).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &Uniform, |_| 3);
        let mut t = amcast(&p);
        let moves = adjust(&p, &mut t);
        assert!(moves < MAX_PASSES);
        t.validate(&Uniform, |_| 3).unwrap();
    }
}
