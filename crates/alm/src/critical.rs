//! The critical-node algorithm (the dashed box in Figure 6).
//!
//! "Critical" is the last opportunity to improve on the greedy baseline for
//! a given node: the moment the chosen parent's free degree drops to one.
//! Instead of letting member `u` consume that final slot, the task manager
//! looks into the resource pool for a *helper* `h` and splices it in —
//! `h` becomes the child of the saturated parent, and `u` (and, later,
//! its would-be siblings) attach under `h`, whose degree is fresh.
//!
//! Helper selection (§5.2), given parent `p` and the pending members `v`
//! whose best parent is `p`:
//!
//! ```text
//! minimize  l(h, p) + max_v l(h, v)      (condition 1, MinMaxSibling)
//! subject to d_bound(h) ≥ 4              (condition 2)
//!            l(h, p) < R                 (condition 3)
//! ```
//!
//! The simpler variant the paper also tried ([`HelperStrategy::Closest`])
//! just minimizes `l(h, p)` under the same constraints. The radius R keeps
//! out "junk" nodes — far-away hosts whose big degree would come at the
//! price of long edges; for the paper's topology R ∈ [50, 150] ms works
//! best (their link latencies make 50–150 exclude other stub domains).

use std::collections::HashSet;

use netsim::{HostId, LatencyModel};

use crate::amcast::{greedy_engine, greedy_engine_reference, try_greedy_engine, HelperFinder};
use crate::problem::Problem;
use crate::tree::MulticastTree;

/// How to score helper candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HelperStrategy {
    /// Minimize `l(h, parent)` alone.
    Closest,
    /// Minimize `l(h, parent) + max_v l(h, v)` over the likely future
    /// children `v` — the paper's better heuristic.
    MinMaxSibling,
}

/// The pool of candidate helper nodes visible to one planning run.
///
/// Candidates are typically the SOMO-reported idle hosts, minus the
/// session's own members (enforced at planning time).
#[derive(Clone, Debug)]
pub struct HelperPool {
    candidates: Vec<HostId>,
    /// Condition 2: minimum degree bound a helper must offer.
    pub min_degree: u32,
    /// Condition 3: helpers must lie within this radius of the saturated
    /// parent, ms.
    pub radius_ms: f64,
    /// Scoring strategy.
    pub strategy: HelperStrategy,
}

impl HelperPool {
    /// A pool with the paper's default constraints (degree ≥ 4, R = 100 ms,
    /// min-max sibling scoring).
    pub fn new(candidates: Vec<HostId>) -> HelperPool {
        HelperPool {
            candidates,
            min_degree: 4,
            radius_ms: 100.0,
            strategy: HelperStrategy::MinMaxSibling,
        }
    }

    /// Candidates currently in the pool.
    pub fn candidates(&self) -> &[HostId] {
        &self.candidates
    }

    /// Replace the candidate list (constraints are kept).
    pub fn set_candidates(&mut self, candidates: Vec<HostId>) {
        self.candidates = candidates;
    }
}

struct PoolFinder<'a, D: Fn(HostId) -> u32> {
    pool: &'a HelperPool,
    dbound: &'a D,
    members: HashSet<HostId>,
    taken: HashSet<HostId>,
}

impl<'a, L: LatencyModel, D: Fn(HostId) -> u32> HelperFinder<L> for PoolFinder<'a, D> {
    fn find(
        &mut self,
        tree: &MulticastTree,
        parent: HostId,
        _u: HostId,
        siblings: &[HostId],
        latency: &L,
    ) -> Option<HostId> {
        let mut best: Option<(f64, HostId)> = None;
        for &h in &self.pool.candidates {
            if self.members.contains(&h)
                || self.taken.contains(&h)
                || tree.contains(h)
                || (self.dbound)(h) < self.pool.min_degree
            {
                continue;
            }
            let to_parent = latency.latency_ms(h, parent);
            if to_parent >= self.pool.radius_ms {
                continue;
            }
            let score = match self.pool.strategy {
                HelperStrategy::Closest => to_parent,
                HelperStrategy::MinMaxSibling => {
                    let worst_child = siblings
                        .iter()
                        .map(|&v| latency.latency_ms(h, v))
                        .fold(0.0, f64::max);
                    to_parent + worst_child
                }
            };
            if best.is_none_or(|(bs, bh)| score < bs || (score == bs && h < bh)) {
                best = Some((score, h));
            }
        }
        let h = best.map(|(_, h)| h)?;
        self.taken.insert(h);
        Some(h)
    }
}

/// Run the critical-node algorithm: AMCast's greedy loop with helper
/// recruitment from `pool`. The returned tree spans all members plus any
/// recruited helpers.
pub fn critical<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    pool: &HelperPool,
) -> MulticastTree {
    let mut finder = PoolFinder {
        pool,
        dbound: &p.dbound,
        members: p.members.iter().copied().collect(),
        taken: HashSet::new(),
    };
    greedy_engine(p, &mut finder)
}

/// [`critical`], but returns `None` instead of panicking when the residual
/// capacity cannot host a spanning tree — the multipath planner's entry
/// point for standby trees (see [`crate::amcast::try_amcast`]).
pub fn try_critical<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    pool: &HelperPool,
) -> Option<MulticastTree> {
    let mut finder = PoolFinder {
        pool,
        dbound: &p.dbound,
        members: p.members.iter().copied().collect(),
        taken: HashSet::new(),
    };
    try_greedy_engine(p, &mut finder)
}

/// [`critical`] driven by the retained reference engine: same helper
/// recruitment, naive O(N³) greedy loop. Produces trees bit-identical to
/// [`critical`]; exists for the equivalence proptests and the
/// `perf_planner` A/B sweep.
pub fn critical_reference<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    pool: &HelperPool,
) -> MulticastTree {
    let mut finder = PoolFinder {
        pool,
        dbound: &p.dbound,
        members: p.members.iter().copied().collect(),
        taken: HashSet::new(),
    };
    greedy_engine_reference(p, &mut finder)
}

/// The helpers a planning run actually recruited: tree nodes outside the
/// member set.
pub fn helpers_used(tree: &MulticastTree, members: &[HostId]) -> Vec<HostId> {
    let members: HashSet<HostId> = members.iter().copied().collect();
    tree.hosts()
        .iter()
        .copied()
        .filter(|h| !members.contains(h))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amcast::amcast;
    use crate::problem::improvement;
    use netsim::{Network, NetworkConfig};

    fn net(n: usize, seed: u64) -> Network {
        Network::generate(
            &NetworkConfig {
                num_hosts: n,
                ..NetworkConfig::default()
            },
            seed,
        )
    }

    fn session(net: &Network, size: usize, seed: u64) -> Vec<HostId> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut all: Vec<u32> = (0..net.num_hosts() as u32).collect();
        all.shuffle(&mut rng);
        all[..size].iter().copied().map(HostId).collect()
    }

    #[test]
    fn critical_tree_is_valid_and_spans_members() {
        let net = net(600, 4);
        let members = session(&net, 40, 1);
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let pool = HelperPool::new(net.hosts.ids().collect());
        let t = critical(&p, &pool);
        t.validate(&net.latency, dbound).unwrap();
        for &m in &p.members {
            assert!(t.contains(m), "member missing from tree");
        }
        // Helpers respect the min-degree condition.
        for h in helpers_used(&t, &p.members) {
            assert!(net.hosts.degree_bound(h) >= 4);
        }
    }

    #[test]
    fn helpers_lower_average_height() {
        // The paper's Figure 8 effect: averaged over sessions, critical
        // beats plain AMCast for small/medium groups.
        let net = net(600, 5);
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let pool = HelperPool::new(net.hosts.ids().collect());
        let mut total_impr = 0.0;
        let runs = 8;
        for s in 0..runs {
            let members = session(&net, 20, 100 + s);
            let p = Problem::new(members[0], members, &net.latency, dbound);
            let base = amcast(&p).max_height();
            let crit = critical(&p, &pool).max_height();
            total_impr += improvement(base, crit);
        }
        let avg = total_impr / runs as f64;
        assert!(
            avg > 0.05,
            "critical should improve on AMCast by >5% on average, got {avg}"
        );
    }

    #[test]
    fn empty_pool_degenerates_to_amcast() {
        let net = net(300, 6);
        let members = session(&net, 25, 2);
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(members[0], members, &net.latency, dbound);
        let pool = HelperPool::new(vec![]);
        let a = amcast(&p);
        let c = critical(&p, &pool);
        assert_eq!(a.max_height(), c.max_height());
        assert!(helpers_used(&c, &p.members).is_empty());
    }

    #[test]
    fn members_are_never_recruited_as_helpers() {
        let net = net(300, 7);
        let members = session(&net, 30, 3);
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        // Pool deliberately includes the members.
        let pool = HelperPool::new(net.hosts.ids().collect());
        let t = critical(&p, &pool);
        let helpers = helpers_used(&t, &p.members);
        for h in &helpers {
            assert!(!p.members.contains(h));
        }
        assert_eq!(t.len(), p.members.len() + helpers.len());
    }

    #[test]
    fn radius_zero_blocks_all_helpers() {
        let net = net(300, 8);
        let members = session(&net, 25, 4);
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(members[0], members, &net.latency, dbound);
        let mut pool = HelperPool::new(net.hosts.ids().collect());
        pool.radius_ms = 0.0;
        let t = critical(&p, &pool);
        assert!(helpers_used(&t, &p.members).is_empty());
    }

    #[test]
    fn closest_strategy_also_valid() {
        let net = net(300, 9);
        let members = session(&net, 25, 5);
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(members[0], members, &net.latency, dbound);
        let mut pool = HelperPool::new(net.hosts.ids().collect());
        pool.strategy = HelperStrategy::Closest;
        let t = critical(&p, &pool);
        t.validate(&net.latency, dbound).unwrap();
    }
}
