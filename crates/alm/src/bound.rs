//! The theoretical improvement ceiling.
//!
//! §5.2: "The upper bound is the latency between the furthest node to the
//! root, corresponding to the ideal performance if the root has degree of
//! infinity." No tree can beat a direct root→member edge for its furthest
//! member, so
//!
//! ```text
//! bound = (H_AMCast − max_v l(root, v)) / H_AMCast
//! ```
//!
//! For the paper's data set this lands between 40 and 50%.

use netsim::{HostId, LatencyModel};

use crate::problem::{improvement, Problem};

/// The ideal (infinite-root-degree) tree height: the latency from the root
/// to its furthest member.
pub fn ideal_height<L: LatencyModel, D: Fn(HostId) -> u32>(p: &Problem<L, D>) -> f64 {
    p.members
        .iter()
        .map(|&v| p.latency.latency_ms(p.root, v))
        .fold(0.0, f64::max)
}

/// The improvement upper bound relative to a given AMCast height.
pub fn improvement_upper_bound<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    h_amcast: f64,
) -> f64 {
    improvement(h_amcast, ideal_height(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amcast::amcast;
    use netsim::{Network, NetworkConfig};

    #[test]
    fn bound_dominates_any_algorithm() {
        let net = Network::generate(
            &NetworkConfig {
                num_hosts: 400,
                ..NetworkConfig::default()
            },
            31,
        );
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members: Vec<HostId> = (0..40).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &net.latency, dbound);
        let t = amcast(&p);
        let h = t.max_height();
        // The tree's height can never beat the furthest direct edge.
        assert!(h >= ideal_height(&p) - 1e-9);
        let b = improvement_upper_bound(&p, h);
        assert!((0.0..1.0).contains(&b), "bound {b} out of range");
    }

    #[test]
    fn star_capable_root_reaches_the_bound() {
        struct Uniform;
        impl LatencyModel for Uniform {
            fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
                if a == b {
                    0.0
                } else {
                    10.0
                }
            }
            fn num_hosts(&self) -> usize {
                20
            }
        }
        let members: Vec<HostId> = (0..10).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &Uniform, |_| 100);
        let t = amcast(&p);
        assert_eq!(t.max_height(), ideal_height(&p));
        assert_eq!(improvement_upper_bound(&p, t.max_height()), 0.0);
    }
}
