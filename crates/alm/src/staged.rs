//! The practical *Leafset* planning loop: estimate → contact → replan.
//!
//! Coordinates exist to judge the *vicinity* of the huge helper-candidate
//! list from SOMO (§4: pinging the whole list "is both time-consuming and
//! error-prone"). They are a shortlisting device, not a substitute for
//! measurement: once the plan is drawn "the task manager goes out to
//! contact the helping peers to reserve their usages" (§5) — and contacting
//! a peer yields its true latency for free.
//!
//! [`staged_plan`] implements that loop:
//!
//! 1. **Shortlist** — run the critical-node algorithm with estimated
//!    latencies for candidates (members measure each other directly). The
//!    search radius is widened by a tolerance factor so genuinely close
//!    helpers that the embedding pushed slightly out are not lost.
//! 2. **Contact & measure** — the helpers the draft plan recruited get
//!    pinged; their true latencies replace the estimates.
//! 3. **Replan** — the critical-node algorithm runs again with the
//!    shortlist as the candidate pool and measured latencies throughout,
//!    followed by the adjustment pass.
//!
//! Coordinate error can only cost *shortlist quality* — an over-estimated
//! helper never enters the draft, an under-estimated one is exposed and
//! dropped at replan — it can no longer put a phantom 300 ms edge on the
//! critical path.

use netsim::latency::MeasuredSetLatency;
use netsim::{HostId, LatencyModel};

use crate::adjust::adjust;
use crate::critical::{critical, helpers_used, try_critical, HelperPool};
use crate::problem::Problem;
use crate::tree::MulticastTree;

/// Stage-1 radius widening: how much coordinate error the shortlist
/// tolerates before a near helper is lost.
const SHORTLIST_RADIUS_FACTOR: f64 = 1.5;

/// Plan a session with the estimate → contact → replan loop.
///
/// * `measure` answers actual latency probes (members ping each other and
///   any contacted helper);
/// * `estimate` is the coordinate store used for everyone else;
/// * `pool` carries the candidate list and the helper constraints
///   (degree ≥ 4, radius R).
pub fn staged_plan<M, E, D>(
    root: HostId,
    members: &[HostId],
    measure: &M,
    estimate: &E,
    dbound: D,
    pool: &HelperPool,
    use_adjust: bool,
) -> MulticastTree
where
    M: LatencyModel,
    E: LatencyModel,
    D: Fn(HostId) -> u32,
{
    // Stage 1: draft plan on estimates, wider radius.
    let hybrid1 = MeasuredSetLatency::new(members.iter().copied(), measure, estimate);
    let p1 = Problem::new(root, members.to_vec(), &hybrid1, &dbound);
    let mut pool1 = pool.clone();
    pool1.radius_ms = pool.radius_ms * SHORTLIST_RADIUS_FACTOR;
    let draft = critical(&p1, &pool1);
    let shortlist = helpers_used(&draft, members);

    // Stage 2: contact the shortlisted helpers — their latencies become
    // measured — and replan against the shortlist only.
    let measured: Vec<HostId> = members
        .iter()
        .copied()
        .chain(shortlist.iter().copied())
        .collect();
    let hybrid2 = MeasuredSetLatency::new(measured, measure, estimate);
    let p2 = Problem::new(root, members.to_vec(), &hybrid2, &dbound);
    let mut pool2 = pool.clone();
    pool2.set_candidates(shortlist);
    let mut tree = critical(&p2, &pool2);
    if use_adjust {
        adjust(&p2, &mut tree);
    }
    tree
}

/// [`staged_plan`], but `None` instead of a panic when the degree bounds
/// cannot host a spanning tree in either stage — for planning under a
/// restricted availability view (e.g. a multipath session budgeting member
/// degrees for its standby trees), where infeasibility is an expected
/// outcome the caller absorbs.
pub fn try_staged_plan<M, E, D>(
    root: HostId,
    members: &[HostId],
    measure: &M,
    estimate: &E,
    dbound: D,
    pool: &HelperPool,
    use_adjust: bool,
) -> Option<MulticastTree>
where
    M: LatencyModel,
    E: LatencyModel,
    D: Fn(HostId) -> u32,
{
    let hybrid1 = MeasuredSetLatency::new(members.iter().copied(), measure, estimate);
    let p1 = Problem::new(root, members.to_vec(), &hybrid1, &dbound);
    let mut pool1 = pool.clone();
    pool1.radius_ms = pool.radius_ms * SHORTLIST_RADIUS_FACTOR;
    let draft = try_critical(&p1, &pool1)?;
    let shortlist = helpers_used(&draft, members);

    let measured: Vec<HostId> = members
        .iter()
        .copied()
        .chain(shortlist.iter().copied())
        .collect();
    let hybrid2 = MeasuredSetLatency::new(measured, measure, estimate);
    let p2 = Problem::new(root, members.to_vec(), &hybrid2, &dbound);
    let mut pool2 = pool.clone();
    pool2.set_candidates(shortlist);
    let mut tree = try_critical(&p2, &pool2)?;
    if use_adjust {
        adjust(&p2, &mut tree);
    }
    Some(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amcast::amcast;
    use crate::problem::improvement;
    use coords::leafset::LeafsetConfig;
    use coords::LeafsetCoords;
    use dht::Ring;
    use netsim::{Network, NetworkConfig};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn setup() -> (Network, coords::CoordStore) {
        let net = Network::generate(
            &NetworkConfig {
                num_hosts: 400,
                ..NetworkConfig::default()
            },
            77,
        );
        let ring = Ring::with_random_ids((0..400u32).map(HostId), 78);
        let coords = LeafsetCoords::new(LeafsetConfig {
            leafset_size: 32,
            rounds: 8,
            ..Default::default()
        })
        .run(&net.latency, &ring, 79);
        (net, coords)
    }

    fn session(net: &Network, size: usize, seed: u64) -> Vec<HostId> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut all: Vec<u32> = (0..net.num_hosts() as u32).collect();
        all.shuffle(&mut rng);
        all[..size].iter().copied().map(HostId).collect()
    }

    #[test]
    fn staged_plan_is_valid_and_spans_members() {
        let (net, coords) = setup();
        let members = session(&net, 25, 1);
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let pool = HelperPool::new(net.hosts.ids().collect());
        let t = staged_plan(
            members[0],
            &members,
            &net.latency,
            &coords,
            dbound,
            &pool,
            true,
        );
        t.validate(&net.latency, dbound).unwrap();
        for &m in &members {
            assert!(t.contains(m));
        }
    }

    #[test]
    fn staged_plan_beats_baseline_despite_coordinate_error() {
        // The point of the staged loop: even with a heavy-tailed embedding,
        // helpers are verified on contact, so the plan stays clearly
        // positive on average.
        let (net, coords) = setup();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let pool = HelperPool::new(net.hosts.ids().collect());
        let mut total = 0.0;
        let runs = 8;
        for s in 0..runs {
            let members = session(&net, 20, 10 + s);
            let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
            let base = amcast(&p).max_height();
            let t = staged_plan(
                members[0],
                &members,
                &net.latency,
                &coords,
                dbound,
                &pool,
                true,
            );
            let mut eval = t.clone();
            eval.recompute_heights(&net.latency);
            total += improvement(base, eval.max_height());
        }
        let avg = total / runs as f64;
        assert!(avg > 0.05, "staged Leafset average improvement {avg}");
    }

    #[test]
    fn staged_plan_with_empty_pool_is_members_only() {
        let (net, coords) = setup();
        let members = session(&net, 15, 3);
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let pool = HelperPool::new(vec![]);
        let t = staged_plan(
            members[0],
            &members,
            &net.latency,
            &coords,
            dbound,
            &pool,
            false,
        );
        assert_eq!(t.len(), members.len());
    }
}
