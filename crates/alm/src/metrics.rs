//! Alternative QoS metrics (§5.1).
//!
//! "For ALM, there exist several different criteria for optimization, like
//! bandwidth bottleneck, maximal latency or variance of latencies. In this
//! paper, we choose maximal latency..." The tree-builders optimize height;
//! this module evaluates the other two criteria on any finished tree, so a
//! deployment can report (or re-rank plans by) the full QoS picture.

use std::cell::Cell;

use netsim::HostId;
use simcore::stats::OnlineStats;

use crate::tree::MulticastTree;

thread_local! {
    static RELAXATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Zero the current thread's relaxation counter.
pub fn reset_relaxations() {
    RELAXATIONS.with(|c| c.set(0));
}

/// Relaxations performed on this thread since [`reset_relaxations`].
///
/// One *relaxation* is one candidate-parent scoring attempt — a
/// `height(w) + latency(w, v)` evaluation against a pending member — in
/// either greedy engine (including the initial root scoring and the
/// full-recompute scans). The incremental engine's result-neutral prunes
/// skip evaluations outright, so its count is strictly below the
/// reference's on any non-trivial problem; the `perf_planner` harness
/// reports both.
pub fn relaxations() -> u64 {
    RELAXATIONS.with(|c| c.get())
}

/// Engines accumulate locally and flush once, so the counter costs nothing
/// on the hot path.
pub(crate) fn add_relaxations(n: u64) {
    RELAXATIONS.with(|c| c.set(c.get() + n));
}

/// Fold relaxations performed on *another* thread into this thread's
/// counter. Parallel planners run the engines on worker threads whose
/// thread-local tallies die with them; the coordinator absorbs each plan's
/// reported count here so observers on the coordinating thread (the perf
/// harness, trace consumers) see the same totals as a sequential run.
pub fn absorb_relaxations(n: u64) {
    RELAXATIONS.with(|c| c.set(c.get() + n));
}

/// Summary of member heights: the paper's height objective plus the
/// variance criterion ("variance of latencies").
#[derive(Clone, Copy, Debug)]
pub struct LatencyQos {
    /// Maximum height (the DB-MHT objective), ms.
    pub max_ms: f64,
    /// Mean member height, ms.
    pub mean_ms: f64,
    /// Standard deviation of member heights, ms.
    pub stddev_ms: f64,
}

/// Height statistics over the tree's non-root nodes.
pub fn latency_qos(tree: &MulticastTree) -> LatencyQos {
    let mut s = OnlineStats::new();
    for &h in tree.hosts() {
        if h != tree.root() {
            s.push(tree.height_of(h));
        }
    }
    LatencyQos {
        max_ms: tree.max_height(),
        mean_ms: s.mean(),
        stddev_ms: s.stddev(),
    }
}

/// The stream rate the whole session can sustain: the minimum over tree
/// edges of the parent's share of uplink. A parent forwarding to `c`
/// children pushes `c` copies, so each child receives at most
/// `uplink(parent) / c` — the "bandwidth bottleneck" criterion.
///
/// `uplink_kbps(h)` is typically `bwest::BwEstimates::up` or the true
/// access capacity.
pub fn bottleneck_kbps(tree: &MulticastTree, uplink_kbps: impl Fn(HostId) -> f64) -> f64 {
    let mut min = f64::INFINITY;
    for &h in tree.hosts() {
        let c = tree.child_count(h);
        if c > 0 {
            min = min.min(uplink_kbps(h) / c as f64);
        }
    }
    min
}

/// The member whose stream crosses the weakest edge chain: for diagnostics,
/// returns `(member, sustainable_kbps)` minimized along each member's path
/// from the root.
pub fn weakest_path(
    tree: &MulticastTree,
    uplink_kbps: impl Fn(HostId) -> f64,
) -> Option<(HostId, f64)> {
    let mut worst: Option<(HostId, f64)> = None;
    for &h in tree.hosts() {
        if h == tree.root() {
            continue;
        }
        // Walk up: each ancestor's uplink is shared across its children.
        let mut rate = f64::INFINITY;
        let mut cur = h;
        while let Some(p) = tree.parent_of(cur) {
            rate = rate.min(uplink_kbps(p) / tree.child_count(p) as f64);
            cur = p;
        }
        if worst.is_none_or(|(_, r)| rate < r) {
            worst = Some((h, rate));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> MulticastTree {
        // 0 → 1 → 2 and 0 → 3.
        let mut t = MulticastTree::new(HostId(0));
        t.attach(HostId(1), HostId(0), 10.0);
        t.attach(HostId(2), HostId(1), 30.0);
        t.attach(HostId(3), HostId(0), 20.0);
        t
    }

    #[test]
    fn latency_qos_summary() {
        let q = latency_qos(&chain());
        assert_eq!(q.max_ms, 40.0);
        // Heights: 10, 40, 20 → mean 70/3.
        assert!((q.mean_ms - 70.0 / 3.0).abs() < 1e-9);
        assert!(q.stddev_ms > 0.0);
    }

    #[test]
    fn bottleneck_accounts_for_fanout() {
        let up = |h: HostId| match h.0 {
            0 => 1000.0, // two children → 500 each
            1 => 800.0,  // one child → 800
            _ => 56.0,   // leaves forward nothing
        };
        let b = bottleneck_kbps(&chain(), up);
        assert_eq!(b, 500.0);
    }

    #[test]
    fn weakest_path_finds_the_starved_member() {
        let up = |h: HostId| match h.0 {
            0 => 1000.0,
            1 => 100.0, // node 2 receives at most 100
            _ => 56.0,
        };
        let (member, rate) = weakest_path(&chain(), up).unwrap();
        assert_eq!(member, HostId(2));
        assert_eq!(rate, 100.0);
    }

    #[test]
    fn root_only_tree_has_infinite_bottleneck() {
        let t = MulticastTree::new(HostId(0));
        assert_eq!(bottleneck_kbps(&t, |_| 100.0), f64::INFINITY);
        assert!(weakest_path(&t, |_| 100.0).is_none());
        let q = latency_qos(&t);
        assert_eq!(q.max_ms, 0.0);
        assert_eq!(q.mean_ms, 0.0);
    }
}
