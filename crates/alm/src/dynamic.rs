//! Dynamic session membership (the extension §5 flags: "the algorithm can
//! be extended to accommodate dynamic membership as well").
//!
//! Incremental operations on a live multicast tree:
//!
//! * [`add_member`] — a late joiner attaches to the best node with free
//!   capacity (the same relaxation rule the greedy builder uses);
//! * [`remove_member`] — a leaver's orphaned subtrees re-attach greedily,
//!   and helpers left without children are pruned back to the pool;
//! * [`prune_idle_helpers`] — reclaim helpers that no longer forward to
//!   anyone (returning their degrees to the pool is the caller's job).
//!
//! Incremental repair trades optimality for disruption: only the paths
//! through the leaver change. A session can always fall back to a full
//! replan (`critical` + `adjust`) on its periodic rescheduling tick.

use netsim::{HostId, LatencyModel};

use crate::amcast::best_attachment;
use crate::problem::Problem;
use crate::tree::MulticastTree;

/// A join or repair could not find any node with free capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoCapacity;

impl std::fmt::Display for NoCapacity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no tree node has a free child slot")
    }
}
impl std::error::Error for NoCapacity {}

/// Attach a late joiner to the best node with free capacity.
///
/// # Panics
/// If `v` is already in the tree.
pub fn add_member<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &mut MulticastTree,
    v: HostId,
) -> Result<(), NoCapacity> {
    assert!(!tree.contains(v), "joiner already in tree");
    let (_, parent) = best_attachment(p, tree, v).ok_or(NoCapacity)?;
    tree.attach(v, parent, p.latency.latency_ms(parent, v));
    Ok(())
}

/// Remove `v` from the tree, greedily re-attaching its orphaned subtrees.
/// Returns the rebuilt tree (the original is consumed conceptually: pass a
/// clone if you need the old one).
///
/// # Panics
/// If `v` is the tree root (the session source cannot leave — the session
/// ends instead), or `v` is not in the tree.
pub fn remove_member<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &MulticastTree,
    v: HostId,
) -> Result<MulticastTree, NoCapacity> {
    assert!(tree.contains(v), "leaver not in tree");
    assert!(v != tree.root(), "the session root cannot leave");

    // Residual capacity each survivor will have once its *old* children are
    // all copied over: dbound − old degree (+1 for v's old parent, whose
    // edge to v disappears). Orphans may only take these residual slots —
    // checking against the partially rebuilt tree alone would overcommit
    // nodes whose old children simply haven't been copied yet.
    let mut residual: std::collections::HashMap<HostId, i64> = tree
        .hosts()
        .iter()
        .filter(|&&u| u != v)
        .map(|&u| {
            let mut r = (p.dbound)(u) as i64 - tree.degree(u) as i64;
            if tree.parent_of(v) == Some(u) {
                r += 1;
            }
            (u, r)
        })
        .collect();

    // Two-phase rebuild. Phase 1 copies every survivor *outside* v's
    // subtree first, so phase 2's orphans choose among ALL of them — the
    // old single-pass rebuild only offered the BFS prefix, which hid free
    // capacity later in the tree and produced spurious `NoCapacity`.
    let in_subtree = subtree_of(tree, v);
    let mut rebuilt = MulticastTree::new(tree.root());
    for u in tree.bfs_order() {
        if u == tree.root() || in_subtree.contains(&u) {
            continue;
        }
        let old_parent = tree.parent_of(u).expect("non-root has a parent");
        rebuilt.attach(u, old_parent, p.latency.latency_ms(old_parent, u));
    }
    // Phase 2: attach each orphan subtree. Attaching one at a time against
    // the growing `rebuilt` is cycle-safe: an orphan can never pick a parent
    // inside its own (not-yet-placed) subtree.
    for orphan in tree.children_of(v) {
        let (_, w) = rebuilt
            .hosts()
            .iter()
            .copied()
            .filter(|w| residual.get(w).copied().unwrap_or(0) > 0)
            .map(|w| (rebuilt.height_of(w) + p.latency.latency_ms(w, orphan), w))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .ok_or(NoCapacity)?;
        *residual.get_mut(&w).expect("candidate accounted") -= 1;
        rebuilt.attach(orphan, w, p.latency.latency_ms(w, orphan));
        copy_subtree(
            p,
            tree,
            &mut rebuilt,
            orphan,
            &std::collections::HashSet::new(),
        );
    }
    Ok(rebuilt)
}

/// All hosts in the subtree rooted at `v` (including `v` itself).
fn subtree_of(tree: &MulticastTree, v: HostId) -> std::collections::HashSet<HostId> {
    let mut set = std::collections::HashSet::new();
    let mut stack = vec![v];
    while let Some(u) = stack.pop() {
        if set.insert(u) {
            stack.extend(tree.children_of(u));
        }
    }
    set
}

/// Copy the descendants of `top` (already present in `rebuilt`) with their
/// old parent edges, parent-before-child. Hosts in `skip` are not copied
/// and not descended into (a crashed node's live children re-attach on
/// their own as orphans).
fn copy_subtree<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &MulticastTree,
    rebuilt: &mut MulticastTree,
    top: HostId,
    skip: &std::collections::HashSet<HostId>,
) {
    let mut queue = std::collections::VecDeque::from(tree.children_of(top));
    while let Some(u) = queue.pop_front() {
        if skip.contains(&u) {
            continue;
        }
        let parent = tree.parent_of(u).expect("subtree node has a parent");
        rebuilt.attach(u, parent, p.latency.latency_ms(parent, u));
        queue.extend(tree.children_of(u));
    }
}

/// Tuning for [`reattach_orphans`].
#[derive(Clone, Copy, Debug)]
pub struct ReattachConfig {
    /// Delay before the first retry; doubles on each subsequent attempt
    /// (exponential backoff, step capped at `backoff · 2^6`).
    pub backoff: simcore::SimTime,
    /// Attempts per orphan before giving up (first try included).
    pub max_attempts: u32,
}

impl Default for ReattachConfig {
    fn default() -> Self {
        ReattachConfig {
            backoff: simcore::SimTime::from_millis(500),
            max_attempts: 12,
        }
    }
}

/// What [`reattach_orphans`] accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct ReattachReport {
    /// Orphan subtrees successfully re-attached.
    pub reattached: usize,
    /// Failed attempts across all orphans (dead or saturated picks).
    pub retries: u64,
    /// Orphans abandoned after `max_attempts` failures.
    pub gave_up: usize,
    /// Simulated wall time the repair took (dominated by backoff waits;
    /// orphans retry independently, so this is the *maximum* per-orphan
    /// duration, not the sum).
    pub duration: simcore::SimTime,
}

/// The roots of the subtrees that `dead` would orphan: live nodes whose
/// parent is dead (each drags its intact subtree along). Schedulers use
/// this to size a repair — or release the stranded helpers' reservations —
/// before committing to [`reattach_orphans`].
pub fn orphaned_subtree_roots(tree: &MulticastTree, dead: &[HostId]) -> Vec<HostId> {
    let dead_set: std::collections::HashSet<HostId> = dead.iter().copied().collect();
    tree.bfs_order()
        .into_iter()
        .filter(|&u| {
            u != tree.root()
                && !dead_set.contains(&u)
                && dead_set.contains(&tree.parent_of(u).expect("non-root has a parent"))
        })
        .collect()
}

/// Crash repair for a live session: every host in `dead` vanishes at once
/// and each orphaned subtree re-attaches by itself, retrying with
/// exponential backoff.
///
/// Unlike [`remove_member`] (a graceful leave, where the leaver hands its
/// children a consistent view), crash orphans work from a **stale view**:
/// their candidate list still contains the dead hosts. An attempt that
/// picks a dead or degree-saturated parent fails and is retried after
/// `backoff · 2^k`, dropping that candidate. The repaired tree contains
/// every survivor whose orphan ancestor found a slot; subtrees whose orphan
/// gave up are left out (counted in [`ReattachReport::gave_up`]).
///
/// # Panics
/// If `dead` contains the root (the session ends instead).
pub fn reattach_orphans<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &MulticastTree,
    dead: &[HostId],
    cfg: &ReattachConfig,
) -> (MulticastTree, ReattachReport) {
    use std::collections::HashSet;
    let dead_set: HashSet<HostId> = dead.iter().copied().collect();
    assert!(
        !dead_set.contains(&tree.root()),
        "the session root cannot crash here"
    );

    // Survivors outside every dead subtree keep their edges; the roots of
    // the remaining fragments (live children of dead nodes whose own parent
    // chain is otherwise intact) are the orphans.
    let mut rebuilt = MulticastTree::new(tree.root());
    let mut orphans: Vec<HostId> = Vec::new();
    for u in tree.bfs_order() {
        if u == tree.root() || dead_set.contains(&u) {
            continue;
        }
        let parent = tree.parent_of(u).expect("non-root has a parent");
        if dead_set.contains(&parent) {
            orphans.push(u);
        } else if rebuilt.contains(parent) {
            rebuilt.attach(u, parent, p.latency.latency_ms(parent, u));
        } else {
            // The parent is alive but hangs under a dead ancestor: this
            // node travels with its orphan ancestor's subtree.
        }
    }

    // Residual capacity of every survivor, counting only edges that made it
    // into the rebuilt fragment rooted at the tree root (orphan subtrees
    // keep their internal edges, accounted when each subtree lands).
    let mut residual: std::collections::HashMap<HostId, i64> = tree
        .hosts()
        .iter()
        .filter(|u| !dead_set.contains(u))
        .map(|&u| {
            let live_children = tree
                .children_of(u)
                .iter()
                .filter(|c| !dead_set.contains(c))
                .count() as i64;
            let has_parent = i64::from(u != tree.root());
            ((u), (p.dbound)(u) as i64 - live_children - has_parent)
        })
        .collect();

    // Per-orphan retry state. Exclusions are *learned refusals*: a dead
    // pick (no answer) or a saturated pick (explicit refusal) is never
    // retried. A pick that is merely still orphaned itself (its own subtree
    // has not landed yet) is NOT excluded — after the backoff it may have
    // re-attached, exactly as in a live system.
    struct Pending {
        orphan: HostId,
        excluded: HashSet<HostId>,
        attempts: u32,
        waited: simcore::SimTime,
    }
    let mut pending: Vec<Pending> = orphans
        .into_iter()
        .map(|orphan| Pending {
            excluded: subtree_of(tree, orphan),
            orphan,
            attempts: 0,
            waited: simcore::SimTime::ZERO,
        })
        .collect();

    let mut report = ReattachReport::default();
    // Rounds: every still-orphaned subtree scans its candidates once per
    // round. Within a round, a pick that is still detached itself is
    // soft-skipped (one attempt + backoff, then the next-nearest candidate);
    // the soft set clears between rounds, so once that subtree lands the
    // orphan may still choose it. Attempts are bounded by `max_attempts`.
    loop {
        let mut any_attempt = false;
        let mut still_pending = Vec::new();
        for mut st in pending {
            let mut soft: HashSet<HostId> = HashSet::new();
            let mut attached = false;
            while st.attempts < cfg.max_attempts {
                let pick = tree
                    .hosts()
                    .iter()
                    .copied()
                    .filter(|w| !st.excluded.contains(w) && !soft.contains(w))
                    .map(|w| (p.latency.latency_ms(w, st.orphan), w))
                    .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                    .map(|(_, w)| w);
                let Some(w) = pick else {
                    if soft.is_empty() {
                        st.attempts = cfg.max_attempts; // stale view exhausted
                    }
                    break; // otherwise: wait a round, detached picks may land
                };
                any_attempt = true;
                st.attempts += 1;
                if !dead_set.contains(&w)
                    && rebuilt.contains(w)
                    && residual.get(&w).copied().unwrap_or(0) > 0
                {
                    *residual.get_mut(&w).expect("live candidate") -= 1;
                    rebuilt.attach(st.orphan, w, p.latency.latency_ms(w, st.orphan));
                    copy_subtree(p, tree, &mut rebuilt, st.orphan, &dead_set);
                    report.reattached += 1;
                    report.duration = report.duration.max(st.waited);
                    attached = true;
                    break;
                }
                // Failed attempt: dead picks (no answer) and saturated picks
                // (explicit refusal) are dropped for good; a pick that is
                // merely detached right now is retried in a later round.
                report.retries += 1;
                if dead_set.contains(&w) || rebuilt.contains(w) {
                    st.excluded.insert(w);
                } else {
                    soft.insert(w);
                }
                st.waited += simcore::SimTime::from_micros(
                    cfg.backoff
                        .as_micros()
                        .saturating_mul(1u64 << (st.attempts - 1).min(6)),
                );
            }
            if !attached {
                still_pending.push(st);
            }
        }
        pending = still_pending;
        if !any_attempt {
            break;
        }
    }
    for st in pending {
        report.gave_up += 1;
        report.duration = report.duration.max(st.waited);
    }
    (rebuilt, report)
}

/// Remove helpers (tree nodes outside `members`) that have no children,
/// repeatedly, until none remain. Returns the pruned helpers.
pub fn prune_idle_helpers<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &mut MulticastTree,
    members: &[HostId],
) -> Vec<HostId> {
    let mut pruned = Vec::new();
    loop {
        let idle: Vec<HostId> = tree
            .hosts()
            .iter()
            .copied()
            .filter(|h| !members.contains(h) && *h != tree.root() && tree.child_count(*h) == 0)
            .collect();
        if idle.is_empty() {
            return pruned;
        }
        // Rebuild without the idle helpers (they are leaves, so everyone
        // else keeps their parent).
        let mut rebuilt = MulticastTree::new(tree.root());
        for u in tree.bfs_order() {
            if u == tree.root() || idle.contains(&u) {
                continue;
            }
            let parent = tree.parent_of(u).expect("non-root");
            rebuilt.attach(u, parent, p.latency.latency_ms(parent, u));
        }
        pruned.extend(idle);
        *tree = rebuilt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amcast::amcast;
    use crate::critical::{critical, helpers_used, HelperPool};
    use netsim::{Network, NetworkConfig};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn net() -> Network {
        Network::generate(
            &NetworkConfig {
                num_hosts: 400,
                ..NetworkConfig::default()
            },
            91,
        )
    }

    fn session(net: &Network, size: usize, seed: u64) -> Vec<HostId> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut all: Vec<u32> = (0..net.num_hosts() as u32).collect();
        all.shuffle(&mut rng);
        all[..size].iter().copied().map(HostId).collect()
    }

    #[test]
    fn join_keeps_tree_valid() {
        let net = net();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members = session(&net, 20, 1);
        let joiner = net
            .hosts
            .ids()
            .find(|h| !members.contains(h))
            .expect("some host outside the session");
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let mut t = amcast(&p);
        add_member(&p, &mut t, joiner).unwrap();
        assert!(t.contains(joiner));
        t.validate(&net.latency, dbound).unwrap();
    }

    #[test]
    fn join_fails_cleanly_when_tree_is_saturated() {
        struct Uniform;
        impl LatencyModel for Uniform {
            fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
                if a == b {
                    0.0
                } else {
                    10.0
                }
            }
            fn num_hosts(&self) -> usize {
                10
            }
        }
        // Root bound 2, everyone else bound 1 (no child slots): the tree
        // saturates at root + 2 children.
        let dbound = |h: HostId| if h == HostId(0) { 2 } else { 1 };
        let members: Vec<HostId> = (0..3).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &Uniform, dbound);
        let mut t = amcast(&p);
        assert_eq!(t.len(), 3);
        assert_eq!(add_member(&p, &mut t, HostId(5)), Err(NoCapacity));
        t.validate(&Uniform, dbound).unwrap();
    }

    #[test]
    fn leave_reattaches_orphans_and_stays_valid() {
        let net = net();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members = session(&net, 30, 2);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let t = amcast(&p);
        // Remove an internal node (one with children) if any, else a leaf.
        let leaver = members
            .iter()
            .copied()
            .find(|&m| m != t.root() && t.child_count(m) > 0)
            .unwrap_or(members[1]);
        let orphans = t.children_of(leaver).len();
        let rebuilt = remove_member(&p, &t, leaver).unwrap();
        assert!(!rebuilt.contains(leaver));
        assert_eq!(rebuilt.len(), t.len() - 1);
        rebuilt.validate(&net.latency, dbound).unwrap();
        // All orphans still present.
        for c in t.children_of(leaver) {
            assert!(rebuilt.contains(c), "orphan lost");
        }
        let _ = orphans;
    }

    #[test]
    #[should_panic(expected = "root cannot leave")]
    fn root_cannot_leave() {
        let net = net();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members = session(&net, 10, 3);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let t = amcast(&p);
        let _ = remove_member(&p, &t, t.root());
    }

    #[test]
    fn pruning_reclaims_helpers_after_members_leave() {
        let net = net();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members = session(&net, 25, 4);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let pool = HelperPool::new(net.hosts.ids().collect());
        let mut t = critical(&p, &pool);
        let helpers_before = helpers_used(&t, &members).len();
        if helpers_before == 0 {
            return; // nothing to prune on this seed; other seeds cover it
        }
        // Remove every member that sits under a helper, then prune.
        let helper_set = helpers_used(&t, &members);
        let mut under_helpers: Vec<HostId> = members
            .iter()
            .copied()
            .filter(|&m| {
                m != t.root() && t.parent_of(m).map(|pp| helper_set.contains(&pp)) == Some(true)
            })
            .collect();
        // Leaves first so removals stay simple.
        under_helpers.sort_by_key(|&m| std::cmp::Reverse((t.height_of(m) * 1000.0) as u64));
        for m in under_helpers {
            t = remove_member(&p, &t, m).unwrap();
        }
        let pruned = prune_idle_helpers(&p, &mut t, &members);
        t.validate(&net.latency, dbound).unwrap();
        assert!(
            !pruned.is_empty(),
            "expected at least one idle helper to be reclaimed"
        );
        for h in &pruned {
            assert!(!t.contains(*h));
        }
    }

    #[test]
    fn crash_repair_reattaches_all_survivors() {
        let net = net();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members = session(&net, 40, 7);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let t = amcast(&p);
        // Crash three non-root members at once.
        let dead: Vec<HostId> = members
            .iter()
            .copied()
            .filter(|&m| m != t.root())
            .take(3)
            .collect();
        let (repaired, report) = reattach_orphans(&p, &t, &dead, &ReattachConfig::default());
        assert_eq!(report.gave_up, 0, "orphans gave up: {report:?}");
        repaired.validate(&net.latency, dbound).unwrap();
        for m in &members {
            if dead.contains(m) {
                assert!(!repaired.contains(*m), "dead host still in tree");
            } else {
                assert!(repaired.contains(*m), "survivor lost in repair");
            }
        }
    }

    #[test]
    fn orphaned_subtree_roots_are_the_live_children_of_the_dead() {
        let net = net();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members = session(&net, 40, 7);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let t = amcast(&p);
        let dead: Vec<HostId> = members
            .iter()
            .copied()
            .filter(|&m| m != t.root())
            .take(3)
            .collect();
        let mut expected: Vec<HostId> = dead
            .iter()
            .flat_map(|&d| t.children_of(d))
            .filter(|c| !dead.contains(c))
            .collect();
        expected.sort_unstable();
        expected.dedup();
        let mut got = orphaned_subtree_roots(&t, &dead);
        got.sort_unstable();
        assert_eq!(got, expected);
        // Consistency with the repair itself: it re-attaches exactly the
        // orphan roots that do not give up.
        let (_, report) = reattach_orphans(&p, &t, &dead, &ReattachConfig::default());
        assert_eq!(report.reattached + report.gave_up, got.len());
    }

    struct Table;
    impl LatencyModel for Table {
        fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
            let (a, b) = (a.0.min(b.0), a.0.max(b.0));
            match (a, b) {
                _ if a == b => 0.0,
                (1, 2) => 1.0, // the dead host is the orphan's closest pick
                (2, 3) => 2.0,
                (0, 2) => 3.0,
                _ => 10.0,
            }
        }
        fn num_hosts(&self) -> usize {
            4
        }
    }

    fn chain_tree() -> MulticastTree {
        // 0 → 1 → 2, plus 3 under 0.
        let mut t = MulticastTree::new(HostId(0));
        t.attach(HostId(1), HostId(0), Table.latency_ms(HostId(0), HostId(1)));
        t.attach(HostId(2), HostId(1), Table.latency_ms(HostId(1), HostId(2)));
        t.attach(HostId(3), HostId(0), Table.latency_ms(HostId(0), HostId(3)));
        t
    }

    #[test]
    fn crash_repair_retries_past_a_dead_first_choice() {
        // Orphan 2's stale view ranks the dead host 1 first: the first
        // attempt must fail, back off, and the second succeed.
        let dbound = |_h: HostId| 4u32;
        let members: Vec<HostId> = (0..4).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &Table, dbound);
        let t = chain_tree();
        let cfg = ReattachConfig::default();
        let (repaired, report) = reattach_orphans(&p, &t, &[HostId(1)], &cfg);
        assert_eq!(report.reattached, 1);
        assert_eq!(report.retries, 1, "dead first choice must cost a retry");
        assert_eq!(report.gave_up, 0);
        assert_eq!(report.duration, cfg.backoff, "one backoff step expected");
        assert_eq!(repaired.parent_of(HostId(2)), Some(HostId(3)));
        repaired.validate(&Table, dbound).unwrap();
    }

    #[test]
    fn crash_repair_gives_up_when_attempts_run_out() {
        let dbound = |_h: HostId| 4u32;
        let members: Vec<HostId> = (0..4).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &Table, dbound);
        let t = chain_tree();
        let cfg = ReattachConfig {
            max_attempts: 1,
            ..ReattachConfig::default()
        };
        let (repaired, report) = reattach_orphans(&p, &t, &[HostId(1)], &cfg);
        assert_eq!(report.gave_up, 1, "one attempt hits the dead host only");
        assert_eq!(report.reattached, 0);
        assert!(!repaired.contains(HostId(2)));
        repaired.validate(&Table, dbound).unwrap();
    }

    #[test]
    fn repeated_churn_preserves_validity() {
        let net = net();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members = session(&net, 20, 5);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let mut t = amcast(&p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut present: Vec<HostId> = members.clone();
        let mut fresh: Vec<HostId> = net.hosts.ids().filter(|h| !members.contains(h)).collect();
        for _step in 0..40 {
            use rand::Rng;
            if rng.random::<bool>() || present.len() <= 3 {
                // join a fresh host
                let h = fresh.pop().expect("enough fresh hosts");
                if add_member(&p, &mut t, h).is_ok() {
                    present.push(h);
                }
            } else {
                let idx = rng.random_range(1..present.len());
                let leaver = present[idx];
                if leaver != t.root() {
                    t = remove_member(&p, &t, leaver).unwrap();
                    present.swap_remove(idx);
                }
            }
            t.validate(&net.latency, dbound).unwrap();
        }
    }
}
