//! Dynamic session membership (the extension §5 flags: "the algorithm can
//! be extended to accommodate dynamic membership as well").
//!
//! Incremental operations on a live multicast tree:
//!
//! * [`add_member`] — a late joiner attaches to the best node with free
//!   capacity (the same relaxation rule the greedy builder uses);
//! * [`remove_member`] — a leaver's orphaned subtrees re-attach greedily,
//!   and helpers left without children are pruned back to the pool;
//! * [`prune_idle_helpers`] — reclaim helpers that no longer forward to
//!   anyone (returning their degrees to the pool is the caller's job).
//!
//! Incremental repair trades optimality for disruption: only the paths
//! through the leaver change. A session can always fall back to a full
//! replan (`critical` + `adjust`) on its periodic rescheduling tick.

use netsim::{HostId, LatencyModel};

use crate::amcast::best_attachment;
use crate::problem::Problem;
use crate::tree::MulticastTree;

/// A join or repair could not find any node with free capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoCapacity;

impl std::fmt::Display for NoCapacity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no tree node has a free child slot")
    }
}
impl std::error::Error for NoCapacity {}

/// Attach a late joiner to the best node with free capacity.
///
/// # Panics
/// If `v` is already in the tree.
pub fn add_member<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &mut MulticastTree,
    v: HostId,
) -> Result<(), NoCapacity> {
    assert!(!tree.contains(v), "joiner already in tree");
    let (_, parent) = best_attachment(p, tree, v).ok_or(NoCapacity)?;
    tree.attach(v, parent, p.latency.latency_ms(parent, v));
    Ok(())
}

/// Remove `v` from the tree, greedily re-attaching its orphaned subtrees.
/// Returns the rebuilt tree (the original is consumed conceptually: pass a
/// clone if you need the old one).
///
/// # Panics
/// If `v` is the tree root (the session source cannot leave — the session
/// ends instead), or `v` is not in the tree.
pub fn remove_member<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &MulticastTree,
    v: HostId,
) -> Result<MulticastTree, NoCapacity> {
    assert!(tree.contains(v), "leaver not in tree");
    assert!(v != tree.root(), "the session root cannot leave");

    // Residual capacity each survivor will have once its *old* children are
    // all copied over: dbound − old degree (+1 for v's old parent, whose
    // edge to v disappears). Orphans may only take these residual slots —
    // checking against the partially rebuilt tree alone would overcommit
    // nodes whose old children simply haven't been copied yet.
    let mut residual: std::collections::HashMap<HostId, i64> = tree
        .hosts()
        .iter()
        .filter(|&&u| u != v)
        .map(|&u| {
            let mut r = (p.dbound)(u) as i64 - tree.degree(u) as i64;
            if tree.parent_of(v) == Some(u) {
                r += 1;
            }
            (u, r)
        })
        .collect();

    // Rebuild: walk the old tree in BFS order (parent-before-child even
    // after adjustment surgery); everyone keeps their parent except v
    // (skipped) and v's children (re-attached greedily).
    let mut rebuilt = MulticastTree::new(tree.root());
    for u in tree.bfs_order() {
        if u == tree.root() || u == v {
            continue;
        }
        let old_parent = tree.parent_of(u).expect("non-root has a parent");
        if old_parent == v {
            // Orphan: best node with *residual* capacity (only direct
            // children of v take this branch — order is parent-first).
            let (_, w) = rebuilt
                .hosts()
                .iter()
                .copied()
                .filter(|w| residual.get(w).copied().unwrap_or(0) > 0)
                .map(|w| (rebuilt.height_of(w) + p.latency.latency_ms(w, u), w))
                .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)))
                .ok_or(NoCapacity)?;
            *residual.get_mut(&w).expect("candidate accounted") -= 1;
            rebuilt.attach(u, w, p.latency.latency_ms(w, u));
        } else {
            rebuilt.attach(u, old_parent, p.latency.latency_ms(old_parent, u));
        }
    }
    Ok(rebuilt)
}

/// Remove helpers (tree nodes outside `members`) that have no children,
/// repeatedly, until none remain. Returns the pruned helpers.
pub fn prune_idle_helpers<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &mut MulticastTree,
    members: &[HostId],
) -> Vec<HostId> {
    let mut pruned = Vec::new();
    loop {
        let idle: Vec<HostId> = tree
            .hosts()
            .iter()
            .copied()
            .filter(|h| {
                !members.contains(h) && *h != tree.root() && tree.child_count(*h) == 0
            })
            .collect();
        if idle.is_empty() {
            return pruned;
        }
        // Rebuild without the idle helpers (they are leaves, so everyone
        // else keeps their parent).
        let mut rebuilt = MulticastTree::new(tree.root());
        for u in tree.bfs_order() {
            if u == tree.root() || idle.contains(&u) {
                continue;
            }
            let parent = tree.parent_of(u).expect("non-root");
            rebuilt.attach(u, parent, p.latency.latency_ms(parent, u));
        }
        pruned.extend(idle);
        *tree = rebuilt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amcast::amcast;
    use crate::critical::{critical, helpers_used, HelperPool};
    use netsim::{Network, NetworkConfig};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn net() -> Network {
        Network::generate(
            &NetworkConfig {
                num_hosts: 400,
                ..NetworkConfig::default()
            },
            91,
        )
    }

    fn session(net: &Network, size: usize, seed: u64) -> Vec<HostId> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut all: Vec<u32> = (0..net.num_hosts() as u32).collect();
        all.shuffle(&mut rng);
        all[..size].iter().copied().map(HostId).collect()
    }

    #[test]
    fn join_keeps_tree_valid() {
        let net = net();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members = session(&net, 20, 1);
        let joiner = net
            .hosts
            .ids()
            .find(|h| !members.contains(h))
            .expect("some host outside the session");
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let mut t = amcast(&p);
        add_member(&p, &mut t, joiner).unwrap();
        assert!(t.contains(joiner));
        t.validate(&net.latency, dbound).unwrap();
    }

    #[test]
    fn join_fails_cleanly_when_tree_is_saturated() {
        struct Uniform;
        impl LatencyModel for Uniform {
            fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
                if a == b {
                    0.0
                } else {
                    10.0
                }
            }
            fn num_hosts(&self) -> usize {
                10
            }
        }
        // Root bound 2, everyone else bound 1 (no child slots): the tree
        // saturates at root + 2 children.
        let dbound = |h: HostId| if h == HostId(0) { 2 } else { 1 };
        let members: Vec<HostId> = (0..3).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &Uniform, dbound);
        let mut t = amcast(&p);
        assert_eq!(t.len(), 3);
        assert_eq!(add_member(&p, &mut t, HostId(5)), Err(NoCapacity));
        t.validate(&Uniform, dbound).unwrap();
    }

    #[test]
    fn leave_reattaches_orphans_and_stays_valid() {
        let net = net();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members = session(&net, 30, 2);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let t = amcast(&p);
        // Remove an internal node (one with children) if any, else a leaf.
        let leaver = members
            .iter()
            .copied()
            .find(|&m| m != t.root() && t.child_count(m) > 0)
            .unwrap_or(members[1]);
        let orphans = t.children_of(leaver).len();
        let rebuilt = remove_member(&p, &t, leaver).unwrap();
        assert!(!rebuilt.contains(leaver));
        assert_eq!(rebuilt.len(), t.len() - 1);
        rebuilt.validate(&net.latency, dbound).unwrap();
        // All orphans still present.
        for c in t.children_of(leaver) {
            assert!(rebuilt.contains(c), "orphan lost");
        }
        let _ = orphans;
    }

    #[test]
    #[should_panic(expected = "root cannot leave")]
    fn root_cannot_leave() {
        let net = net();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members = session(&net, 10, 3);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let t = amcast(&p);
        let _ = remove_member(&p, &t, t.root());
    }

    #[test]
    fn pruning_reclaims_helpers_after_members_leave() {
        let net = net();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members = session(&net, 25, 4);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let pool = HelperPool::new(net.hosts.ids().collect());
        let mut t = critical(&p, &pool);
        let helpers_before = helpers_used(&t, &members).len();
        if helpers_before == 0 {
            return; // nothing to prune on this seed; other seeds cover it
        }
        // Remove every member that sits under a helper, then prune.
        let helper_set = helpers_used(&t, &members);
        let mut under_helpers: Vec<HostId> = members
            .iter()
            .copied()
            .filter(|&m| {
                m != t.root() && t.parent_of(m).map(|pp| helper_set.contains(&pp)) == Some(true)
            })
            .collect();
        // Leaves first so removals stay simple.
        under_helpers.sort_by_key(|&m| std::cmp::Reverse((t.height_of(m) * 1000.0) as u64));
        for m in under_helpers {
            t = remove_member(&p, &t, m).unwrap();
        }
        let pruned = prune_idle_helpers(&p, &mut t, &members);
        t.validate(&net.latency, dbound).unwrap();
        assert!(
            !pruned.is_empty(),
            "expected at least one idle helper to be reclaimed"
        );
        for h in &pruned {
            assert!(!t.contains(*h));
        }
    }

    #[test]
    fn repeated_churn_preserves_validity() {
        let net = net();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let members = session(&net, 20, 5);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let mut t = amcast(&p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut present: Vec<HostId> = members.clone();
        let mut fresh: Vec<HostId> = net.hosts.ids().filter(|h| !members.contains(h)).collect();
        for _step in 0..40 {
            use rand::Rng;
            if rng.random::<bool>() || present.len() <= 3 {
                // join a fresh host
                let h = fresh.pop().expect("enough fresh hosts");
                if add_member(&p, &mut t, h).is_ok() {
                    present.push(h);
                }
            } else {
                let idx = rng.random_range(1..present.len());
                let leaver = present[idx];
                if leaver != t.root() {
                    t = remove_member(&p, &t, leaver).unwrap();
                    present.swap_remove(idx);
                }
            }
            t.validate(&net.latency, dbound).unwrap();
        }
    }
}
