//! The AMCast greedy heuristic (Figure 6 without the dashed box).
//!
//! Grow the tree from the root. Every pending member tracks its best
//! attachment point — the tree node with free capacity minimizing the
//! member's resulting height. Each iteration absorbs the pending member of
//! minimum tentative height, then relaxes the remaining members against the
//! newly added node (and recomputes any member whose chosen parent just ran
//! out of degree). O(N³) worst case, as in the paper.
//!
//! The same engine drives the critical-node variant: a `HelperFinder`
//! hook fires when a chosen parent's free degree drops to one, and may
//! splice a pool helper in between (the dashed box).

use std::collections::HashMap;

use netsim::{HostId, LatencyModel};

use crate::problem::Problem;
use crate::tree::MulticastTree;

/// Hook invoked by the greedy engine at the *critical* moment: `parent` has
/// exactly one free child slot and `u` is about to take it.
pub(crate) trait HelperFinder<L: LatencyModel> {
    /// Return a helper to splice under `parent` (the helper then adopts
    /// `u`), or `None` to proceed normally. `siblings` are the pending
    /// members (u included) whose current best parent is `parent` — the
    /// helper's likely future children.
    fn find(
        &mut self,
        tree: &MulticastTree,
        parent: HostId,
        u: HostId,
        siblings: &[HostId],
        latency: &L,
    ) -> Option<HostId>;
}

/// The no-op finder: plain AMCast.
pub(crate) struct NoHelper;
impl<L: LatencyModel> HelperFinder<L> for NoHelper {
    fn find(
        &mut self,
        _tree: &MulticastTree,
        _parent: HostId,
        _u: HostId,
        _siblings: &[HostId],
        _latency: &L,
    ) -> Option<HostId> {
        None
    }
}

/// Plain AMCast: build the greedy degree-bounded tree over the member set.
///
/// # Panics
/// If the members' degree bounds cannot host a spanning tree (infeasible
/// only when every member has bound 1; the paper's distribution starts
/// at 2).
pub fn amcast<L: LatencyModel, D: Fn(HostId) -> u32>(p: &Problem<L, D>) -> MulticastTree {
    greedy_engine(p, &mut NoHelper)
}

/// The shared greedy engine.
pub(crate) fn greedy_engine<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    finder: &mut impl HelperFinder<L>,
) -> MulticastTree {
    let mut tree = MulticastTree::new(p.root);
    let mut pending: Vec<HostId> = p.members.iter().copied().filter(|&m| m != p.root).collect();
    // Best attachment per pending member: (resulting height, parent).
    let mut best: HashMap<HostId, (f64, HostId)> = pending
        .iter()
        .map(|&v| (v, (p.latency.latency_ms(p.root, v), p.root)))
        .collect();

    while !pending.is_empty() {
        // The pending member with minimum tentative height.
        let (pos, &u) = pending
            .iter()
            .enumerate()
            .min_by(|a, b| {
                let ha = best[a.1].0;
                let hb = best[b.1].0;
                ha.partial_cmp(&hb).unwrap().then(a.1.cmp(b.1))
            })
            .expect("pending non-empty");
        let (_, pu) = best[&u];
        pending.swap_remove(pos);
        best.remove(&u);

        debug_assert!(
            p.free_child_slots(&tree, pu) >= 1,
            "chosen parent has no capacity — best-parent bookkeeping broken"
        );

        // Critical moment: the chosen parent is about to fill up.
        let mut spliced: Option<HostId> = None;
        if p.free_child_slots(&tree, pu) == 1 {
            let siblings: Vec<HostId> = std::iter::once(u)
                .chain(pending.iter().copied().filter(|v| best[v].1 == pu))
                .collect();
            if let Some(h) = finder.find(&tree, pu, u, &siblings, p.latency) {
                debug_assert!(!tree.contains(h), "helper already in tree");
                tree.attach(h, pu, p.latency.latency_ms(pu, h));
                tree.attach(u, h, p.latency.latency_ms(h, u));
                spliced = Some(h);
            }
        }
        if spliced.is_none() {
            tree.attach(u, pu, p.latency.latency_ms(pu, u));
        }

        // Relax remaining members against the newly added node(s), and
        // recompute anyone whose chosen parent just became full.
        let newly_added: Vec<HostId> = spliced.into_iter().chain(std::iter::once(u)).collect();
        for v in pending.clone() {
            let (mut hv, mut pv) = best[&v];
            if p.free_child_slots(&tree, pv) == 0 {
                // Full recompute over tree nodes with capacity.
                let (nh, np) = best_attachment(p, &tree, v)
                    .expect("tree out of capacity for remaining members");
                hv = nh;
                pv = np;
            } else {
                for &w in &newly_added {
                    if p.free_child_slots(&tree, w) >= 1 {
                        let cand = tree.height_of(w) + p.latency.latency_ms(w, v);
                        if cand < hv {
                            hv = cand;
                            pv = w;
                        }
                    }
                }
            }
            best.insert(v, (hv, pv));
        }
    }
    tree
}

/// The best attachment point for `v`: min height over tree nodes with free
/// capacity.
pub(crate) fn best_attachment<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &MulticastTree,
    v: HostId,
) -> Option<(f64, HostId)> {
    tree.hosts()
        .iter()
        .filter(|&&w| p.free_child_slots(tree, w) >= 1)
        .map(|&w| (tree.height_of(w) + p.latency.latency_ms(w, v), w))
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Network, NetworkConfig};

    struct Uniform;
    impl LatencyModel for Uniform {
        fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
            if a == b {
                0.0
            } else {
                10.0
            }
        }
        fn num_hosts(&self) -> usize {
            1000
        }
    }

    fn net(n: usize, seed: u64) -> Network {
        Network::generate(
            &NetworkConfig {
                transit_domains: 2,
                transit_per_domain: 3,
                stub_domains_per_transit: 2,
                routers_per_stub: 3,
                num_hosts: n,
                ..NetworkConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn spans_all_members_and_respects_bounds() {
        let net = net(300, 1);
        let members: Vec<HostId> = (0..80).map(HostId).collect();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(HostId(0), members.clone(), &net.latency, dbound);
        let t = amcast(&p);
        assert_eq!(t.len(), members.len());
        for &m in &members {
            assert!(t.contains(m));
        }
        t.validate(&net.latency, dbound).unwrap();
    }

    #[test]
    fn unbounded_uniform_case_is_a_star() {
        // With huge degree bounds and uniform latency, everyone attaches
        // straight to the root: height = one hop.
        let members: Vec<HostId> = (0..20).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &Uniform, |_| 100);
        let t = amcast(&p);
        assert_eq!(t.max_height(), 10.0);
        assert_eq!(t.child_count(HostId(0)), 19);
    }

    #[test]
    fn degree_two_everywhere_forms_feasible_tree() {
        // Bound 2 on everyone forces a path-like tree; must stay feasible.
        let members: Vec<HostId> = (0..15).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &Uniform, |_| 2);
        let t = amcast(&p);
        t.validate(&Uniform, |_| 2).unwrap();
        assert_eq!(t.len(), 15);
        // Bound 2: the root (no parent link) anchors two chains of 7,
        // everyone else is a link in a chain → height 7 hops.
        assert_eq!(t.max_height(), 70.0);
        assert_eq!(t.child_count(HostId(0)), 2);
    }

    #[test]
    fn greedy_height_is_no_worse_than_a_path() {
        let net = net(300, 2);
        let members: Vec<HostId> = (0..60).map(HostId).collect();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(HostId(0), members.clone(), &net.latency, dbound);
        let t = amcast(&p);
        // Crude sanity: greedy must beat chaining members in id order.
        let mut path_height = 0.0;
        let mut worst: f64 = 0.0;
        for w in members.windows(2) {
            path_height += net.latency.latency_ms(w[0], w[1]);
            worst = worst.max(path_height);
        }
        assert!(t.max_height() < worst);
    }

    #[test]
    fn two_member_session() {
        let p = Problem::new(HostId(0), vec![HostId(1)], &Uniform, |_| 2);
        let t = amcast(&p);
        assert_eq!(t.len(), 2);
        assert_eq!(t.parent_of(HostId(1)), Some(HostId(0)));
    }

    #[test]
    fn deterministic() {
        let net = net(200, 3);
        let members: Vec<HostId> = (0..50).map(HostId).collect();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(HostId(0), members, &net.latency, dbound);
        let a = amcast(&p);
        let b = amcast(&p);
        assert_eq!(a.hosts(), b.hosts());
        assert_eq!(a.max_height(), b.max_height());
    }
}
