//! The AMCast greedy heuristic (Figure 6 without the dashed box).
//!
//! Grow the tree from the root. Every pending member tracks its best
//! attachment point — the tree node with free capacity minimizing the
//! member's resulting height. Each iteration absorbs the pending member of
//! minimum tentative height, then relaxes the remaining members against the
//! newly added node (and recomputes any member whose chosen parent just ran
//! out of degree).
//!
//! Two engines implement that loop:
//!
//! * [`greedy_engine`] — the incremental engine used by [`amcast`] and
//!   [`critical`](crate::critical::critical): a lazy-invalidation priority
//!   queue selects the next member in O(log N), dense arrays replace hash
//!   maps on the hot path, and the recompute step walks a height-ordered
//!   capacity index that terminates as soon as no later node can win.
//!   Bit-identical to the reference (see DESIGN.md §11 for the argument).
//! * [`greedy_engine_reference`] — the paper's naive O(N³) formulation,
//!   retained verbatim as the A/B baseline for the equivalence proptests
//!   and the `perf_planner` sweep.
//!
//! The same engine drives the critical-node variant: a `HelperFinder`
//! hook fires when a chosen parent's free degree drops to one, and may
//! splice a pool helper in between (the dashed box).

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

use netsim::{HostId, LatencyModel};

use crate::metrics::add_relaxations;
use crate::problem::Problem;
use crate::tree::MulticastTree;

/// Hook invoked by the greedy engine at the *critical* moment: `parent` has
/// exactly one free child slot and `u` is about to take it.
pub(crate) trait HelperFinder<L: LatencyModel> {
    /// Return a helper to splice under `parent` (the helper then adopts
    /// `u`), or `None` to proceed normally. `siblings` are the pending
    /// members (u included) whose current best parent is `parent` — the
    /// helper's likely future children.
    fn find(
        &mut self,
        tree: &MulticastTree,
        parent: HostId,
        u: HostId,
        siblings: &[HostId],
        latency: &L,
    ) -> Option<HostId>;
}

/// The no-op finder: plain AMCast.
pub(crate) struct NoHelper;
impl<L: LatencyModel> HelperFinder<L> for NoHelper {
    fn find(
        &mut self,
        _tree: &MulticastTree,
        _parent: HostId,
        _u: HostId,
        _siblings: &[HostId],
        _latency: &L,
    ) -> Option<HostId> {
        None
    }
}

/// Plain AMCast: build the greedy degree-bounded tree over the member set.
///
/// # Panics
/// If the members' degree bounds cannot host a spanning tree (infeasible
/// only when every member has bound 1; the paper's distribution starts
/// at 2).
pub fn amcast<L: LatencyModel, D: Fn(HostId) -> u32>(p: &Problem<L, D>) -> MulticastTree {
    greedy_engine(p, &mut NoHelper)
}

/// [`amcast`], but returns `None` instead of panicking when the members'
/// degree bounds cannot host a spanning tree. This is the multipath
/// planner's entry point: standby trees are planned over *residual*
/// capacity (what the session's earlier trees left behind), where running
/// out of degrees is an expected outcome, not a caller bug.
pub fn try_amcast<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
) -> Option<MulticastTree> {
    try_greedy_engine(p, &mut NoHelper)
}

/// Plain AMCast via the retained reference engine. Produces trees
/// bit-identical to [`amcast`]; exists so the proptest equivalence suite and
/// the `perf_planner` A/B sweep can exercise the naive path.
pub fn amcast_reference<L: LatencyModel, D: Fn(HostId) -> u32>(p: &Problem<L, D>) -> MulticastTree {
    greedy_engine_reference(p, &mut NoHelper)
}

/// Total order on tentative heights. `total_cmp` matches `partial_cmp` on
/// the non-NaN, non-negative heights the engines produce, and stays a valid
/// total order (instead of panicking) should a poisoned model leak a NaN.
#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Dense per-host engine state, grown on demand so helper ids are safe even
/// when a finder hands back an id at the edge of the model's range.
struct EngineState {
    /// Height of in-tree nodes (mirrors `MulticastTree` exactly).
    height: Vec<f64>,
    /// Remaining child capacity of in-tree nodes.
    free: Vec<u32>,
    /// Tentative height of pending members.
    best_h: Vec<f64>,
    /// Tentative parent of pending members.
    best_p: Vec<HostId>,
    /// Index into the pending vec, `usize::MAX` when absorbed.
    pos: Vec<usize>,
    /// Pending members filed under their tentative parent. Entries go stale
    /// when a member's parent changes (no eager removal) and may repeat;
    /// readers filter against `best_p`/`pos` and dedup.
    by_parent: Vec<Vec<HostId>>,
}

impl EngineState {
    fn new(n: usize) -> EngineState {
        EngineState {
            height: vec![0.0; n],
            free: vec![0; n],
            best_h: vec![f64::INFINITY; n],
            best_p: vec![HostId(u32::MAX); n],
            pos: vec![usize::MAX; n],
            by_parent: vec![Vec::new(); n],
        }
    }

    fn ensure(&mut self, i: usize) {
        if i >= self.pos.len() {
            let n = i + 1;
            self.height.resize(n, 0.0);
            self.free.resize(n, 0);
            self.best_h.resize(n, f64::INFINITY);
            self.best_p.resize(n, HostId(u32::MAX));
            self.pos.resize(n, usize::MAX);
            self.by_parent.resize(n, Vec::new());
        }
    }

    /// Pending members currently filed under `parent`, in pending-vec order
    /// (the order the reference engine's linear filter would produce).
    fn members_of(&mut self, parent: HostId) -> Vec<HostId> {
        let list = std::mem::take(&mut self.by_parent[parent.idx()]);
        let mut keep: Vec<(usize, HostId)> = list
            .into_iter()
            .filter(|&v| self.pos[v.idx()] != usize::MAX && self.best_p[v.idx()] == parent)
            .map(|v| (self.pos[v.idx()], v))
            .collect();
        keep.sort_unstable();
        keep.dedup();
        let out: Vec<HostId> = keep.into_iter().map(|(_, v)| v).collect();
        // Readers that only peek (the sibling list) put the survivors back.
        self.by_parent[parent.idx()] = out.clone();
        out
    }
}

/// The shared greedy engine — incremental formulation.
///
/// Produces exactly the tree the reference engine produces (same floats,
/// same attachment order, same helper calls); see DESIGN.md §11 for the
/// equivalence argument. The two result-neutral prunes are:
///
/// * relaxation against a new node `w` is skipped when
///   `height(w) >= best(v)` — with `latency >= 0` the candidate score can
///   never strictly beat the incumbent;
/// * the full recompute walks capacity nodes in ascending `(height, id)`
///   and stops once `height(w)` exceeds the best score found — every later
///   candidate scores strictly worse.
pub(crate) fn greedy_engine<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    finder: &mut impl HelperFinder<L>,
) -> MulticastTree {
    try_greedy_engine(p, finder).expect("tree out of capacity for remaining members")
}

/// Fallible core of [`greedy_engine`]: `None` when the tree runs out of
/// child slots with members still pending. The success path is bit-identical
/// to the historical panicking engine — same floats, same attachment order,
/// same helper calls.
pub(crate) fn try_greedy_engine<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    finder: &mut impl HelperFinder<L>,
) -> Option<MulticastTree> {
    let mut relaxed: u64 = 0;
    let mut tree = MulticastTree::new(p.root);
    let mut st = EngineState::new(p.latency.num_hosts());
    st.ensure(p.root.idx());
    for &m in &p.members {
        st.ensure(m.idx());
    }

    // Height-ordered index of tree nodes with spare capacity.
    let mut cap: BTreeSet<(OrdF64, HostId)> = BTreeSet::new();
    st.free[p.root.idx()] = p.free_child_slots(&tree, p.root);
    if st.free[p.root.idx()] >= 1 {
        cap.insert((OrdF64(0.0), p.root));
    }

    let mut pending: Vec<HostId> = p.members.iter().copied().filter(|&m| m != p.root).collect();
    // Lazy-invalidation selection queue: entries are (tentative height, id)
    // snapshots; stale ones are discarded at pop time.
    let mut heap: BinaryHeap<Reverse<(OrdF64, HostId)>> =
        BinaryHeap::with_capacity(pending.len() + 1);
    for (i, &v) in pending.iter().enumerate() {
        st.pos[v.idx()] = i;
        relaxed += 1;
        let h0 = p.latency.latency_ms(p.root, v);
        st.best_h[v.idx()] = h0;
        st.best_p[v.idx()] = p.root;
        st.by_parent[p.root.idx()].push(v);
        heap.push(Reverse((OrdF64(h0), v)));
    }

    while !pending.is_empty() {
        // The pending member with minimum (tentative height, id). A drained
        // heap with members still pending means an orphan recompute already
        // failed — out of capacity.
        let u = loop {
            let Reverse((OrdF64(h), v)) = heap.pop()?;
            if st.pos[v.idx()] != usize::MAX && st.best_h[v.idx()] == h {
                break v;
            }
        };
        let pu = st.best_p[u.idx()];

        // Remove u from pending, replicating the reference's swap_remove.
        let up = st.pos[u.idx()];
        pending.swap_remove(up);
        if up < pending.len() {
            st.pos[pending[up].idx()] = up;
        }
        st.pos[u.idx()] = usize::MAX;

        debug_assert!(
            st.free[pu.idx()] >= 1,
            "chosen parent has no capacity — best-parent bookkeeping broken"
        );

        // Critical moment: the chosen parent is about to fill up.
        let mut spliced: Option<HostId> = None;
        if st.free[pu.idx()] == 1 {
            let siblings: Vec<HostId> = std::iter::once(u).chain(st.members_of(pu)).collect();
            if let Some(h) = finder.find(&tree, pu, u, &siblings, p.latency) {
                debug_assert!(!tree.contains(h), "helper already in tree");
                st.ensure(h.idx());
                tree.attach(h, pu, p.latency.latency_ms(pu, h));
                tree.attach(u, h, p.latency.latency_ms(h, u));
                spliced = Some(h);
            }
        }
        if spliced.is_none() {
            tree.attach(u, pu, p.latency.latency_ms(pu, u));
        }

        // Mirror the attachment into the dense state. Heights are read back
        // from the tree so both engines share one source of arithmetic.
        if let Some(h) = spliced {
            st.height[h.idx()] = tree.height_of(h);
            st.free[h.idx()] = p.free_child_slots(&tree, h);
            if st.free[h.idx()] >= 1 {
                cap.insert((OrdF64(st.height[h.idx()]), h));
            }
        }
        st.height[u.idx()] = tree.height_of(u);
        st.free[u.idx()] = p.free_child_slots(&tree, u);
        if st.free[u.idx()] >= 1 {
            cap.insert((OrdF64(st.height[u.idx()]), u));
        }
        st.free[pu.idx()] -= 1;
        let pu_full = st.free[pu.idx()] == 0;
        if pu_full {
            cap.remove(&(OrdF64(st.height[pu.idx()]), pu));
        }

        // Relax survivors against the newly added node(s). Members whose
        // chosen parent just filled (== pu) are recomputed below instead —
        // only pu lost capacity this iteration, so nobody else's parent can
        // have gone full.
        let mut news: [(HostId, f64); 2] = [(HostId(0), 0.0); 2];
        let mut nn = 0;
        if let Some(h) = spliced {
            if st.free[h.idx()] >= 1 {
                news[nn] = (h, st.height[h.idx()]);
                nn += 1;
            }
        }
        if st.free[u.idx()] >= 1 {
            news[nn] = (u, st.height[u.idx()]);
            nn += 1;
        }
        if nn > 0 {
            for &v in &pending {
                if pu_full && st.best_p[v.idx()] == pu {
                    continue;
                }
                let mut hv = st.best_h[v.idx()];
                let mut pv = st.best_p[v.idx()];
                let mut touched = false;
                for &(w, hw) in &news[..nn] {
                    // latency >= 0: a node at or above the incumbent height
                    // cannot strictly improve, so skip the evaluation.
                    if hw < hv {
                        relaxed += 1;
                        let cand = hw + p.latency.latency_ms(w, v);
                        if cand < hv {
                            hv = cand;
                            pv = w;
                            touched = true;
                        }
                    }
                }
                if touched {
                    st.best_h[v.idx()] = hv;
                    st.best_p[v.idx()] = pv;
                    st.by_parent[pv.idx()].push(v);
                    heap.push(Reverse((OrdF64(hv), v)));
                }
            }
        }

        // Recompute members orphaned by pu filling up: scan the capacity
        // index in ascending (height, id) until no later node can win.
        if pu_full {
            let orphans = st.members_of(pu);
            st.by_parent[pu.idx()].clear();
            for v in orphans {
                let mut bs = f64::INFINITY;
                let mut bw: Option<HostId> = None;
                for &(OrdF64(hw), w) in cap.iter() {
                    if hw > bs {
                        break;
                    }
                    relaxed += 1;
                    let cand = hw + p.latency.latency_ms(w, v);
                    if cand < bs || (cand == bs && bw.is_some_and(|x| w < x)) {
                        bs = cand;
                        bw = Some(w);
                    }
                }
                let np = bw?;
                st.best_h[v.idx()] = bs;
                st.best_p[v.idx()] = np;
                st.by_parent[np.idx()].push(v);
                heap.push(Reverse((OrdF64(bs), v)));
            }
        }
    }
    add_relaxations(relaxed);
    Some(tree)
}

/// The reference greedy engine: the paper's relax-everything loop, O(N³)
/// worst case. Kept verbatim (plus the relaxation counter) as the baseline
/// the incremental engine is validated and benchmarked against.
pub(crate) fn greedy_engine_reference<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    finder: &mut impl HelperFinder<L>,
) -> MulticastTree {
    let mut relaxed: u64 = 0;
    let mut tree = MulticastTree::new(p.root);
    let mut pending: Vec<HostId> = p.members.iter().copied().filter(|&m| m != p.root).collect();
    // Best attachment per pending member: (resulting height, parent).
    let mut best: HashMap<HostId, (f64, HostId)> = pending
        .iter()
        .map(|&v| {
            relaxed += 1;
            (v, (p.latency.latency_ms(p.root, v), p.root))
        })
        .collect();

    while !pending.is_empty() {
        // The pending member with minimum tentative height.
        let (pos, &u) = pending
            .iter()
            .enumerate()
            .min_by(|a, b| {
                let ha = best[a.1].0;
                let hb = best[b.1].0;
                ha.total_cmp(&hb).then(a.1.cmp(b.1))
            })
            .expect("pending non-empty");
        let (_, pu) = best[&u];
        pending.swap_remove(pos);
        best.remove(&u);

        debug_assert!(
            p.free_child_slots(&tree, pu) >= 1,
            "chosen parent has no capacity — best-parent bookkeeping broken"
        );

        // Critical moment: the chosen parent is about to fill up.
        let mut spliced: Option<HostId> = None;
        if p.free_child_slots(&tree, pu) == 1 {
            let siblings: Vec<HostId> = std::iter::once(u)
                .chain(pending.iter().copied().filter(|v| best[v].1 == pu))
                .collect();
            if let Some(h) = finder.find(&tree, pu, u, &siblings, p.latency) {
                debug_assert!(!tree.contains(h), "helper already in tree");
                tree.attach(h, pu, p.latency.latency_ms(pu, h));
                tree.attach(u, h, p.latency.latency_ms(h, u));
                spliced = Some(h);
            }
        }
        if spliced.is_none() {
            tree.attach(u, pu, p.latency.latency_ms(pu, u));
        }

        // Relax remaining members against the newly added node(s), and
        // recompute anyone whose chosen parent just became full.
        let newly_added: Vec<HostId> = spliced.into_iter().chain(std::iter::once(u)).collect();
        for v in pending.clone() {
            let (mut hv, mut pv) = best[&v];
            if p.free_child_slots(&tree, pv) == 0 {
                // Full recompute over tree nodes with capacity.
                let (nh, np) = best_attachment_counted(p, &tree, v, &mut relaxed)
                    .expect("tree out of capacity for remaining members");
                hv = nh;
                pv = np;
            } else {
                for &w in &newly_added {
                    if p.free_child_slots(&tree, w) >= 1 {
                        relaxed += 1;
                        let cand = tree.height_of(w) + p.latency.latency_ms(w, v);
                        if cand < hv {
                            hv = cand;
                            pv = w;
                        }
                    }
                }
            }
            best.insert(v, (hv, pv));
        }
    }
    add_relaxations(relaxed);
    tree
}

/// The best attachment point for `v`: min height over tree nodes with free
/// capacity.
pub(crate) fn best_attachment<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &MulticastTree,
    v: HostId,
) -> Option<(f64, HostId)> {
    let mut scored = 0;
    best_attachment_counted(p, tree, v, &mut scored)
}

fn best_attachment_counted<L: LatencyModel, D: Fn(HostId) -> u32>(
    p: &Problem<L, D>,
    tree: &MulticastTree,
    v: HostId,
    scored: &mut u64,
) -> Option<(f64, HostId)> {
    tree.hosts()
        .iter()
        .filter(|&&w| p.free_child_slots(tree, w) >= 1)
        .map(|&w| {
            *scored += 1;
            (tree.height_of(w) + p.latency.latency_ms(w, v), w)
        })
        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Network, NetworkConfig};

    struct Uniform;
    impl LatencyModel for Uniform {
        fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
            if a == b {
                0.0
            } else {
                10.0
            }
        }
        fn num_hosts(&self) -> usize {
            1000
        }
    }

    fn net(n: usize, seed: u64) -> Network {
        Network::generate(
            &NetworkConfig {
                transit_domains: 2,
                transit_per_domain: 3,
                stub_domains_per_transit: 2,
                routers_per_stub: 3,
                num_hosts: n,
                ..NetworkConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn spans_all_members_and_respects_bounds() {
        let net = net(300, 1);
        let members: Vec<HostId> = (0..80).map(HostId).collect();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(HostId(0), members.clone(), &net.latency, dbound);
        let t = amcast(&p);
        assert_eq!(t.len(), members.len());
        for &m in &members {
            assert!(t.contains(m));
        }
        t.validate(&net.latency, dbound).unwrap();
    }

    #[test]
    fn unbounded_uniform_case_is_a_star() {
        // With huge degree bounds and uniform latency, everyone attaches
        // straight to the root: height = one hop.
        let members: Vec<HostId> = (0..20).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &Uniform, |_| 100);
        let t = amcast(&p);
        assert_eq!(t.max_height(), 10.0);
        assert_eq!(t.child_count(HostId(0)), 19);
    }

    #[test]
    fn degree_two_everywhere_forms_feasible_tree() {
        // Bound 2 on everyone forces a path-like tree; must stay feasible.
        let members: Vec<HostId> = (0..15).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &Uniform, |_| 2);
        let t = amcast(&p);
        t.validate(&Uniform, |_| 2).unwrap();
        assert_eq!(t.len(), 15);
        // Bound 2: the root (no parent link) anchors two chains of 7,
        // everyone else is a link in a chain → height 7 hops.
        assert_eq!(t.max_height(), 70.0);
        assert_eq!(t.child_count(HostId(0)), 2);
    }

    #[test]
    fn greedy_height_is_no_worse_than_a_path() {
        let net = net(300, 2);
        let members: Vec<HostId> = (0..60).map(HostId).collect();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(HostId(0), members.clone(), &net.latency, dbound);
        let t = amcast(&p);
        // Crude sanity: greedy must beat chaining members in id order.
        let mut path_height = 0.0;
        let mut worst: f64 = 0.0;
        for w in members.windows(2) {
            path_height += net.latency.latency_ms(w[0], w[1]);
            worst = worst.max(path_height);
        }
        assert!(t.max_height() < worst);
    }

    #[test]
    fn two_member_session() {
        let p = Problem::new(HostId(0), vec![HostId(1)], &Uniform, |_| 2);
        let t = amcast(&p);
        assert_eq!(t.len(), 2);
        assert_eq!(t.parent_of(HostId(1)), Some(HostId(0)));
    }

    #[test]
    fn deterministic() {
        let net = net(200, 3);
        let members: Vec<HostId> = (0..50).map(HostId).collect();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(HostId(0), members, &net.latency, dbound);
        let a = amcast(&p);
        let b = amcast(&p);
        assert_eq!(a.hosts(), b.hosts());
        assert_eq!(a.max_height(), b.max_height());
    }

    /// Attachment order, parents, and heights must all agree — this is the
    /// unit-level cut of the proptest equivalence suite.
    fn assert_trees_identical(a: &MulticastTree, b: &MulticastTree) {
        assert_eq!(a.hosts(), b.hosts(), "attachment order differs");
        for &h in a.hosts() {
            assert_eq!(a.parent_of(h), b.parent_of(h), "parent of {h:?} differs");
            assert_eq!(
                a.height_of(h).to_bits(),
                b.height_of(h).to_bits(),
                "height of {h:?} differs"
            );
        }
    }

    #[test]
    fn incremental_matches_reference_on_oracle_latency() {
        for seed in 0..4 {
            let net = net(300, 10 + seed);
            let members: Vec<HostId> = (0..90).map(HostId).collect();
            let dbound = |h: HostId| net.hosts.degree_bound(h);
            let p = Problem::new(HostId(0), members, &net.latency, dbound);
            assert_trees_identical(&amcast(&p), &amcast_reference(&p));
        }
    }

    #[test]
    fn incremental_matches_reference_under_tight_bounds() {
        // Degree 2 everywhere maximizes recompute pressure (every parent
        // fills after one child).
        let net = net(300, 20);
        let members: Vec<HostId> = (0..70).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &net.latency, |_| 2);
        assert_trees_identical(&amcast(&p), &amcast_reference(&p));
    }

    #[test]
    fn incremental_matches_reference_on_uniform_ties() {
        // Uniform latency makes every comparison a tie — the (height, id)
        // tie-break order must carry the whole decision.
        let members: Vec<HostId> = (0..40).map(HostId).collect();
        let p = Problem::new(HostId(0), members, &Uniform, |_| 3);
        assert_trees_identical(&amcast(&p), &amcast_reference(&p));
    }
}
