//! The multicast tree: parent/child structure plus per-node *height*
//! (aggregated latency from the root — the paper's QoS metric).

use std::collections::HashMap;

use netsim::{HostId, LatencyModel};

/// A rooted multicast tree over end hosts.
///
/// Nodes are added with [`MulticastTree::attach`]; heights are maintained
/// incrementally and can be recomputed wholesale after structural surgery
/// (the adjustment moves).
#[derive(Clone, Debug)]
pub struct MulticastTree {
    nodes: Vec<HostId>,
    idx: HashMap<HostId, usize>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    height: Vec<f64>,
}

impl MulticastTree {
    /// A tree containing only the root.
    pub fn new(root: HostId) -> MulticastTree {
        MulticastTree {
            nodes: vec![root],
            idx: HashMap::from([(root, 0)]),
            parent: vec![None],
            children: vec![Vec::new()],
            height: vec![0.0],
        }
    }

    /// The root host.
    pub fn root(&self) -> HostId {
        self.nodes[0]
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has only the root (never empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All hosts in the tree, root first, in attachment order.
    pub fn hosts(&self) -> &[HostId] {
        &self.nodes
    }

    /// Whether `h` is in the tree.
    pub fn contains(&self, h: HostId) -> bool {
        self.idx.contains_key(&h)
    }

    /// Attach `child` under `parent` with the given link latency.
    ///
    /// # Panics
    /// If `child` is already present or `parent` is not.
    pub fn attach(&mut self, child: HostId, parent: HostId, link_ms: f64) {
        assert!(!self.contains(child), "node already in tree");
        let p = *self.idx.get(&parent).expect("parent not in tree");
        let i = self.nodes.len();
        self.nodes.push(child);
        self.idx.insert(child, i);
        self.parent.push(Some(p));
        self.children.push(Vec::new());
        self.height.push(self.height[p] + link_ms);
        self.children[p].push(i);
    }

    /// The parent of a host (`None` for the root).
    pub fn parent_of(&self, h: HostId) -> Option<HostId> {
        let i = self.idx[&h];
        self.parent[i].map(|p| self.nodes[p])
    }

    /// The children of a host.
    pub fn children_of(&self, h: HostId) -> Vec<HostId> {
        let i = self.idx[&h];
        self.children[i].iter().map(|&c| self.nodes[c]).collect()
    }

    /// Number of children of a host.
    pub fn child_count(&self, h: HostId) -> usize {
        self.children[self.idx[&h]].len()
    }

    /// The tree degree of a host: children plus the parent link.
    pub fn degree(&self, h: HostId) -> u32 {
        let i = self.idx[&h];
        (self.children[i].len() + usize::from(self.parent[i].is_some())) as u32
    }

    /// Height of a host: aggregated latency from the root, ms.
    pub fn height_of(&self, h: HostId) -> f64 {
        self.height[self.idx[&h]]
    }

    /// The tree height: the maximum node height (0 for a root-only tree).
    pub fn max_height(&self) -> f64 {
        self.height.iter().copied().fold(0.0, f64::max)
    }

    /// The host at maximum height (the root for a root-only tree). Ties
    /// pick the last-attached node; `total_cmp` keeps that exact order for
    /// the non-NaN heights the tree maintains while staying well-defined
    /// (instead of panicking) if a NaN latency ever poisons a height.
    pub fn highest(&self) -> HostId {
        self.highest_by(f64::total_cmp)
    }

    /// [`MulticastTree::highest`] with the comparator injected — lets the
    /// proptest below pin `total_cmp` against the historical `partial_cmp`.
    fn highest_by(&self, cmp: impl Fn(&f64, &f64) -> std::cmp::Ordering) -> HostId {
        let (i, _) = self
            .height
            .iter()
            .enumerate()
            .max_by(|a, b| cmp(a.1, b.1))
            .unwrap();
        self.nodes[i]
    }

    /// All hosts in breadth-first order from the root — guaranteed
    /// parent-before-child even after structural surgery (`move_node`,
    /// `swap_nodes`), unlike [`MulticastTree::hosts`] which is attachment
    /// order.
    pub fn bfs_order(&self) -> Vec<HostId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(i) = queue.pop_front() {
            out.push(self.nodes[i]);
            queue.extend(self.children[i].iter().copied());
        }
        out
    }

    /// Whether `anc` is an ancestor of `h` (a node is not its own ancestor).
    pub fn is_ancestor(&self, anc: HostId, h: HostId) -> bool {
        let a = self.idx[&anc];
        let mut cur = self.idx[&h];
        while let Some(p) = self.parent[cur] {
            if p == a {
                return true;
            }
            cur = p;
        }
        false
    }

    /// Re-parent host `v` (and its subtree) under `new_parent`.
    ///
    /// # Panics
    /// If the move would create a cycle (`new_parent` inside `v`'s subtree),
    /// or `v` is the root.
    pub fn move_node(&mut self, v: HostId, new_parent: HostId, latency: &impl LatencyModel) {
        assert!(
            v != new_parent && !self.is_ancestor(v, new_parent),
            "move would create a cycle"
        );
        let vi = self.idx[&v];
        let np = self.idx[&new_parent];
        let old_p = self.parent[vi].expect("cannot move the root");
        self.children[old_p].retain(|&c| c != vi);
        self.parent[vi] = Some(np);
        self.children[np].push(vi);
        self.recompute_heights(latency);
    }

    /// Swap the positions of two hosts (each takes the other's parent).
    /// Typically used on leaves but valid for any two nodes in different
    /// subtrees; with `a` a child of `b` (or vice versa) the swap is
    /// rejected.
    ///
    /// # Panics
    /// If either is the root, or one is an ancestor of the other.
    pub fn swap_nodes(&mut self, a: HostId, b: HostId, latency: &impl LatencyModel) {
        assert!(a != b);
        assert!(
            !self.is_ancestor(a, b) && !self.is_ancestor(b, a),
            "cannot swap nested nodes"
        );
        let ai = self.idx[&a];
        let bi = self.idx[&b];
        let ap = self.parent[ai].expect("cannot swap the root");
        let bp = self.parent[bi].expect("cannot swap the root");
        self.children[ap].retain(|&c| c != ai);
        self.children[bp].retain(|&c| c != bi);
        self.parent[ai] = Some(bp);
        self.parent[bi] = Some(ap);
        self.children[bp].push(ai);
        self.children[ap].push(bi);
        self.recompute_heights(latency);
    }

    /// Recompute all heights from link latencies (after structural surgery).
    pub fn recompute_heights(&mut self, latency: &impl LatencyModel) {
        let mut stack = vec![0usize];
        self.height[0] = 0.0;
        while let Some(i) = stack.pop() {
            let hi = self.height[i];
            let node = self.nodes[i];
            for k in 0..self.children[i].len() {
                let c = self.children[i][k];
                self.height[c] = hi + latency.latency_ms(node, self.nodes[c]);
                stack.push(c);
            }
        }
    }

    /// Validate structural invariants: connectivity, acyclicity, height
    /// consistency with `latency`, and per-node degree bounds.
    pub fn validate(
        &self,
        latency: &impl LatencyModel,
        dbound: impl Fn(HostId) -> u32,
    ) -> Result<(), String> {
        // Every node reachable from the root exactly once.
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for &c in &self.children[i] {
                if seen[c] {
                    return Err(format!("node {:?} reached twice", self.nodes[c]));
                }
                if self.parent[c] != Some(i) {
                    return Err("parent/child links disagree".into());
                }
                seen[c] = true;
                count += 1;
                stack.push(c);
            }
        }
        if count != self.nodes.len() {
            return Err(format!(
                "{} of {} nodes unreachable from root",
                self.nodes.len() - count,
                self.nodes.len()
            ));
        }
        // Heights match latencies.
        for i in 1..self.nodes.len() {
            let p = self.parent[i].unwrap();
            let expect = self.height[p] + latency.latency_ms(self.nodes[p], self.nodes[i]);
            if (self.height[i] - expect).abs() > 1e-6 {
                return Err(format!(
                    "height of {:?} is {} but links sum to {}",
                    self.nodes[i], self.height[i], expect
                ));
            }
        }
        // Degree bounds.
        for &h in &self.nodes {
            if self.degree(h) > dbound(h) {
                return Err(format!(
                    "degree {} of {:?} exceeds bound {}",
                    self.degree(h),
                    h,
                    dbound(h)
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All pairs 10 ms apart — convenient for exact height arithmetic.
    struct Uniform;
    impl LatencyModel for Uniform {
        fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
            if a == b {
                0.0
            } else {
                10.0
            }
        }
        fn num_hosts(&self) -> usize {
            100
        }
    }

    fn chain() -> MulticastTree {
        // 0 -> 1 -> 2, plus 3 under 0.
        let mut t = MulticastTree::new(HostId(0));
        t.attach(HostId(1), HostId(0), 10.0);
        t.attach(HostId(2), HostId(1), 10.0);
        t.attach(HostId(3), HostId(0), 10.0);
        t
    }

    #[test]
    fn heights_accumulate() {
        let t = chain();
        assert_eq!(t.height_of(HostId(0)), 0.0);
        assert_eq!(t.height_of(HostId(2)), 20.0);
        assert_eq!(t.max_height(), 20.0);
        assert_eq!(t.highest(), HostId(2));
    }

    #[test]
    fn degrees_count_parent_link() {
        let t = chain();
        assert_eq!(t.degree(HostId(0)), 2); // two children, no parent
        assert_eq!(t.degree(HostId(1)), 2); // one child + parent
        assert_eq!(t.degree(HostId(2)), 1); // leaf
    }

    #[test]
    fn ancestor_relation() {
        let t = chain();
        assert!(t.is_ancestor(HostId(0), HostId(2)));
        assert!(t.is_ancestor(HostId(1), HostId(2)));
        assert!(!t.is_ancestor(HostId(2), HostId(1)));
        assert!(!t.is_ancestor(HostId(3), HostId(2)));
        assert!(!t.is_ancestor(HostId(2), HostId(2)));
    }

    #[test]
    fn move_node_updates_heights() {
        let mut t = chain();
        t.move_node(HostId(2), HostId(3), &Uniform);
        assert_eq!(t.parent_of(HostId(2)), Some(HostId(3)));
        assert_eq!(t.height_of(HostId(2)), 20.0);
        assert!(t.validate(&Uniform, |_| 10).is_ok());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn move_into_own_subtree_panics() {
        let mut t = chain();
        t.move_node(HostId(1), HostId(2), &Uniform);
    }

    #[test]
    fn swap_nodes_exchanges_parents() {
        let mut t = chain();
        t.swap_nodes(HostId(2), HostId(3), &Uniform);
        assert_eq!(t.parent_of(HostId(2)), Some(HostId(0)));
        assert_eq!(t.parent_of(HostId(3)), Some(HostId(1)));
        assert!(t.validate(&Uniform, |_| 10).is_ok());
    }

    #[test]
    fn validate_catches_degree_violation() {
        let t = chain();
        // Root has degree 2; bound of 1 must fail.
        let err = t
            .validate(&Uniform, |h| if h == HostId(0) { 1 } else { 10 })
            .unwrap_err();
        assert!(err.contains("degree"), "{err}");
    }

    #[test]
    #[should_panic(expected = "already in tree")]
    fn duplicate_attach_panics() {
        let mut t = chain();
        t.attach(HostId(2), HostId(0), 10.0);
    }

    proptest::proptest! {
        // For the NaN-free heights a tree actually maintains, the
        // `total_cmp`-based `highest` picks the exact node the historical
        // `partial_cmp` path picked (ties included: both take the last
        // maximal entry).
        #[test]
        fn highest_matches_partial_cmp_on_nan_free_trees(
            spec in proptest::collection::vec((0usize..1000, 0u32..5000), 1..40)
        ) {
            let mut t = MulticastTree::new(HostId(0));
            for (k, (pick, w)) in spec.iter().enumerate() {
                // Parent chosen among the nodes attached so far; quantized
                // weights make equal-height ties common.
                let parent = t.hosts()[pick % t.len()];
                let child = HostId(k as u32 + 1);
                t.attach(child, parent, (*w as f64) * 0.5);
            }
            let new = t.highest_by(f64::total_cmp);
            let old = t.highest_by(|a, b| a.partial_cmp(b).unwrap());
            proptest::prop_assert_eq!(new, old);
        }
    }

    #[test]
    fn subtree_swap_via_swap_nodes() {
        // Swap two internal nodes from disjoint subtrees.
        let mut t = MulticastTree::new(HostId(0));
        t.attach(HostId(1), HostId(0), 10.0);
        t.attach(HostId(2), HostId(0), 10.0);
        t.attach(HostId(3), HostId(1), 10.0);
        t.attach(HostId(4), HostId(2), 10.0);
        t.swap_nodes(HostId(1), HostId(2), &Uniform);
        // Children move with their subtree roots.
        assert_eq!(t.parent_of(HostId(3)), Some(HostId(1)));
        assert_eq!(t.parent_of(HostId(4)), Some(HostId(2)));
        assert!(t.validate(&Uniform, |_| 10).is_ok());
    }
}
