//! Property tests over the whole planning pipeline: for arbitrary member
//! sets, degree configurations and latency structures, every algorithm must
//! produce a valid spanning tree — and the algebra between them must hold.

use alm::{adjust, amcast, critical, improvement_upper_bound, HelperPool, Problem};
use netsim::{HostId, LatencyModel};
use proptest::prelude::*;

/// A deterministic synthetic latency model: hosts sit on a circle of
/// `clusters` clusters; intra-cluster pairs are near, inter-cluster pairs
/// pay a cluster-distance penalty. Cheap, metric, and structured enough to
/// exercise the greedy paths.
#[derive(Clone, Debug)]
struct ClusterLatency {
    n: usize,
    clusters: usize,
    near_ms: f64,
    far_ms: f64,
}

impl LatencyModel for ClusterLatency {
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            return 0.0;
        }
        let ca = a.idx() % self.clusters;
        let cb = b.idx() % self.clusters;
        if ca == cb {
            self.near_ms + (a.idx() / self.clusters + b.idx() / self.clusters) as f64 * 0.1
        } else {
            let d = (ca as i64 - cb as i64).unsigned_abs() as f64;
            self.far_ms * d.min(self.clusters as f64 - d)
        }
    }
    fn num_hosts(&self) -> usize {
        self.n
    }
}

fn degree_of(seed: u64, h: HostId) -> u32 {
    // Deterministic pseudo-random degree in 2..=9 (the paper's range).
    (simcore::rng::mix64(seed ^ h.0 as u64) % 8) as u32 + 2
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn amcast_always_produces_valid_spanning_tree(
        n_hosts in 10usize..80,
        member_count in 2usize..30,
        clusters in 2usize..8,
        dseed: u64,
    ) {
        let member_count = member_count.min(n_hosts);
        let lat = ClusterLatency { n: n_hosts, clusters, near_ms: 5.0, far_ms: 40.0 };
        let members: Vec<HostId> = (0..member_count as u32).map(HostId).collect();
        let dbound = |h: HostId| degree_of(dseed, h);
        let p = Problem::new(members[0], members.clone(), &lat, dbound);
        let t = amcast(&p);
        prop_assert_eq!(t.len(), member_count);
        for &m in &members {
            prop_assert!(t.contains(m));
        }
        prop_assert!(t.validate(&lat, dbound).is_ok());
    }

    #[test]
    fn adjust_never_hurts_or_invalidates(
        n_hosts in 12usize..60,
        member_count in 3usize..25,
        clusters in 2usize..6,
        dseed: u64,
    ) {
        let member_count = member_count.min(n_hosts);
        let lat = ClusterLatency { n: n_hosts, clusters, near_ms: 5.0, far_ms: 40.0 };
        let members: Vec<HostId> = (0..member_count as u32).map(HostId).collect();
        let dbound = |h: HostId| degree_of(dseed, h);
        let p = Problem::new(members[0], members, &lat, dbound);
        let mut t = amcast(&p);
        let before = t.max_height();
        adjust(&p, &mut t);
        prop_assert!(t.max_height() <= before + 1e-9);
        prop_assert!(t.validate(&lat, dbound).is_ok());
    }

    #[test]
    fn critical_tree_valid_and_helpers_constrained(
        n_hosts in 20usize..80,
        member_count in 3usize..20,
        clusters in 2usize..6,
        dseed: u64,
        radius in 20.0f64..200.0,
    ) {
        let member_count = member_count.min(n_hosts / 2);
        let lat = ClusterLatency { n: n_hosts, clusters, near_ms: 5.0, far_ms: 40.0 };
        let members: Vec<HostId> = (0..member_count as u32).map(HostId).collect();
        let dbound = |h: HostId| degree_of(dseed, h);
        let p = Problem::new(members[0], members.clone(), &lat, dbound);
        let mut pool = HelperPool::new((0..n_hosts as u32).map(HostId).collect());
        pool.radius_ms = radius;
        let t = critical(&p, &pool);
        prop_assert!(t.validate(&lat, dbound).is_ok());
        // Every recruited helper satisfies conditions 2 and 3 at its
        // insertion point: degree >= 4, parent within the radius.
        for h in alm::critical::helpers_used(&t, &members) {
            prop_assert!(dbound(h) >= pool.min_degree);
            let parent = t.parent_of(h).expect("helper is not the root");
            prop_assert!(lat.latency_ms(h, parent) < radius);
            // A helper with no children would be pointless: the algorithm
            // always gives it at least the node it displaced.
            prop_assert!(t.child_count(h) >= 1);
        }
    }

    #[test]
    fn improvement_bound_dominates_all_algorithms(
        n_hosts in 20usize..60,
        member_count in 3usize..20,
        dseed: u64,
    ) {
        let member_count = member_count.min(n_hosts / 2);
        let lat = ClusterLatency { n: n_hosts, clusters: 4, near_ms: 5.0, far_ms: 40.0 };
        let members: Vec<HostId> = (0..member_count as u32).map(HostId).collect();
        let dbound = |h: HostId| degree_of(dseed, h);
        let p = Problem::new(members[0], members.clone(), &lat, dbound);
        let base = amcast(&p).max_height();
        let bound = improvement_upper_bound(&p, base);

        let pool = HelperPool::new((0..n_hosts as u32).map(HostId).collect());
        let mut best = critical(&p, &pool);
        adjust(&p, &mut best);
        let imp = alm::improvement(base, best.max_height());
        prop_assert!(
            imp <= bound + 1e-9,
            "algorithm beat the infinite-degree bound: {} > {}", imp, bound
        );
    }

    #[test]
    fn dynamic_churn_keeps_invariants(
        n_hosts in 20usize..60,
        member_count in 4usize..15,
        ops in proptest::collection::vec(any::<bool>(), 1..20),
        dseed: u64,
    ) {
        let member_count = member_count.min(n_hosts / 2);
        let lat = ClusterLatency { n: n_hosts, clusters: 4, near_ms: 5.0, far_ms: 40.0 };
        let members: Vec<HostId> = (0..member_count as u32).map(HostId).collect();
        let dbound = |h: HostId| degree_of(dseed, h);
        let p = Problem::new(members[0], members.clone(), &lat, dbound);
        let mut t = amcast(&p);
        let mut fresh: Vec<HostId> =
            (member_count as u32..n_hosts as u32).map(HostId).collect();
        for join in ops {
            if join {
                if let Some(h) = fresh.pop() {
                    let _ = alm::dynamic::add_member(&p, &mut t, h);
                }
            } else if t.len() > 2 {
                // Remove the most recently attached non-root node.
                let v = *t.hosts().last().unwrap();
                if v != t.root() {
                    if let Ok(rebuilt) = alm::dynamic::remove_member(&p, &t, v) {
                        t = rebuilt;
                    }
                }
            }
            prop_assert!(t.validate(&lat, dbound).is_ok());
        }
    }
}
