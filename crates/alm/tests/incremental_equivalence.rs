//! A/B validation of the incremental greedy engine against the retained
//! reference: across random problems, degree bounds, and helper-finder
//! configurations the two must produce *bit-identical* trees — same
//! attachment order, same parents, same height floats — and the incremental
//! path must do strictly less scoring work at scale.

use alm::metrics::{relaxations, reset_relaxations};
use alm::{
    amcast, amcast_reference, critical, critical_reference, HelperPool, HelperStrategy,
    MulticastTree, Problem,
};
use netsim::{HostId, LatencyModel};
use proptest::prelude::*;

/// Unstructured pseudo-random symmetric latencies in 1..201 ms: no metric
/// structure at all, so ties and adversarial orderings are common.
#[derive(Clone, Debug)]
struct HashLatency {
    n: usize,
    seed: u64,
}

impl LatencyModel for HashLatency {
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            return 0.0;
        }
        let (lo, hi) = if a < b { (a.0, b.0) } else { (b.0, a.0) };
        let x = simcore::rng::mix64(self.seed ^ ((u64::from(lo) << 32) | u64::from(hi)));
        1.0 + (x % 2000) as f64 / 10.0
    }
    fn num_hosts(&self) -> usize {
        self.n
    }
}

fn degree_of(seed: u64, h: HostId) -> u32 {
    // Deterministic pseudo-random degree in 2..=9 (the paper's range).
    (simcore::rng::mix64(seed ^ u64::from(h.0)) % 8) as u32 + 2
}

fn assert_identical(inc: &MulticastTree, reference: &MulticastTree) {
    assert_eq!(inc.hosts(), reference.hosts(), "attachment order differs");
    for &h in inc.hosts() {
        assert_eq!(
            inc.parent_of(h),
            reference.parent_of(h),
            "parent of {h:?} differs"
        );
        assert_eq!(
            inc.height_of(h).to_bits(),
            reference.height_of(h).to_bits(),
            "height of {h:?} differs"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn amcast_engines_agree(
        n_hosts in 4usize..120,
        member_count in 2usize..60,
        lseed: u64,
        dseed: u64,
        tight in any::<bool>(),
    ) {
        let member_count = member_count.min(n_hosts);
        let lat = HashLatency { n: n_hosts, seed: lseed };
        let members: Vec<HostId> = (0..member_count as u32).map(HostId).collect();
        // `tight` forces degree 2 everywhere: every parent fills after one
        // child, so the recompute path dominates.
        let dbound = move |h: HostId| if tight { 2 } else { degree_of(dseed, h) };
        let p = Problem::new(members[0], members, &lat, dbound);
        assert_identical(&amcast(&p), &amcast_reference(&p));
    }

    #[test]
    fn critical_engines_agree(
        n_hosts in 8usize..100,
        member_count in 2usize..30,
        lseed: u64,
        dseed: u64,
        radius in 0.0f64..250.0,
        min_degree in 2u32..7,
        minmax in any::<bool>(),
        stride in 1usize..4,
    ) {
        let member_count = member_count.min(n_hosts / 2);
        let lat = HashLatency { n: n_hosts, seed: lseed };
        let members: Vec<HostId> = (0..member_count as u32).map(HostId).collect();
        let p = Problem::new(
            members[0], members, &lat, move |h| degree_of(dseed, h),
        );
        // Candidate list: every stride-th host, so pools range from the
        // whole network down to a sparse third of it.
        let mut pool = HelperPool::new(
            (0..n_hosts as u32).step_by(stride).map(HostId).collect(),
        );
        pool.radius_ms = radius;
        pool.min_degree = min_degree;
        pool.strategy = if minmax {
            HelperStrategy::MinMaxSibling
        } else {
            HelperStrategy::Closest
        };
        assert_identical(&critical(&p, &pool), &critical_reference(&p, &pool));
    }
}

/// Satellite gate: at N ≥ 512 the incremental engine must perform strictly
/// fewer relaxations (candidate scoring attempts) than the reference while
/// producing the identical tree.
#[test]
fn strictly_fewer_relaxations_at_n512() {
    let lat = HashLatency { n: 640, seed: 2026 };
    let members: Vec<HostId> = (0..512).map(HostId).collect();
    let dbound = |h: HostId| degree_of(99, h);
    let p = Problem::new(members[0], members.clone(), &lat, dbound);

    reset_relaxations();
    let reference = amcast_reference(&p);
    let ref_relax = relaxations();
    reset_relaxations();
    let inc = amcast(&p);
    let inc_relax = relaxations();
    assert_identical(&inc, &reference);
    assert!(
        inc_relax < ref_relax,
        "amcast: incremental did {inc_relax} relaxations, reference {ref_relax}"
    );

    let pool = HelperPool::new((0..640).map(HostId).collect());
    reset_relaxations();
    let reference = critical_reference(&p, &pool);
    let ref_relax = relaxations();
    reset_relaxations();
    let inc = critical(&p, &pool);
    let inc_relax = relaxations();
    assert_identical(&inc, &reference);
    assert!(
        inc_relax < ref_relax,
        "critical: incremental did {inc_relax} relaxations, reference {ref_relax}"
    );
}
