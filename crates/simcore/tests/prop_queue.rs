//! Property tests for the discrete-event queue: the determinism guarantees
//! the whole workspace rests on.

use proptest::prelude::*;
use simcore::{EventQueue, SimTime};

proptest! {
    #[test]
    fn prop_pops_never_go_back_in_time(
        schedule in proptest::collection::vec((0u64..10_000, any::<u16>()), 1..200),
    ) {
        let mut q = EventQueue::new();
        for &(at, tag) in &schedule {
            q.schedule(SimTime::from_micros(at), tag);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last, "time went backwards");
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, schedule.len());
    }

    #[test]
    fn prop_equal_times_preserve_schedule_order(
        times in proptest::collection::vec(0u64..5, 1..100),
    ) {
        // Many events on very few distinct timestamps: within a timestamp,
        // pops must follow scheduling order exactly.
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut per_time: std::collections::HashMap<u64, Vec<usize>> = Default::default();
        while let Some((t, i)) = q.pop() {
            per_time.entry(t.as_micros()).or_default().push(i);
        }
        for seq in per_time.values() {
            prop_assert!(seq.windows(2).all(|w| w[0] < w[1]), "FIFO violated");
        }
    }

    #[test]
    fn prop_interleaved_schedule_and_pop(
        ops in proptest::collection::vec((any::<bool>(), 0u64..1000), 1..200),
    ) {
        // Arbitrary interleavings of schedule/pop keep the clock monotone
        // and the past-clamping rule intact.
        let mut q = EventQueue::new();
        for &(do_pop, at) in &ops {
            if do_pop {
                if let Some((t, _)) = q.pop() {
                    prop_assert_eq!(t, q.now());
                }
            } else {
                q.schedule(SimTime::from_micros(at), at);
            }
            // Nothing pending may be earlier than the clock.
            if let Some(head) = q.peek_time() {
                prop_assert!(head >= q.now());
            }
        }
    }
}
