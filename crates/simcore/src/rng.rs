//! Deterministic random-stream derivation.
//!
//! Every simulated entity (a DHT node, an ALM session, a topology generator)
//! gets its own RNG derived from the experiment's master seed plus a stable
//! label. This keeps entities' random streams independent of one another —
//! adding a node or reordering initialization does not perturb anyone else's
//! stream — which is what makes experiment output stable across refactors.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer; a high-quality 64-bit mixing function used to derive
/// child seeds from `(master, label)` pairs.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a 64-bit child seed from a master seed and a stream label.
pub fn derive_seed(master: u64, label: u64) -> u64 {
    mix64(master ^ mix64(label))
}

/// Derive an independent [`StdRng`] for the stream `(master, label)`.
pub fn derive_rng(master: u64, label: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label))
}

/// Derive an [`StdRng`] for a two-level stream, e.g. `(run, node)`.
pub fn derive_rng2(master: u64, a: u64, b: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(derive_seed(master, a), b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        let mut a = derive_rng(42, 7);
        let mut b = derive_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_labels_give_different_streams() {
        let mut a = derive_rng(42, 7);
        let mut b = derive_rng(42, 8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn mix64_is_a_bijection_probe() {
        // Not a proof, but distinct inputs in a small window must not collide.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn two_level_derivation_independent_of_sibling_order() {
        let x = derive_seed(derive_seed(1, 2), 3);
        let y = derive_seed(derive_seed(1, 2), 4);
        assert_ne!(x, y);
        // Same path, same seed.
        assert_eq!(x, derive_seed(derive_seed(1, 2), 3));
    }
}
