//! Deterministic structured event tracing.
//!
//! Every simulator in the workspace runs on the seed-deterministic event
//! clock, yet until this layer existed the only way to see *inside* a run
//! was ad-hoc printouts. [`Tracer`] is the shared observability spine: a
//! simulator emits typed [`TraceEvent`]s stamped with the simulated instant
//! and a monotonic sequence number, and a pluggable [`TraceSink`] decides
//! what happens to them.
//!
//! Three properties are contractual:
//!
//! * **Determinism** — records carry only simulated time and event payload,
//!   never wall-clock or addresses, so two same-seed runs emit bit-identical
//!   traces (`tests/trace_determinism.rs` pins this).
//! * **Zero-cost when off** — the default tracer is [`Tracer::disabled`]:
//!   [`Tracer::emit`] takes the event as a closure and returns after one
//!   branch without constructing it, so instrumented hot paths cost nothing
//!   on untraced runs (the figure anchors regenerate bit-identically with
//!   tracing compiled in).
//! * **Bounded memory** — the built-in sink is a ring buffer
//!   ([`Tracer::ring`]): once full, the oldest records are evicted, so a
//!   long simulation can stay traced without unbounded growth.
//!
//! For live consumption there is [`StreamSink`]: a bounded buffer a
//! consumer drains *while the run is going* through its paired
//! [`StreamHandle`]. Overflow is never silent — records evicted before the
//! consumer drained them are counted (`dropped`), the invariant
//! `emitted == delivered + dropped` holds at every instant, and the counts
//! surface through [`MetricsRegistry`](crate::metrics::MetricsRegistry) via
//! [`StreamHandle::publish_metrics`].
//!
//! Records export as JSON lines ([`to_json_lines`]) — one object per line,
//! deterministic field order — for diffing, artifact upload, or offline
//! analysis.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::time::SimTime;

/// Why a synchronized gather round ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum CloseReason {
    /// Every live child answered; the round closed on the last partial.
    Completed,
    /// The per-round child timeout fired with answers still missing.
    Timeout,
}

/// One typed event on the simulated clock.
///
/// Variants use raw integer ids (`simcore` sits below the crates that own
/// `HostId`/`NodeId`); the emitting layer documents the mapping. The enum is
/// deliberately closed — a shared taxonomy is what makes traces from
/// different subsystems mergeable and diffable.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum TraceEvent {
    /// DHT: a node's heartbeat timer fired toward `targets` leafset peers.
    DhtHeartbeat {
        /// Simulator node index.
        node: u32,
        /// How many peers were heartbeated.
        targets: u32,
    },
    /// DHT: `node` expired `peer` from its view and planted a tombstone.
    DhtExpel {
        /// Simulator node index doing the expelling.
        node: u32,
        /// Expelled peer's ring id.
        peer: u64,
    },
    /// Gather: an internal node opened a synchronized round.
    GatherOpen {
        /// Logical tree node index.
        node: u32,
        /// Round counter.
        round: u64,
        /// Live children expected to answer at open time.
        expected: u32,
    },
    /// Gather: a child's partial was folded into an open round.
    GatherPartial {
        /// Logical tree node index receiving the partial.
        node: u32,
        /// Round counter.
        round: u64,
        /// Logical index of the child that sent it.
        from: u32,
    },
    /// Gather: a duplicate partial from the same child was ignored.
    GatherDuplicate {
        /// Logical tree node index receiving the duplicate.
        node: u32,
        /// Round counter.
        round: u64,
        /// Logical index of the repeating child.
        from: u32,
    },
    /// Gather: a synchronized round closed.
    GatherClose {
        /// Logical tree node index.
        node: u32,
        /// Round counter.
        round: u64,
        /// Distinct child partials folded in.
        received: u32,
        /// Live children expected at close time.
        expected: u32,
        /// Whether the round completed or timed out.
        reason: CloseReason,
    },
    /// Gather: a timeout fired for a round that had already closed (no-op).
    GatherTimeoutSuppressed {
        /// Logical tree node index.
        node: u32,
        /// Round counter.
        round: u64,
    },
    /// Gather: the root recorded a fresh global view.
    GatherRootView {
        /// Round counter (0 in unsynchronized mode).
        round: u64,
    },
    /// Market: a session planned and reserved its tree.
    MarketReserve {
        /// Session slot index.
        session: u32,
        /// Hosts in the reserved tree.
        hosts: u32,
        /// Total degrees booked for the session after the plan.
        degrees: u32,
        /// Candidate-parent relaxations the plan performed.
        relaxations: u64,
        /// Latency-oracle calls the plan performed (0 unless the model is
        /// wrapped in a counting adapter).
        latency_calls: u64,
    },
    /// Market: a session released all of its holdings.
    MarketRelease {
        /// Session slot index.
        session: u32,
    },
    /// Market: a leased plan renewed the session's leases one TTL out.
    MarketLeaseRenew {
        /// Session slot index.
        session: u32,
    },
    /// Market: a replan ran (periodic or preemption-triggered).
    MarketReplan {
        /// Session slot index.
        session: u32,
        /// Whether a preemption (not the periodic timer) triggered it.
        preempt: bool,
    },
    /// Market: a task manager noticed dead hosts in its session.
    MarketCrashDetect {
        /// Session slot index.
        session: u32,
        /// Stranded holdings released (hosts).
        stranded: u32,
        /// Dead hosts found in the session's tree.
        dead_in_tree: u32,
    },
    /// Market: a mid-session crash repair finished.
    MarketCrashRepair {
        /// Session slot index.
        session: u32,
        /// Whether the incremental holdings re-sync resolved it (no full
        /// replan scheduled).
        incremental: bool,
        /// Failed reattach attempts.
        retries: u64,
        /// Orphan subtrees abandoned.
        gave_up: u64,
    },
    /// Market: a deputy took over a session whose root crashed.
    MarketFailover {
        /// Session slot index.
        session: u32,
        /// Host id of the deputy.
        deputy: u32,
    },
    /// Market: a multipath session's primary tree broke and an intact
    /// standby tree was promoted within one detection round.
    MarketTreeFailover {
        /// Session slot index.
        session: u32,
        /// Index of the promoted tree in the session's primary-first tree
        /// list before the failover (≥ 1).
        survivor: u32,
    },
    /// Market: a multipath session lazily re-planned lost standby trees in
    /// the background.
    MarketTreeRebuilt {
        /// Session slot index.
        session: u32,
        /// Standby trees the rebuild added.
        trees: u32,
    },
    /// Market: a root crash left no survivor; the session is lost.
    MarketSessionLost {
        /// Session slot index.
        session: u32,
    },
    /// Market: the lease-expiry sweep returned degrees to the pool.
    MarketLeasesLapsed {
        /// Degrees returned.
        degrees: u64,
    },
    /// Market: a host went down or came back per the fault plan.
    MarketHostFault {
        /// Host id.
        host: u32,
        /// `true` = crash, `false` = revival.
        down: bool,
    },
    /// Recovery pipeline phase transition: 1 = crash detected, 2 = victims
    /// expelled from every live view, 3 = SOMO census rebuilt, 4 = ALM
    /// orphans reattached.
    RecoveryPhase {
        /// Phase number (1–4).
        phase: u32,
    },
    /// Market admission control: a session arrival was parked in its
    /// priority-class FIFO because the cluster is under scarcity.
    MarketAdmissionQueued {
        /// Session id.
        session: u32,
        /// Priority class of the queue the session joined (1–3).
        class: u8,
        /// Depth of that class queue after the arrival joined it.
        depth: u32,
    },
    /// Market admission control: a session (fresh or previously queued) was
    /// admitted at full service.
    MarketAdmissionAdmitted {
        /// Session id.
        session: u32,
        /// Microseconds the session waited in the queue (0 for a fresh
        /// arrival admitted immediately).
        waited_us: u64,
    },
    /// Market admission control: a session was admitted degraded — single
    /// tree, trimmed helper budget and member degree — instead of preempting
    /// live trees.
    MarketAdmissionDegraded {
        /// Session id.
        session: u32,
        /// Microseconds the session waited in the queue before the degraded
        /// admission (0 for a fresh arrival).
        waited_us: u64,
    },
    /// Market admission control: a session arrival was rejected — its class
    /// queue was full, its retry budget ran out, or its root crashed while
    /// it waited.
    MarketAdmissionRejected {
        /// Session id.
        session: u32,
        /// `true` when the rejection is a round-based timeout (the queued
        /// session exhausted its retry attempts).
        timeout: bool,
    },
    /// Market admission control: the cluster pressure signal crossed the
    /// scarcity threshold (in either direction).
    MarketPressureShift {
        /// `true` = the cluster just became scarce; `false` = recovered.
        scarce: bool,
    },
    /// Tiered latency oracle accounting at a plan: cumulative per-tier
    /// answer counts and the hot tier's residency. Emitted only when the
    /// pool plans through a tiered latency source, so exact-mode traces
    /// are byte-identical to the pre-oracle simulator.
    OracleTiers {
        /// Session id whose plan triggered the sample.
        session: u32,
        /// Pairs answered exactly (same-router shortcut or resident row).
        hot: u64,
        /// Pairs answered from landmark triangle bounds.
        sketch: u64,
        /// Pairs answered from coordinate distance (bound-clamped).
        base: u64,
        /// Exact Dijkstra rows resident in the hot tier.
        resident_rows: u32,
    },
}

/// One trace record: a sequence number, the simulated instant, the event.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TraceRecord {
    /// Monotonic per-tracer sequence number (never reset by eviction).
    pub seq: u64,
    /// Simulated instant of the event, microseconds.
    pub at_us: u64,
    /// The event.
    pub ev: TraceEvent,
}

impl TraceRecord {
    /// The simulated instant as a [`SimTime`].
    pub fn at(&self) -> SimTime {
        SimTime::from_micros(self.at_us)
    }
}

/// A pluggable destination for trace records.
///
/// The built-in ring buffer covers most uses; a custom sink (streaming to a
/// file, filtering, forwarding) plugs in via [`Tracer::with_sink`].
pub trait TraceSink {
    /// Accept one record.
    fn record(&mut self, rec: TraceRecord);
}

enum Sink {
    /// Tracing off: `emit` is one branch, the event is never constructed.
    Off,
    /// Bounded in-memory ring: oldest records evicted at capacity.
    Ring {
        buf: VecDeque<TraceRecord>,
        cap: usize,
    },
    /// Caller-supplied sink.
    Custom(Box<dyn TraceSink>),
}

/// The event tracer simulators embed. See the module docs for the
/// determinism / zero-cost / bounded-memory contract.
pub struct Tracer {
    sink: Sink,
    seq: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.sink {
            Sink::Off => "off",
            Sink::Ring { .. } => "ring",
            Sink::Custom(_) => "custom",
        };
        f.debug_struct("Tracer")
            .field("sink", &kind)
            .field("seq", &self.seq)
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer (the default everywhere).
    pub fn disabled() -> Tracer {
        Tracer {
            sink: Sink::Off,
            seq: 0,
        }
    }

    /// A tracer backed by a ring buffer holding the last `cap` records.
    ///
    /// # Panics
    /// If `cap` is 0.
    pub fn ring(cap: usize) -> Tracer {
        assert!(cap > 0, "ring capacity must be positive");
        Tracer {
            sink: Sink::Ring {
                buf: VecDeque::with_capacity(cap.min(4096)),
                cap,
            },
            seq: 0,
        }
    }

    /// A tracer forwarding every record to a caller-supplied sink.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Tracer {
        Tracer {
            sink: Sink::Custom(sink),
            seq: 0,
        }
    }

    /// Whether events are being recorded. Instrumented code may use this to
    /// skip *gathering* expensive context; event construction itself is
    /// already skipped by [`Tracer::emit`]'s closure argument.
    pub fn is_enabled(&self) -> bool {
        !matches!(self.sink, Sink::Off)
    }

    /// Emit one event at simulated instant `at`. The closure is only called
    /// when a sink is attached, so a disabled tracer costs one branch.
    #[inline]
    pub fn emit(&mut self, at: SimTime, ev: impl FnOnce() -> TraceEvent) {
        if matches!(self.sink, Sink::Off) {
            return;
        }
        let rec = TraceRecord {
            seq: self.seq,
            at_us: at.as_micros(),
            ev: ev(),
        };
        self.seq += 1;
        match &mut self.sink {
            Sink::Off => unreachable!("checked above"),
            Sink::Ring { buf, cap } => {
                if buf.len() == *cap {
                    buf.pop_front();
                }
                buf.push_back(rec);
            }
            Sink::Custom(s) => s.record(rec),
        }
    }

    /// Total events emitted since construction (including any the ring has
    /// evicted).
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Drain the tracer's own buffer, oldest first.
    ///
    /// The distinction is typed, never silent:
    ///
    /// * `Some(records)` — the tracer owns its records: a ring buffer
    ///   (drained; possibly shorter than [`Tracer::emitted`] if the ring
    ///   evicted) or a disabled tracer (trivially empty — nothing was ever
    ///   emitted).
    /// * `None` — a custom sink ([`Tracer::with_sink`]) owns the records;
    ///   the tracer *cannot* produce them. Drain the sink through its own
    ///   handle (for [`StreamSink`], the paired [`StreamHandle`]) instead.
    ///
    /// Callers that blindly dump `take_records()` output used to write an
    /// empty file when a streaming sink was attached; the `Option` forces
    /// the decision at the call site.
    pub fn take_records(&mut self) -> Option<Vec<TraceRecord>> {
        match &mut self.sink {
            Sink::Off => Some(Vec::new()),
            Sink::Ring { buf, .. } => Some(buf.drain(..).collect()),
            Sink::Custom(_) => None,
        }
    }
}

/// Shared state behind a [`StreamSink`] / [`StreamHandle`] pair.
struct StreamShared {
    buf: VecDeque<TraceRecord>,
    cap: usize,
    /// Records ever accepted by the sink (== the tracer's emitted count
    /// once attached from the start).
    accepted: u64,
    /// Records evicted oldest-first before any drain saw them.
    dropped: u64,
}

/// A bounded streaming [`TraceSink`] with explicit backpressure accounting.
///
/// The sink holds at most `cap` records. When a record arrives at a full
/// buffer the *oldest* buffered record is evicted and counted in
/// [`StreamHandle::dropped`] — never silently. Records the consumer drains
/// in time (plus those still buffered) are *delivered*; at every instant
/// `emitted == delivered + dropped` (with the tracer attached from the
/// first event). Order is preserved end to end: a drain yields records in
/// emission order, and drops take the oldest undrained records first.
///
/// Create a pair with [`StreamSink::bounded`], attach the sink via
/// [`Tracer::with_sink`], and consume through the handle from anywhere
/// (the shared state is behind an `Arc<Mutex>`, so the consumer may live
/// on another thread).
pub struct StreamSink {
    shared: Arc<Mutex<StreamShared>>,
}

impl StreamSink {
    /// A sink buffering at most `cap` records, and the consumer handle it
    /// reports to.
    ///
    /// # Panics
    /// If `cap` is 0.
    pub fn bounded(cap: usize) -> (StreamSink, StreamHandle) {
        assert!(cap > 0, "stream capacity must be positive");
        let shared = Arc::new(Mutex::new(StreamShared {
            buf: VecDeque::with_capacity(cap.min(4096)),
            cap,
            accepted: 0,
            dropped: 0,
        }));
        (
            StreamSink {
                shared: shared.clone(),
            },
            StreamHandle { shared },
        )
    }
}

impl TraceSink for StreamSink {
    fn record(&mut self, rec: TraceRecord) {
        let mut s = self.shared.lock().expect("stream sink lock poisoned");
        if s.buf.len() == s.cap {
            s.buf.pop_front();
            s.dropped += 1;
        }
        s.buf.push_back(rec);
        s.accepted += 1;
    }
}

/// Consumer side of a [`StreamSink`]: drain records mid-run and read the
/// exact delivery/drop accounting.
#[derive(Clone)]
pub struct StreamHandle {
    shared: Arc<Mutex<StreamShared>>,
}

impl StreamHandle {
    /// Take every currently buffered record, oldest first. Records drained
    /// here can no longer be dropped — draining fast enough keeps
    /// [`StreamHandle::dropped`] at zero.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut s = self.shared.lock().expect("stream sink lock poisoned");
        s.buf.drain(..).collect()
    }

    /// Records currently buffered (accepted but not yet drained).
    pub fn buffered(&self) -> usize {
        self.shared
            .lock()
            .expect("stream sink lock poisoned")
            .buf
            .len()
    }

    /// Records delivered to the consumer side: drained plus still buffered.
    /// Always `accepted - dropped`.
    pub fn delivered(&self) -> u64 {
        let s = self.shared.lock().expect("stream sink lock poisoned");
        s.accepted - s.dropped
    }

    /// Records lost to overflow (evicted oldest-first before a drain saw
    /// them). Zero whenever the buffer was always large enough or drained
    /// often enough.
    pub fn dropped(&self) -> u64 {
        self.shared
            .lock()
            .expect("stream sink lock poisoned")
            .dropped
    }

    /// Surface the delivery/drop accounting as counters:
    /// `trace.stream_delivered` and `trace.dropped_records`. Call once at
    /// the end of a run (the values are cumulative).
    pub fn publish_metrics(&self, reg: &mut crate::metrics::MetricsRegistry) {
        let (delivered, dropped) = {
            let s = self.shared.lock().expect("stream sink lock poisoned");
            (s.accepted - s.dropped, s.dropped)
        };
        reg.add("trace.stream_delivered", delivered);
        reg.add("trace.dropped_records", dropped);
    }
}

/// Render records as JSON lines: one compact object per record, one record
/// per line, in order. Field order is fixed by the serializer, so two
/// bit-identical traces render to byte-identical text.
pub fn to_json_lines(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r).expect("trace records always serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_constructs_events() {
        let mut t = Tracer::disabled();
        let mut built = false;
        t.emit(SimTime::ZERO, || {
            built = true;
            TraceEvent::RecoveryPhase { phase: 1 }
        });
        assert!(!built, "no-op sink must not construct the event");
        assert_eq!(t.emitted(), 0);
        assert_eq!(t.take_records(), Some(Vec::new()));
    }

    #[test]
    fn ring_buffer_keeps_the_newest_records() {
        let mut t = Tracer::ring(3);
        for i in 0..5u32 {
            t.emit(SimTime::from_millis(i as u64), || {
                TraceEvent::RecoveryPhase { phase: i }
            });
        }
        assert_eq!(t.emitted(), 5);
        let recs = t.take_records().expect("ring tracer owns its records");
        assert_eq!(recs.len(), 3);
        // Oldest two evicted; sequence numbers stay monotonic.
        assert_eq!(recs[0].seq, 2);
        assert_eq!(recs[2].seq, 4);
        assert_eq!(recs[2].at(), SimTime::from_millis(4));
    }

    #[test]
    fn custom_sinks_receive_every_record() {
        struct CountSink(std::rc::Rc<std::cell::Cell<u64>>);
        impl TraceSink for CountSink {
            fn record(&mut self, _rec: TraceRecord) {
                self.0.set(self.0.get() + 1);
            }
        }
        let n = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut t = Tracer::with_sink(Box::new(CountSink(n.clone())));
        assert!(t.is_enabled());
        for _ in 0..7 {
            t.emit(SimTime::ZERO, || TraceEvent::GatherRootView { round: 1 });
        }
        assert_eq!(n.get(), 7);
        // Regression: a custom sink owns its records, and the tracer says
        // so explicitly instead of handing back an empty vec that callers
        // would dump as an empty trace file.
        assert_eq!(t.take_records(), None);
        assert_eq!(t.emitted(), 7, "emitted still counts custom-sink events");
    }

    #[test]
    fn stream_sink_at_capacity_matches_ring_with_zero_drops() {
        let events = |t: &mut Tracer| {
            for i in 0..10u32 {
                t.emit(SimTime::from_millis(i as u64), || {
                    TraceEvent::RecoveryPhase { phase: i }
                });
            }
        };
        let mut ring = Tracer::ring(64);
        events(&mut ring);
        let expect = ring.take_records().unwrap();

        let (sink, handle) = StreamSink::bounded(64);
        let mut t = Tracer::with_sink(Box::new(sink));
        events(&mut t);
        assert_eq!(handle.dropped(), 0);
        assert_eq!(handle.delivered(), 10);
        assert_eq!(t.emitted(), handle.delivered() + handle.dropped());
        let got = handle.drain();
        assert_eq!(got, expect, "streaming output must equal ring output");
        assert_eq!(to_json_lines(&got), to_json_lines(&expect));
    }

    #[test]
    fn undersized_stream_drops_oldest_first_with_exact_counts() {
        let (sink, handle) = StreamSink::bounded(3);
        let mut t = Tracer::with_sink(Box::new(sink));
        for i in 0..8u32 {
            t.emit(SimTime::from_millis(i as u64), || {
                TraceEvent::RecoveryPhase { phase: i }
            });
        }
        assert_eq!(handle.dropped(), 5, "exactly emitted - cap drops");
        assert_eq!(handle.delivered(), 3);
        assert_eq!(t.emitted(), handle.delivered() + handle.dropped());
        let got = handle.drain();
        // The survivors are the newest records, still in emission order.
        let seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        // Draining mid-run prevents drops entirely.
        let (sink, handle) = StreamSink::bounded(3);
        let mut t = Tracer::with_sink(Box::new(sink));
        let mut all = Vec::new();
        for i in 0..8u32 {
            t.emit(SimTime::from_millis(i as u64), || {
                TraceEvent::RecoveryPhase { phase: i }
            });
            all.extend(handle.drain());
        }
        assert_eq!(handle.dropped(), 0);
        assert_eq!(all.len(), 8);
        let mut reg = crate::metrics::MetricsRegistry::new();
        handle.publish_metrics(&mut reg);
        assert_eq!(reg.counter("trace.dropped_records"), 0);
        assert_eq!(reg.counter("trace.stream_delivered"), 8);
    }

    #[test]
    fn json_lines_are_deterministic_and_line_per_record() {
        let mut t = Tracer::ring(16);
        t.emit(SimTime::from_millis(1), || TraceEvent::GatherClose {
            node: 0,
            round: 1,
            received: 3,
            expected: 3,
            reason: CloseReason::Completed,
        });
        t.emit(SimTime::from_millis(2), || TraceEvent::DhtExpel {
            node: 4,
            peer: 0xDEAD,
        });
        let recs = t.take_records().expect("ring tracer owns its records");
        let a = to_json_lines(&recs);
        let b = to_json_lines(&recs);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 2);
        assert!(a.contains("Completed"));
    }
}
