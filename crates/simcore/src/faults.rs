//! Deterministic fault injection.
//!
//! Every simulator in the workspace models the underlay as a bare delay
//! closure — perfect delivery, which makes the self-healing claims of the
//! paper (§3: the pool "self-organizes and self-heals with zero
//! administration") untestable beyond clean `kill()` calls. This module adds
//! an adversarial network model that stays **seed-deterministic**: the same
//! [`FaultPlan`] over the same event trajectory makes bit-identical
//! drop/jitter decisions on every run.
//!
//! * [`FaultPlan`] — a declarative description of link-level message loss,
//!   delay jitter, link outages and partitions over time windows, plus node
//!   crash/recover schedules.
//! * [`FaultyLink`] — the executable form: wraps any base `delay` closure's
//!   result and returns `Option<SimTime>`, where `None` means the message
//!   was dropped. Simulators thread every send through it; a no-op plan is
//!   a branch-and-return (no RNG draw), so fault injection is opt-in and
//!   zero-cost when absent.
//!
//! Crash schedules are *not* interpreted by [`FaultyLink`] — a crashed node
//! is a property of the protocol simulator (it must stop ticking, and may
//! later rejoin), not of a link. Drivers read [`FaultPlan::crash_edges`] and
//! call the simulator's own `kill`/`revive` entry points at the scheduled
//! instants.
//!
//! Endpoint identifiers are plain `u64` labels in whatever namespace the
//! caller uses consistently (host IDs for the DHT heartbeat fabric, ring
//! member indices for SOMO gathers); outages and partitions match on those
//! labels.

use std::cell::Cell;
use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::rng::mix64;
use crate::time::SimTime;

/// A bidirectional link between two endpoints that is down during
/// `[from, until)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkOutage {
    /// One endpoint label.
    pub a: u64,
    /// The other endpoint label.
    pub b: u64,
    /// Outage start (inclusive).
    pub from: SimTime,
    /// Outage end (exclusive).
    pub until: SimTime,
}

/// A network partition during `[from, until)`: messages between an island
/// member and a non-member are dropped; traffic within the island (and
/// within the rest of the network) is unaffected.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Endpoint labels cut off from everyone else.
    pub island: Vec<u64>,
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Partition end (exclusive).
    pub until: SimTime,
}

/// A node crash at `down_at`, with an optional recovery at `up_at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSchedule {
    /// The node's label (same namespace the driving simulator uses).
    pub node: u64,
    /// When the node crashes.
    pub down_at: SimTime,
    /// When it recovers and rejoins (`None` = stays dead).
    pub up_at: Option<SimTime>,
}

/// A seed-deterministic description of everything that goes wrong.
///
/// The default plan ([`FaultPlan::none`]) injects nothing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the drop/jitter decision stream.
    pub seed: u64,
    /// Per-message loss probability in `[0, 1]`, applied to every link.
    pub loss: f64,
    /// Maximum extra delay added to each delivered message (uniform in
    /// `[0, jitter]`).
    pub jitter: SimTime,
    /// Scheduled link outages.
    pub link_outages: Vec<LinkOutage>,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Node crash/recover schedules (executed by the driver, see module
    /// docs).
    pub crashes: Vec<CrashSchedule>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: perfect delivery, no crashes.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            loss: 0.0,
            jitter: SimTime::ZERO,
            link_outages: Vec::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// A plan with uniform per-message loss probability.
    pub fn with_loss(seed: u64, loss: f64) -> FaultPlan {
        FaultPlan {
            seed,
            loss,
            ..FaultPlan::none()
        }
    }

    /// Add uniform delay jitter (builder style).
    pub fn jitter(mut self, max: SimTime) -> FaultPlan {
        self.jitter = max;
        self
    }

    /// Add a link outage window (builder style).
    pub fn outage(mut self, a: u64, b: u64, from: SimTime, until: SimTime) -> FaultPlan {
        self.link_outages.push(LinkOutage { a, b, from, until });
        self
    }

    /// Add a partition window (builder style).
    pub fn partition(mut self, island: Vec<u64>, from: SimTime, until: SimTime) -> FaultPlan {
        self.partitions.push(Partition {
            island,
            from,
            until,
        });
        self
    }

    /// Schedule a crash with recovery (builder style).
    pub fn crash(mut self, node: u64, down_at: SimTime, up_at: SimTime) -> FaultPlan {
        self.crashes.push(CrashSchedule {
            node,
            down_at,
            up_at: Some(up_at),
        });
        self
    }

    /// Schedule a permanent crash (builder style).
    pub fn crash_forever(mut self, node: u64, down_at: SimTime) -> FaultPlan {
        self.crashes.push(CrashSchedule {
            node,
            down_at,
            up_at: None,
        });
        self
    }

    /// Whether this plan can never perturb a message.
    pub fn is_link_noop(&self) -> bool {
        self.loss <= 0.0
            && self.jitter == SimTime::ZERO
            && self.link_outages.is_empty()
            && self.partitions.is_empty()
    }

    /// The crash schedule flattened into time-sorted `(when, node, down)`
    /// edges for a driver to execute between `run_until` steps. `down` is
    /// `true` for a crash, `false` for a recovery.
    pub fn crash_edges(&self) -> Vec<(SimTime, u64, bool)> {
        let mut edges = Vec::with_capacity(self.crashes.len() * 2);
        for c in &self.crashes {
            edges.push((c.down_at, c.node, true));
            if let Some(up) = c.up_at {
                edges.push((up, c.node, false));
            }
        }
        edges.sort_unstable_by_key(|&(t, n, down)| (t, n, down));
        edges
    }
}

/// The executable fault layer: wraps a base delay and decides, per message,
/// whether it is delivered (and how much extra it is delayed) or dropped.
///
/// Decisions are drawn from a counter-based stream derived from the plan's
/// seed, so a simulator that issues sends in a deterministic order gets a
/// bit-identical fault trajectory on every run. Interior mutability keeps
/// the call sites `&self` (delay closures are often called from shared
/// contexts).
pub struct FaultyLink {
    plan: FaultPlan,
    /// Pre-resolved partition islands for O(1) membership checks.
    islands: Vec<(HashSet<u64>, SimTime, SimTime)>,
    calls: Cell<u64>,
    dropped: Cell<u64>,
}

impl FaultyLink {
    /// Build the executable layer for a plan.
    pub fn new(plan: FaultPlan) -> FaultyLink {
        let islands = plan
            .partitions
            .iter()
            .map(|p| (p.island.iter().copied().collect(), p.from, p.until))
            .collect();
        FaultyLink {
            plan,
            islands,
            calls: Cell::new(0),
            dropped: Cell::new(0),
        }
    }

    /// A no-fault layer (the zero-cost default).
    pub fn none() -> FaultyLink {
        FaultyLink::new(FaultPlan::none())
    }

    /// The plan this layer executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Decide the fate of one message from `a` to `b`, sent at `now` with
    /// base (fault-free) delay `base`: `Some(delay)` to deliver after
    /// `delay` (base plus jitter), `None` if the message is dropped.
    pub fn transmit(&self, a: u64, b: u64, now: SimTime, base: SimTime) -> Option<SimTime> {
        if self.plan.is_link_noop() {
            return Some(base);
        }
        if self.link_severed(a, b, now) {
            self.dropped.set(self.dropped.get() + 1);
            return None;
        }
        let draw = self.next_draw();
        if self.plan.loss > 0.0 {
            // Compare the top 53 bits against the loss threshold — exact for
            // every f64 probability.
            let u = (draw >> 11) as f64 / (1u64 << 53) as f64;
            if u < self.plan.loss {
                self.dropped.set(self.dropped.get() + 1);
                return None;
            }
        }
        let jitter = if self.plan.jitter == SimTime::ZERO {
            SimTime::ZERO
        } else {
            // A second, independent draw so loss and jitter streams do not
            // alias.
            SimTime::from_micros(mix64(draw) % (self.plan.jitter.as_micros() + 1))
        };
        Some(base + jitter)
    }

    /// Whether the `a`–`b` link is administratively down at `now` (outage or
    /// partition).
    pub fn link_severed(&self, a: u64, b: u64, now: SimTime) -> bool {
        for o in &self.plan.link_outages {
            let hit = (o.a == a && o.b == b) || (o.a == b && o.b == a);
            if hit && now >= o.from && now < o.until {
                return true;
            }
        }
        for (island, from, until) in &self.islands {
            if now >= *from && now < *until && island.contains(&a) != island.contains(&b) {
                return true;
            }
        }
        false
    }

    fn next_draw(&self) -> u64 {
        let n = self.calls.get();
        self.calls.set(n + 1);
        mix64(self.plan.seed ^ mix64(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_is_transparent() {
        let l = FaultyLink::none();
        let base = SimTime::from_millis(50);
        for i in 0..100 {
            assert_eq!(
                l.transmit(i, i + 1, SimTime::from_secs(i), base),
                Some(base)
            );
        }
        assert_eq!(l.dropped(), 0);
    }

    #[test]
    fn loss_is_deterministic_and_roughly_calibrated() {
        let run = || {
            let l = FaultyLink::new(FaultPlan::with_loss(7, 0.25));
            let fates: Vec<bool> = (0..4000)
                .map(|i| {
                    l.transmit(0, 1, SimTime::from_millis(i), SimTime::from_millis(10))
                        .is_some()
                })
                .collect();
            (fates, l.dropped())
        };
        let (a, da) = run();
        let (b, db) = run();
        assert_eq!(a, b, "same plan, different fates");
        assert_eq!(da, db);
        let delivered = a.iter().filter(|&&x| x).count();
        let rate = delivered as f64 / a.len() as f64;
        assert!(
            (rate - 0.75).abs() < 0.03,
            "delivery rate {rate} off target"
        );
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let mk = || FaultyLink::new(FaultPlan::with_loss(9, 0.0).jitter(SimTime::from_millis(30)));
        let (a, b) = (mk(), mk());
        let base = SimTime::from_millis(100);
        let mut saw_jitter = false;
        for i in 0..200 {
            let x = a.transmit(1, 2, SimTime::from_secs(i), base).unwrap();
            let y = b.transmit(1, 2, SimTime::from_secs(i), base).unwrap();
            assert_eq!(x, y);
            assert!(x >= base && x <= base + SimTime::from_millis(30));
            saw_jitter |= x != base;
        }
        assert!(saw_jitter, "jitter never fired");
    }

    #[test]
    fn outages_are_windowed_and_symmetric() {
        let plan = FaultPlan::with_loss(1, 0.0).outage(
            3,
            5,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        let l = FaultyLink::new(plan);
        let base = SimTime::from_millis(1);
        assert!(l.transmit(3, 5, SimTime::from_secs(9), base).is_some());
        assert!(l.transmit(3, 5, SimTime::from_secs(10), base).is_none());
        assert!(l.transmit(5, 3, SimTime::from_secs(15), base).is_none());
        assert!(l.transmit(3, 5, SimTime::from_secs(20), base).is_some());
        assert!(l.transmit(3, 4, SimTime::from_secs(15), base).is_some());
        assert_eq!(l.dropped(), 2);
    }

    #[test]
    fn partitions_cut_cross_island_traffic_only() {
        let plan = FaultPlan::with_loss(1, 0.0).partition(
            vec![1, 2, 3],
            SimTime::from_secs(5),
            SimTime::from_secs(15),
        );
        let l = FaultyLink::new(plan);
        let base = SimTime::from_millis(1);
        let mid = SimTime::from_secs(10);
        assert!(l.transmit(1, 2, mid, base).is_some(), "intra-island cut");
        assert!(l.transmit(8, 9, mid, base).is_some(), "mainland cut");
        assert!(l.transmit(1, 8, mid, base).is_none(), "cross not cut");
        assert!(l.transmit(8, 2, mid, base).is_none());
        assert!(l.transmit(1, 8, SimTime::from_secs(15), base).is_some());
    }

    #[test]
    fn crash_edges_are_time_sorted() {
        let plan = FaultPlan::none()
            .crash(4, SimTime::from_secs(30), SimTime::from_secs(90))
            .crash_forever(2, SimTime::from_secs(10))
            .crash(9, SimTime::from_secs(30), SimTime::from_secs(40));
        let edges = plan.crash_edges();
        assert_eq!(
            edges,
            vec![
                (SimTime::from_secs(10), 2, true),
                (SimTime::from_secs(30), 4, true),
                (SimTime::from_secs(30), 9, true),
                (SimTime::from_secs(40), 9, false),
                (SimTime::from_secs(90), 4, false),
            ]
        );
    }
}
