//! A counters / gauges / histograms registry with deterministic export.
//!
//! The workspace grew several disjoint accounting mechanisms — the ALM
//! relaxation counters, the SOMO `TrafficLedger`, the market's leak census,
//! the recovery timeline. [`MetricsRegistry`] unifies them behind one
//! name-keyed interface so a run's accounting can be collected in one place
//! and exported as JSON lines next to the event trace.
//!
//! Names are dot-separated paths (`"gather.rounds_completed"`,
//! `"market.leaked_degrees"`). Storage is `BTreeMap`-backed, so export
//! order is the sorted name order — deterministic regardless of insertion
//! order, which keeps same-seed runs byte-identical.

use std::collections::BTreeMap;

use crate::stats::Histogram;

/// Name-keyed counters, gauges, and histograms. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment counter `name` by 1 (creating it at 0 first if absent).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Add `delta` to counter `name` (creating it at 0 first if absent).
    /// Accumulation saturates at `u64::MAX`: a hot counter on a long-lived
    /// live market pins at the ceiling instead of wrapping (or panicking
    /// under debug assertions). [`MetricsRegistry::absorb`] inherits the
    /// same behavior.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c = c.saturating_add(delta);
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Create (or replace) histogram `name` with `n` buckets over
    /// `[lo, hi)`.
    pub fn register_histogram(&mut self, name: &str, lo: f64, hi: f64, n: usize) {
        self.histograms
            .insert(name.to_owned(), Histogram::new(lo, hi, n));
    }

    /// Record `value` into histogram `name`.
    ///
    /// # Panics
    /// If the histogram was never registered — observation sites and
    /// registration sites must agree, and a silent drop would corrupt the
    /// export.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram `{name}` not registered"))
            .push(value);
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Fold every entry of `other` into `self`: counters add, gauges
    /// overwrite, histograms merge bucket-wise when shapes match (and are
    /// otherwise replaced).
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.insert(k.clone(), h.clone());
        }
    }

    /// Export every metric as JSON lines, one object per line, sorted by
    /// kind then name. Byte-identical across same-seed runs.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "{{\"kind\":\"counter\",\"name\":{},\"value\":{}}}\n",
                json_str(name),
                v
            ));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!(
                "{{\"kind\":\"gauge\",\"name\":{},\"value\":{}}}\n",
                json_str(name),
                fmt_f64(*v)
            ));
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<String> = h.buckets().iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(
                "{{\"kind\":\"histogram\",\"name\":{},\"total\":{},\"buckets\":[{}]}}\n",
                json_str(name),
                h.total(),
                buckets.join(",")
            ));
        }
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn export_order_is_independent_of_insertion_order() {
        let mut a = MetricsRegistry::new();
        a.inc("b.second");
        a.inc("a.first");
        a.set_gauge("z", 1.5);
        let mut b = MetricsRegistry::new();
        b.set_gauge("z", 1.5);
        b.inc("a.first");
        b.inc("b.second");
        assert_eq!(a.to_json_lines(), b.to_json_lines());
        let text = a.to_json_lines();
        let first = text.lines().next().unwrap();
        assert!(first.contains("a.first"), "sorted order: {first}");
    }

    #[test]
    fn histograms_register_observe_and_export() {
        let mut m = MetricsRegistry::new();
        m.register_histogram("lat", 0.0, 10.0, 5);
        m.observe("lat", 1.0);
        m.observe("lat", 9.0);
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.total(), 2);
        assert!(m.to_json_lines().contains("\"histogram\""));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn observing_an_unregistered_histogram_panics() {
        let mut m = MetricsRegistry::new();
        m.observe("missing", 1.0);
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let mut m = MetricsRegistry::new();
        m.add("hot", u64::MAX - 1);
        // The add that would overflow pins the counter at the ceiling.
        m.add("hot", 5);
        assert_eq!(m.counter("hot"), u64::MAX);
        m.inc("hot");
        assert_eq!(m.counter("hot"), u64::MAX);
        // Absorb goes through the same saturating path.
        let mut other = MetricsRegistry::new();
        other.add("hot", u64::MAX);
        let mut a = MetricsRegistry::new();
        a.add("hot", 7);
        a.absorb(&other);
        assert_eq!(a.counter("hot"), u64::MAX);
    }

    #[test]
    fn absorb_adds_counters_and_overwrites_gauges() {
        let mut a = MetricsRegistry::new();
        a.add("n", 2);
        a.set_gauge("g", 1.0);
        let mut b = MetricsRegistry::new();
        b.add("n", 3);
        b.set_gauge("g", 7.0);
        a.absorb(&b);
        assert_eq!(a.counter("n"), 5);
        assert_eq!(a.gauge("g"), Some(7.0));
    }
}
