#![warn(missing_docs)]

//! # simcore — deterministic discrete-event simulation engine
//!
//! Substrate for the P2P resource-pool reproduction (Zhang et al., ICPP 2004).
//! All protocol behaviour in the workspace — DHT heartbeats, SOMO report
//! flows, ALM session churn — is simulated on this engine rather than on real
//! sockets, so every experiment is reproducible bit-for-bit from a seed.
//!
//! The engine is intentionally minimal and generic:
//!
//! * [`SimTime`] — a microsecond-resolution simulated clock value.
//! * [`EventQueue`] — a priority queue of `(SimTime, E)` pairs with a
//!   deterministic FIFO tie-break for simultaneous events.
//! * [`rng`] — seed-derivation helpers so each simulated entity gets an
//!   independent, reproducible random stream.
//! * [`stats`] — online statistics, percentiles, CDFs and histograms used by
//!   the figure-regeneration harnesses.
//! * [`faults`] — seed-deterministic fault injection: message loss, delay
//!   jitter, link outages/partitions and crash schedules ([`FaultPlan`]),
//!   executed per message by a [`FaultyLink`].
//! * [`audit`] — cross-crate invariant auditing: registerable named
//!   invariants ([`audit::InvariantSet`]) sampled on the event clock by an
//!   [`Auditor`], hard-failing under `debug-assertions` and reporting
//!   violations ([`audit::AuditReport`]) in release sweeps.
//! * [`trace`] — deterministic structured event tracing: typed
//!   [`TraceEvent`]s stamped on the simulated clock, bounded ring-buffer
//!   sink, zero-cost no-op sink by default, JSON-lines export, and a
//!   bounded [`StreamSink`] with counted (never silent) overflow drops for
//!   live consumption through its [`StreamHandle`].
//! * [`metrics`] — a counters/gauges/histograms registry
//!   ([`MetricsRegistry`]) unifying per-subsystem accounting behind one
//!   name-keyed interface with deterministic JSON-lines export.
//!
//! ## Example
//!
//! ```
//! use simcore::{EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32), Done }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_millis(10), Ev::Ping(1));
//! q.schedule(SimTime::from_millis(5), Ev::Ping(0));
//! q.schedule(SimTime::from_millis(10), Ev::Done); // same time: FIFO order
//!
//! let mut seen = vec![];
//! while let Some((t, ev)) = q.pop() {
//!     seen.push((t.as_millis(), ev));
//! }
//! assert_eq!(seen[0].1, Ev::Ping(0));
//! assert_eq!(seen[1].1, Ev::Ping(1));
//! assert_eq!(seen[2].1, Ev::Done);
//! ```

pub mod audit;
pub mod faults;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use audit::{AuditReport, Auditor, InvariantSet};
pub use faults::{FaultPlan, FaultyLink};
pub use metrics::MetricsRegistry;
pub use queue::EventQueue;
pub use time::SimTime;
pub use trace::{
    CloseReason, StreamHandle, StreamSink, TraceEvent, TraceRecord, TraceSink, Tracer,
};
