//! Simulated time.
//!
//! [`SimTime`] is an absolute instant on the simulated clock, stored as whole
//! microseconds. Microsecond resolution comfortably covers the paper's
//! latency scales (milliseconds per overlay hop, seconds per SOMO reporting
//! cycle) while keeping arithmetic exact — no floating-point drift between
//! runs.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant of simulated time, in whole microseconds since the start of the
/// simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far away"
    /// sentinel for timers that are currently disabled.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional milliseconds (rounded to the nearest
    /// microsecond). Negative inputs saturate to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimTime((ms * 1_000.0).round().max(0.0) as u64)
    }

    /// The instant as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The instant as whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction: `self - other`, or [`SimTime::ZERO`] if the
    /// result would be negative.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_micros(1_500).as_millis(), 1);
        assert!((SimTime::from_millis_f64(1.5).as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn from_millis_f64_clamps_negatives() {
        assert_eq!(SimTime::from_millis_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a + b, SimTime::from_millis(14));
        assert_eq!(a - b, SimTime::from_millis(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_micros(1)), None);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_millis(250)), "250.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000s");
    }
}
