//! Cross-crate invariant auditing, sampled on the event clock.
//!
//! Long fault-injection runs can silently corrupt shared state (leaked degree
//! reservations, oversubscribed hosts, resurrected tombstones) in ways no
//! single unit test observes, because the corruption only matters several
//! simulated minutes after the bug. The auditor closes that gap: a sim
//! registers a set of named invariants over a read-only view of its state
//! ([`InvariantSet`]) and samples them periodically on its own event clock.
//!
//! Failure policy is two-tier:
//!
//! * under `debug-assertions` a violated invariant **panics** at the sample
//!   where it first becomes observable, pointing at the event-time
//!   neighbourhood of the bug;
//! * in release builds violations are recorded into an [`AuditReport`] that
//!   the sim embeds in its outcome, so benches can assert cleanliness
//!   (`report.is_clean()`) without paying for aborts mid-sweep.
//!
//! Checks are plain `fn` pointers, which keeps a set cheap to construct (it
//! can be rebuilt per sample when the state view borrows locals) and keeps
//! sampling allocation-free on the clean path.

use serde::Serialize;

use crate::time::SimTime;

/// One recorded invariant violation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Violation {
    /// Name of the violated invariant, as registered.
    pub invariant: &'static str,
    /// Event-clock instant of the sample that observed it.
    pub at: SimTime,
    /// Human-readable description of the observed state.
    pub detail: String,
}

/// Aggregated results of all samples taken by one [`Auditor`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct AuditReport {
    /// Number of samples taken.
    pub samples: u64,
    /// Total individual invariant checks evaluated across all samples.
    pub checks: u64,
    /// Every violation observed, in sample order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// True when no sampled invariant was ever violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations recorded for one named invariant.
    pub fn count_of(&self, invariant: &str) -> usize {
        self.violations
            .iter()
            .filter(|v| v.invariant == invariant)
            .count()
    }
}

/// Collector handed to invariant checks during one sample.
pub struct AuditCtx<'a> {
    now: SimTime,
    invariant: &'static str,
    hard_fail: bool,
    report: &'a mut AuditReport,
}

impl AuditCtx<'_> {
    /// The event-clock instant of the current sample.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Assert one condition of the current invariant. `detail` is only
    /// evaluated on failure, so checks stay allocation-free when clean.
    ///
    /// # Panics
    /// Under `debug-assertions` (or [`Auditor::hard_fail`]) a failed check
    /// panics immediately; otherwise it is recorded in the report.
    pub fn check(&mut self, cond: bool, detail: impl FnOnce() -> String) {
        self.report.checks += 1;
        if cond {
            return;
        }
        let v = Violation {
            invariant: self.invariant,
            at: self.now,
            detail: detail(),
        };
        if self.hard_fail {
            panic!(
                "invariant `{}` violated at {}: {}",
                v.invariant, v.at, v.detail
            );
        }
        self.report.violations.push(v);
    }
}

/// A named, registerable set of invariants over a state view `S`.
///
/// `S` is typically a short-lived borrow bundle the sim assembles at each
/// sample (`struct MarketAuditView<'a> { pool: &'a ResourcePool, .. }`);
/// because the checks are `fn` pointers, the set itself is trivially cheap
/// and can be rebuilt per sample for any concrete lifetime.
/// A single invariant check over a state view `S`.
pub type InvariantFn<S> = fn(&S, &mut AuditCtx<'_>);

/// The named invariants a sampler evaluates together (see module docs).
pub struct InvariantSet<S> {
    checks: Vec<(&'static str, InvariantFn<S>)>,
}

impl<S> Default for InvariantSet<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> InvariantSet<S> {
    /// An empty set.
    pub fn new() -> Self {
        InvariantSet { checks: Vec::new() }
    }

    /// Register a named invariant. Names appear verbatim in violations.
    pub fn register(mut self, name: &'static str, check: InvariantFn<S>) -> Self {
        self.checks.push((name, check));
        self
    }

    /// The registered invariant names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.checks.iter().map(|(n, _)| *n)
    }

    /// Number of registered invariants.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// True when no invariant is registered.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }
}

/// Periodic invariant sampler.
///
/// The auditor does not own a clock: the sim drives it from its own event
/// loop, either unconditionally ([`Auditor::sample`]) or gated on the
/// sampling period ([`Auditor::due`] / [`Auditor::sample_due`]).
#[derive(Debug)]
pub struct Auditor {
    period: SimTime,
    next_at: SimTime,
    hard_fail: bool,
    report: AuditReport,
}

impl Auditor {
    /// An auditor sampling every `period`, starting at `t = 0`. Hard-fail
    /// defaults to the build's `debug-assertions` setting.
    pub fn every(period: SimTime) -> Auditor {
        Auditor {
            period,
            next_at: SimTime::ZERO,
            hard_fail: cfg!(debug_assertions),
            report: AuditReport::default(),
        }
    }

    /// Override the hard-fail policy (panic on first violation).
    pub fn hard_fail(mut self, on: bool) -> Auditor {
        self.hard_fail = on;
        self
    }

    /// The sampling period.
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// True when the next periodic sample is due at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_at
    }

    /// Evaluate every invariant in `set` against `state`, recording the
    /// sample at event time `now`.
    pub fn sample<S>(&mut self, set: &InvariantSet<S>, state: &S, now: SimTime) {
        self.report.samples += 1;
        for (name, check) in &set.checks {
            let mut ctx = AuditCtx {
                now,
                invariant: name,
                hard_fail: self.hard_fail,
                report: &mut self.report,
            };
            check(state, &mut ctx);
        }
    }

    /// Sample only if the period has elapsed; returns whether a sample was
    /// taken. Advances the schedule from `now`, so irregular event clocks
    /// cannot accumulate a sampling debt.
    pub fn sample_due<S>(&mut self, set: &InvariantSet<S>, state: &S, now: SimTime) -> bool {
        if !self.due(now) {
            return false;
        }
        self.next_at = now + self.period;
        self.sample(set, state, now);
        true
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &AuditReport {
        &self.report
    }

    /// Consume the auditor, yielding its report.
    pub fn into_report(self) -> AuditReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        used: u32,
        cap: u32,
    }

    fn within_capacity(t: &Toy, ctx: &mut AuditCtx<'_>) {
        ctx.check(t.used <= t.cap, || {
            format!("used {} exceeds capacity {}", t.used, t.cap)
        })
    }

    fn capacity_positive(t: &Toy, ctx: &mut AuditCtx<'_>) {
        ctx.check(t.cap > 0, || "zero capacity".into())
    }

    fn toy_set() -> InvariantSet<Toy> {
        InvariantSet::new()
            .register("within-capacity", within_capacity)
            .register("capacity-positive", capacity_positive)
    }

    #[test]
    fn clean_state_produces_clean_report() {
        let mut aud = Auditor::every(SimTime::from_secs(1)).hard_fail(false);
        let toy = Toy { used: 1, cap: 4 };
        let set = toy_set();
        aud.sample(&set, &toy, SimTime::ZERO);
        aud.sample(&set, &toy, SimTime::from_secs(1));
        let rep = aud.into_report();
        assert!(rep.is_clean());
        assert_eq!(rep.samples, 2);
        assert_eq!(rep.checks, 4);
    }

    #[test]
    fn violations_are_recorded_with_name_time_and_detail() {
        let mut aud = Auditor::every(SimTime::from_secs(1)).hard_fail(false);
        let toy = Toy { used: 9, cap: 4 };
        let set = toy_set();
        aud.sample(&set, &toy, SimTime::from_secs(7));
        let rep = aud.report();
        assert!(!rep.is_clean());
        assert_eq!(rep.count_of("within-capacity"), 1);
        assert_eq!(rep.count_of("capacity-positive"), 0);
        assert_eq!(rep.violations[0].at, SimTime::from_secs(7));
        assert!(rep.violations[0].detail.contains("used 9"));
    }

    #[test]
    #[should_panic(expected = "invariant `within-capacity` violated")]
    fn hard_fail_panics_on_first_violation() {
        let mut aud = Auditor::every(SimTime::from_secs(1)).hard_fail(true);
        let toy = Toy { used: 9, cap: 4 };
        aud.sample(&toy_set(), &toy, SimTime::ZERO);
    }

    #[test]
    fn sample_due_respects_the_period() {
        let mut aud = Auditor::every(SimTime::from_secs(10)).hard_fail(false);
        let toy = Toy { used: 0, cap: 1 };
        let set = toy_set();
        assert!(aud.sample_due(&set, &toy, SimTime::ZERO));
        assert!(!aud.sample_due(&set, &toy, SimTime::from_secs(4)));
        assert!(aud.sample_due(&set, &toy, SimTime::from_secs(10)));
        // The schedule advances from the sampled instant, not in fixed
        // multiples: a late sample does not cause a burst of catch-ups.
        assert!(!aud.sample_due(&set, &toy, SimTime::from_secs(19)));
        assert!(aud.sample_due(&set, &toy, SimTime::from_secs(25)));
        assert_eq!(aud.report().samples, 3);
    }

    #[test]
    fn set_reports_names_in_registration_order() {
        let names: Vec<_> = toy_set().names().collect();
        assert_eq!(names, vec!["within-capacity", "capacity-positive"]);
        assert_eq!(toy_set().len(), 2);
        assert!(!toy_set().is_empty());
    }
}
