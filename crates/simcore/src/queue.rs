//! The discrete-event queue.
//!
//! A thin wrapper over a binary heap keyed by `(SimTime, sequence)`. The
//! sequence number gives simultaneous events a deterministic FIFO order —
//! essential for reproducibility: two heartbeats scheduled for the same
//! instant are always delivered in the order they were scheduled, on every
//! run.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events are arbitrary payloads `E`; the caller owns the dispatch loop:
///
/// ```ignore
/// while let Some((now, ev)) = queue.pop() {
///     world.handle(now, ev, &mut queue);
/// }
/// ```
///
/// `pop` never returns events out of time order, and the queue tracks the
/// current simulated time ([`EventQueue::now`]) as the timestamp of the last
/// popped event. Scheduling an event in the past (before `now`) is clamped to
/// `now` — a message can arrive "immediately" but never travel back in time.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Times before the current clock
    /// are clamped to the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Schedule `event` to fire `delay` after the current clock.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the earliest pending event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "event queue time went backwards");
        self.now = e.at;
        self.popped += 1;
        Some((e.at, e.event))
    }

    /// Peek at the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Peek at the earliest pending event without popping it: the same
    /// `(at, event)` the next [`EventQueue::pop`] would return. The clock
    /// does not advance.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|Reverse(e)| (e.at, &e.event))
    }

    /// Drain and discard all pending events (the clock is left where it is).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_millis(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(5));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.pop();
        // Now at t=10ms; scheduling at t=2ms must deliver at t=10ms.
        q.schedule(SimTime::from_millis(2), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_millis(10));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 0);
        q.pop();
        q.schedule_after(SimTime::from_millis(5), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    fn peek_matches_next_pop_without_advancing() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "b");
        q.schedule(SimTime::from_millis(10), "a");
        assert_eq!(q.peek(), Some((SimTime::from_millis(10), &"a")));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.peek(), Some((SimTime::from_millis(30), &"b")));
        q.pop();
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.delivered(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
