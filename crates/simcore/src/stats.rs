//! Statistics helpers for experiment harnesses.
//!
//! Everything the figure-regeneration binaries need: online mean/variance
//! (Welford), exact percentiles over collected samples, empirical CDFs
//! (Figure 4 of the paper is a relative-error CDF), and fixed-width
//! histograms.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile of a sample set; `q` in `[0, 1]`, linear interpolation.
/// Returns `None` on an empty slice. The input need not be sorted.
///
/// `total_cmp` orders the samples: identical to `partial_cmp` for NaN-free
/// inputs (the proptest below pins that), and well-defined — NaNs sort to
/// the ends — instead of panicking if a poisoned metric ever leaks one in.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    percentile_by(samples, q, f64::total_cmp)
}

/// Jain's fairness index of a share vector: `(Σx)² / (n·Σx²)`.
///
/// Bounded in `[1/n, 1]` for non-negative shares; exactly 1 when every
/// share is equal, and `k/n` when `k` parties split the pool evenly and the
/// rest get nothing. Degenerate inputs — an empty slice or all-zero shares
/// — return 1.0: a pool with nothing allocated is trivially fair.
pub fn jain_index(shares: &[f64]) -> f64 {
    if shares.is_empty() {
        return 1.0;
    }
    let sum: f64 = shares.iter().sum();
    let sum_sq: f64 = shares.iter().map(|&x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sum_sq)
}

/// [`percentile`] with the sort comparator injected — lets the proptest run
/// the `total_cmp` path against the historical `partial_cmp` path on the
/// same inputs.
fn percentile_by(
    samples: &[f64],
    q: f64,
    cmp: impl Fn(&f64, &f64) -> std::cmp::Ordering,
) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(cmp);
    Some(percentile_sorted(&v, q))
}

/// Percentile of an already-sorted slice (panics on empty input).
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// An empirical cumulative distribution function over collected samples.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build a CDF from samples (NaNs are rejected with a panic).
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "NaN sample in CDF input"
        );
        // The assert above keeps NaNs out, so `total_cmp` sorts exactly as
        // the historical `partial_cmp` did (pinned by the proptest below).
        Self::from_samples_by(samples, f64::total_cmp)
    }

    /// [`Cdf::from_samples`] with the sort comparator injected for the
    /// `total_cmp` / `partial_cmp` equivalence proptest.
    fn from_samples_by(
        mut samples: Vec<f64>,
        cmp: impl Fn(&f64, &f64) -> std::cmp::Ordering,
    ) -> Self {
        samples.sort_by(cmp);
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The value below which a fraction `q` of samples fall (inverse CDF).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(percentile_sorted(&self.sorted, q))
        }
    }

    /// Sample the CDF at `points` evenly spaced x-values spanning the data
    /// range, returning `(x, F(x))` pairs — convenient for printing a curve.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return vec![];
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap();
        (0..points)
            .map(|i| {
                let x = if points == 1 {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (points - 1) as f64
                };
                (x, self.fraction_at(x))
            })
            .collect()
    }
}

/// Fixed-width histogram over `[lo, hi)` with values outside clamped to the
/// edge buckets.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
}

impl Histogram {
    /// A histogram with `n` buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0);
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
        }
    }

    /// Insert a sample.
    pub fn push(&mut self, x: f64) {
        let n = self.buckets.len();
        let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64).floor();
        let idx = (idx.max(0.0) as usize).min(n - 1);
        self.buckets[idx] += 1;
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total count.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `(bucket_midpoint, count)` pairs.
    pub fn midpoints(&self) -> Vec<(f64, u64)> {
        let n = self.buckets.len();
        let w = (self.hi - self.lo) / n as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance of this classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.mean(), a.variance(), a.count());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.mean(), a.variance(), a.count()));

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn cdf_fraction_and_quantile() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 2.0, 10.0]);
        assert_eq!(cdf.fraction_at(0.5), 0.0);
        assert_eq!(cdf.fraction_at(2.0), 0.75);
        assert_eq!(cdf.fraction_at(100.0), 1.0);
        assert_eq!(cdf.quantile(1.0), Some(10.0));
        let curve = cdf.curve(10);
        assert_eq!(curve.len(), 10);
        assert!(
            curve.windows(2).all(|w| w[0].1 <= w[1].1),
            "CDF must be monotone"
        );
    }

    proptest::proptest! {
        // On NaN-free sample sets (quantized so equal values are common),
        // the `total_cmp`-based percentile sort and CDF construction are
        // bit-identical to the historical `partial_cmp` paths.
        #[test]
        fn percentile_and_cdf_match_partial_cmp_on_nan_free_samples(
            raw in proptest::collection::vec(0u32..2000, 1..64),
            qraw in 0u32..101,
        ) {
            let xs: Vec<f64> = raw.iter().map(|&x| x as f64 * 0.5 - 300.0).collect();
            let q = qraw as f64 / 100.0;
            let new = percentile_by(&xs, q, f64::total_cmp);
            let old = percentile_by(&xs, q, |a, b| a.partial_cmp(b).unwrap());
            proptest::prop_assert_eq!(new.map(f64::to_bits), old.map(f64::to_bits));
            let c_new = Cdf::from_samples_by(xs.clone(), f64::total_cmp);
            let c_old = Cdf::from_samples_by(xs, |a, b| a.partial_cmp(b).unwrap());
            let bits = |c: &Cdf| c.sorted.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            proptest::prop_assert_eq!(bits(&c_new), bits(&c_old));
        }

        // Jain's index is bounded in [1/n, 1] for any non-negative share
        // vector (degenerate all-zero inputs report 1.0 by convention).
        #[test]
        fn jain_index_is_bounded(raw in proptest::collection::vec(0u32..1000, 1..64)) {
            let shares: Vec<f64> = raw.iter().map(|&x| x as f64).collect();
            let j = jain_index(&shares);
            proptest::prop_assert!(j <= 1.0 + 1e-9);
            proptest::prop_assert!(j >= 1.0 / shares.len() as f64 - 1e-9);
        }

        // Perfectly equal shares score exactly 1.
        #[test]
        fn jain_index_is_one_on_equal_shares(v in 1u32..1000, n in 1usize..64) {
            let shares = vec![v as f64; n];
            proptest::prop_assert!((jain_index(&shares) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn jain_index_degenerate_inputs_are_trivially_fair() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0, 0.0]), 1.0);
        // k of n parties splitting evenly scores k/n.
        let j = jain_index(&[5.0, 5.0, 0.0, 0.0]);
        assert!((j - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(-1.0); // clamps to bucket 0
        h.push(0.5);
        h.push(9.9);
        h.push(11.0); // clamps to last bucket
        assert_eq!(h.total(), 4);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[4], 2);
        let mids = h.midpoints();
        assert!((mids[0].0 - 1.0).abs() < 1e-12);
    }
}
