//! Reports: the metadata SOMO gathers and disseminates.
//!
//! A report is anything that can be **merged** — the aggregation each
//! internal SOMO node performs over its children's reports. The pool layer
//! defines its own rich resource report (host candidates with coordinates,
//! degree tables and bandwidth); this module provides the abstraction plus
//! stock reports used by the infrastructure itself:
//!
//! * [`CensusReport`] — who is in the pool (membership count, zone
//!   accounting) — the "news broadcast" sanity check;
//! * [`CapabilityReport`] — the maximum-capability member, which drives the
//!   §3.2 root-swap self-optimization ("make an upward merge-sort through
//!   SOMO and first identify the most capable node").

use netsim::HostId;
use serde::{Deserialize, Serialize};

/// Mergeable metadata. `merge` must be associative and commutative so that
/// aggregation order (which depends on message timing) cannot change the
/// root's view.
pub trait Report: Clone {
    /// Fold another report into this one.
    fn merge(&mut self, other: &Self);
}

/// Membership census: how many members reported, and the extremes of their
/// last-report timestamps (for staleness accounting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CensusReport {
    /// Number of member reports folded in.
    pub members: u64,
    /// Sum of reported per-node free capacity (arbitrary units).
    pub free_capacity: f64,
}

impl CensusReport {
    /// The census contribution of one member.
    pub fn of_member(free_capacity: f64) -> CensusReport {
        CensusReport {
            members: 1,
            free_capacity,
        }
    }
}

impl Report for CensusReport {
    fn merge(&mut self, other: &Self) {
        self.members += other.members;
        self.free_capacity += other.free_capacity;
    }
}

/// Tracks the single most capable member seen — an upward merge-sort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CapabilityReport {
    /// The strongest member so far, if any reported.
    pub best: Option<(HostId, f64)>,
}

impl CapabilityReport {
    /// The contribution of one member with the given capability score.
    pub fn of_member(host: HostId, capability: f64) -> CapabilityReport {
        CapabilityReport {
            best: Some((host, capability)),
        }
    }
}

impl Report for CapabilityReport {
    fn merge(&mut self, other: &Self) {
        match (self.best, other.best) {
            (None, b) => self.best = b,
            (Some(_), None) => {}
            (Some((ah, ac)), Some((bh, bc))) => {
                // Deterministic tie-break on host id.
                if bc > ac || (bc == ac && bh < ah) {
                    self.best = Some((bh, bc));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_merge_adds() {
        let mut a = CensusReport::of_member(2.0);
        a.merge(&CensusReport::of_member(3.0));
        assert_eq!(a.members, 2);
        assert_eq!(a.free_capacity, 5.0);
    }

    #[test]
    fn census_merge_is_commutative() {
        let xs = [1.0, 5.0, 2.5, 0.0];
        let mut fwd = CensusReport::default();
        let mut rev = CensusReport::default();
        for &x in &xs {
            fwd.merge(&CensusReport::of_member(x));
        }
        for &x in xs.iter().rev() {
            rev.merge(&CensusReport::of_member(x));
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn capability_keeps_maximum() {
        let mut r = CapabilityReport::default();
        r.merge(&CapabilityReport::of_member(HostId(1), 10.0));
        r.merge(&CapabilityReport::of_member(HostId(2), 30.0));
        r.merge(&CapabilityReport::of_member(HostId(3), 20.0));
        assert_eq!(r.best, Some((HostId(2), 30.0)));
    }

    #[test]
    fn capability_tie_breaks_on_host_id() {
        let mut a = CapabilityReport::of_member(HostId(9), 5.0);
        a.merge(&CapabilityReport::of_member(HostId(2), 5.0));
        assert_eq!(a.best, Some((HostId(2), 5.0)));
        // And the same outcome in the other merge order.
        let mut b = CapabilityReport::of_member(HostId(2), 5.0);
        b.merge(&CapabilityReport::of_member(HostId(9), 5.0));
        assert_eq!(b.best, Some((HostId(2), 5.0)));
    }

    #[test]
    fn capability_merge_with_empty() {
        let mut e = CapabilityReport::default();
        e.merge(&CapabilityReport::default());
        assert_eq!(e.best, None);
        e.merge(&CapabilityReport::of_member(HostId(4), 1.0));
        assert_eq!(e.best, Some((HostId(4), 1.0)));
        let mut f = CapabilityReport::of_member(HostId(4), 1.0);
        f.merge(&CapabilityReport::default());
        assert_eq!(f.best, Some((HostId(4), 1.0)));
    }
}
