//! The logical SOMO tree.
//!
//! Geometry: the whole ID circle `[0, 2⁶⁴)` is the root's region; its
//! logical point is the region center (0.5 of the space, as the paper puts
//! it). A region splits into `k` near-equal child regions; subdivision stops
//! when a region lies entirely inside a single DHT node's zone (deeper
//! children would all be hosted by that same node and add nothing). Every
//! logical node is **hosted** by the DHT node owning its center point.
//!
//! The paper describes the construction bottom-up — each DHT node picks the
//! highest logical point inside its zone as its representative and connects
//! to the owner of the parent point. Building top-down from the same rules
//! produces the identical tree (`rep_of` and the property tests verify
//! this); top-down is simply more convenient for a snapshot data structure.

use dht::id::NodeId;
use dht::Ring;

/// One logical tree node.
#[derive(Clone, Debug)]
pub struct LogicalNode {
    /// Depth in the tree (root = 0).
    pub level: u32,
    /// Region `[lo, hi)` of the ID circle this node is responsible for
    /// (u128 so `hi = 2⁶⁴` is representable).
    pub region: (u128, u128),
    /// The logical point (region center); the node is hosted by its owner.
    pub point: NodeId,
    /// Sorted ring index of the hosting DHT node.
    pub host: usize,
    /// Parent position in [`SomoTree::nodes`] (`None` for the root).
    pub parent: Option<u32>,
    /// Child positions in [`SomoTree::nodes`].
    pub children: Vec<u32>,
}

impl LogicalNode {
    /// Whether this is a leaf of the active tree.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A snapshot of the SOMO tree over one ring membership.
pub struct SomoTree {
    fanout: usize,
    nodes: Vec<LogicalNode>,
}

impl SomoTree {
    /// Build the tree for the current membership of `ring` with the given
    /// fanout (the paper's example uses k = 8).
    ///
    /// # Panics
    /// If `fanout < 2` or the ring is empty.
    pub fn build(ring: &Ring, fanout: usize) -> SomoTree {
        assert!(fanout >= 2, "SOMO fanout must be at least 2");
        assert!(!ring.is_empty(), "cannot build SOMO over an empty ring");
        let mut nodes = Vec::new();
        let full: (u128, u128) = (0, 1u128 << 64);
        let root_point = center(full);
        nodes.push(LogicalNode {
            level: 0,
            region: full,
            point: root_point,
            host: ring.owner(root_point),
            parent: None,
            children: Vec::new(),
        });
        // Breadth-first subdivision.
        let mut frontier = vec![0u32];
        while let Some(idx) = frontier.pop() {
            let (lo, hi) = nodes[idx as usize].region;
            let level = nodes[idx as usize].level;
            // Leaf condition: at most one member ID inside the region —
            // deeper subdivision could not separate members any further.
            // (The width floor is unreachable for realistic rings but keeps
            // adversarial ID layouts terminating.)
            if members_in_region(ring, lo, hi) <= 1 || hi - lo < fanout as u128 {
                continue;
            }
            let width = hi - lo;
            for c in 0..fanout as u128 {
                let clo = lo + width * c / fanout as u128;
                let chi = lo + width * (c + 1) / fanout as u128;
                let point = center((clo, chi));
                let child = LogicalNode {
                    level: level + 1,
                    region: (clo, chi),
                    point,
                    host: ring.owner(point),
                    parent: Some(idx),
                    children: Vec::new(),
                };
                let ci = nodes.len() as u32;
                nodes.push(child);
                nodes[idx as usize].children.push(ci);
                frontier.push(ci);
            }
        }
        SomoTree { fanout, nodes }
    }

    /// Assemble a tree from explicit nodes — used by in-crate tests to
    /// exercise accounting code on degenerate shapes (e.g. duplicate region
    /// keys) that `build` never produces.
    #[cfg(test)]
    pub(crate) fn from_nodes(fanout: usize, nodes: Vec<LogicalNode>) -> SomoTree {
        assert!(!nodes.is_empty(), "a tree needs at least a root");
        SomoTree { fanout, nodes }
    }

    /// The tree fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// All logical nodes (index 0 is the root).
    pub fn nodes(&self) -> &[LogicalNode] {
        &self.nodes
    }

    /// The root logical node.
    pub fn root(&self) -> &LogicalNode {
        &self.nodes[0]
    }

    /// Number of logical nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never, after `build`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Maximum depth (root = 0).
    pub fn depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Indices of all leaves.
    pub fn leaves(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.nodes.len() as u32).filter(|&i| self.nodes[i as usize].is_leaf())
    }

    /// The representative of a DHT node per the paper's bottom-up rule: the
    /// **highest** logical node hosted by ring member `ring_idx`, i.e. the
    /// logical node of minimum level whose point lies in that member's zone.
    pub fn rep_of(&self, ring_idx: usize) -> Option<u32> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.host == ring_idx)
            .min_by_key(|(_, n)| n.level)
            .map(|(i, _)| i as u32)
    }

    /// The leaf whose region contains the given ID. Every member reports
    /// its metadata through the leaf containing its *own* ID — unique,
    /// because leaf regions tile the circle and hold at most one member ID.
    pub fn canonical_leaf_of(&self, id: NodeId) -> u32 {
        let p = id.0 as u128;
        let mut cur = 0u32;
        loop {
            let n = &self.nodes[cur as usize];
            if n.is_leaf() {
                return cur;
            }
            cur = *n
                .children
                .iter()
                .find(|&&c| {
                    let (lo, hi) = self.nodes[c as usize].region;
                    lo <= p && p < hi
                })
                .expect("children partition the parent region");
        }
    }

    /// Ring indices hosting at least one logical node.
    pub fn hosts(&self) -> Vec<usize> {
        let mut h: Vec<usize> = self.nodes.iter().map(|n| n.host).collect();
        h.sort_unstable();
        h.dedup();
        h
    }
}

fn center(region: (u128, u128)) -> NodeId {
    NodeId(((region.0 + region.1) / 2) as u64)
}

/// The root's logical point: the midpoint of the whole space ("0.5 of the
/// total space [0, 1]").
pub fn root_point() -> NodeId {
    NodeId::MID
}

/// Number of member IDs falling in the non-wrapping interval `[lo, hi)`.
fn members_in_region(ring: &Ring, lo: u128, hi: u128) -> usize {
    let ids = ring.members();
    let a = ids.partition_point(|m| (m.id.0 as u128) < lo);
    let b = ids.partition_point(|m| (m.id.0 as u128) < hi);
    b - a
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::HostId;
    use proptest::prelude::*;

    fn ring(n: u32, seed: u64) -> Ring {
        Ring::with_random_ids((0..n).map(HostId), seed)
    }

    #[test]
    fn root_sits_at_space_midpoint() {
        let r = ring(64, 1);
        let t = SomoTree::build(&r, 8);
        assert_eq!(t.root().point, NodeId::MID);
        assert_eq!(t.root().host, r.owner(NodeId::MID));
    }

    #[test]
    fn depth_is_logarithmic() {
        let r = ring(512, 2);
        let t = SomoTree::build(&r, 8);
        // Depth is driven by the closest ID pair: for n random 64-bit IDs
        // the minimum gap is ≈ 2⁶⁴/n², so depth ≈ 2·log_k n. For 512 at
        // k=8 that is ~6.
        let d = t.depth();
        assert!(d >= 3, "depth {d} too shallow");
        assert!(d <= 10, "depth {d} too deep for 512 nodes at k=8");
    }

    #[test]
    fn canonical_leaf_is_unique_and_near_its_member() {
        let r = ring(128, 3);
        let t = SomoTree::build(&r, 4);
        let mut seen = std::collections::HashSet::new();
        for (idx, m) in r.members().iter().enumerate() {
            let leaf = t.canonical_leaf_of(m.id);
            assert!(seen.insert(leaf), "two members share a canonical leaf");
            let n = &t.nodes()[leaf as usize];
            assert!(n.is_leaf());
            let (lo, hi) = n.region;
            assert!(lo <= m.id.0 as u128 && (m.id.0 as u128) < hi);
            // Hosted by the member itself or its ring successor (the
            // region holds no other member ID, so its center's owner is
            // one of the two).
            assert!(
                n.host == idx || n.host == r.successor(idx),
                "canonical leaf hosted by a stranger"
            );
        }
    }

    #[test]
    fn leaves_tile_the_space() {
        let r = ring(100, 4);
        let t = SomoTree::build(&r, 8);
        let mut regions: Vec<(u128, u128)> =
            t.leaves().map(|i| t.nodes()[i as usize].region).collect();
        regions.sort();
        assert_eq!(regions[0].0, 0);
        assert_eq!(regions.last().unwrap().1, 1u128 << 64);
        for w in regions.windows(2) {
            assert_eq!(w[0].1, w[1].0, "gap or overlap between leaf regions");
        }
    }

    #[test]
    fn children_partition_parent() {
        let r = ring(100, 5);
        let t = SomoTree::build(&r, 3);
        for n in t.nodes() {
            if n.is_leaf() {
                continue;
            }
            let mut regions: Vec<(u128, u128)> = n
                .children
                .iter()
                .map(|&c| t.nodes()[c as usize].region)
                .collect();
            regions.sort();
            assert_eq!(regions[0].0, n.region.0);
            assert_eq!(regions.last().unwrap().1, n.region.1);
            for w in regions.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            assert_eq!(n.children.len(), 3);
        }
    }

    #[test]
    fn hosting_matches_ring_ownership() {
        let r = ring(64, 6);
        let t = SomoTree::build(&r, 8);
        for n in t.nodes() {
            assert_eq!(n.host, r.owner(n.point));
            assert!(r.zone_contains(n.host, n.point));
        }
    }

    #[test]
    fn rep_parent_chain_reaches_root() {
        let r = ring(64, 7);
        let t = SomoTree::build(&r, 8);
        let mut hosting = 0;
        for idx in 0..r.len() {
            // Not every member hosts a logical node (a small zone may
            // contain no region center), but those that do must chain to
            // the root.
            let Some(rep) = t.rep_of(idx) else { continue };
            hosting += 1;
            let mut cur = rep;
            let mut steps = 0;
            while let Some(p) = t.nodes()[cur as usize].parent {
                cur = p;
                steps += 1;
                assert!(steps <= t.depth());
            }
            assert_eq!(cur, 0);
        }
        assert!(hosting * 2 >= r.len(), "suspiciously few hosting members");
    }

    #[test]
    fn single_node_ring_is_just_a_root() {
        let r = ring(1, 8);
        let t = SomoTree::build(&r, 8);
        assert_eq!(t.len(), 1);
        assert!(t.root().is_leaf());
    }

    #[test]
    fn fanout_two_works() {
        let r = ring(32, 9);
        let t = SomoTree::build(&r, 2);
        for n in t.nodes() {
            assert!(n.children.len() == 2 || n.is_leaf());
        }
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn fanout_one_rejected() {
        let r = ring(4, 0);
        SomoTree::build(&r, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_tree_well_formed(n in 1u32..200, seed: u64, fanout in 2usize..9) {
            let r = ring(n, seed);
            let t = SomoTree::build(&r, fanout);
            // Every non-root has a parent whose children contain it.
            for (i, node) in t.nodes().iter().enumerate() {
                match node.parent {
                    None => prop_assert_eq!(i, 0),
                    Some(p) => {
                        prop_assert!(t.nodes()[p as usize].children.contains(&(i as u32)));
                        prop_assert_eq!(t.nodes()[p as usize].level + 1, node.level);
                    }
                }
            }
            // Every member has a unique canonical leaf hosted by itself or
            // its ring successor.
            let mut seen = std::collections::HashSet::new();
            for (idx, m) in r.members().iter().enumerate() {
                let leaf = t.canonical_leaf_of(m.id);
                prop_assert!(seen.insert(leaf));
                let host = t.nodes()[leaf as usize].host;
                prop_assert!(host == idx || host == r.successor(idx));
            }
        }
    }
}
