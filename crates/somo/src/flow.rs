//! The gather flow, simulated message-by-message.
//!
//! §3.2: "Given a data reporting interval T, information is gathered from
//! the SOMO leaves and flows to its root with a maximum delay of
//! `log_k N · T`. This bound is derived when flow between hierarchies of
//! SOMO is completely unsynchronized. If upper SOMO nodes' call for reports
//! immediately triggers the similar actions of their children, then the
//! latency can be reduced to `T + t_hop · log_k N`."
//!
//! [`GatherSim`] implements both regimes over a [`SomoTree`] snapshot:
//!
//! * **Unsynchronized** — every logical node free-runs a period-T timer;
//!   on firing it merges its children's latest partials (plus its own
//!   member data, if it is a reporting leaf) and pushes the result to its
//!   parent.
//! * **Synchronized** — the root fires every T and cascades a request down
//!   the tree; leaves answer immediately and partials aggregate on the way
//!   back up.
//!
//! Staleness is measured exactly, not asymptotically: every member's
//! contribution is stamped with its sample time, merges keep the minimum,
//! and the root's *view lag* is `now − oldest_stamp`, the paper's "the SOMO
//! root will have a global view with a lag of 1.6 s" metric.
//!
//! **Double-count avoidance.** A DHT node can host several leaves (its zone
//! may contain many small regions). Each member therefore reports through
//! exactly one canonical leaf: the leaf whose region contains the member's
//! own ID — that region is provably inside the member's own zone.

use std::collections::HashMap;

use simcore::trace::{CloseReason, TraceEvent, TraceRecord, Tracer};
use simcore::{EventQueue, FaultPlan, FaultyLink, MetricsRegistry, SimTime};

use crate::report::Report;
use crate::tree::SomoTree;

/// Gather regime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowMode {
    /// Free-running per-node timers; staleness bound `log_k N · T`.
    Unsynchronized,
    /// Root-triggered cascade; staleness ≈ `T + 2·t_hop·log_k N`.
    Synchronized,
}

/// A census stamped with sample freshness: `oldest` is the earliest sample
/// time among all folded member contributions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FreshnessReport {
    /// Number of member contributions folded in.
    pub members: u64,
    /// The stalest contribution's sample time.
    pub oldest: SimTime,
}

impl FreshnessReport {
    /// One member's contribution sampled at `t`.
    pub fn of_member(t: SimTime) -> FreshnessReport {
        FreshnessReport {
            members: 1,
            oldest: t,
        }
    }
}

impl Report for FreshnessReport {
    fn merge(&mut self, other: &Self) {
        self.members += other.members;
        self.oldest = self.oldest.min(other.oldest);
    }
}

/// One recorded root view.
#[derive(Clone, Debug)]
pub struct RootView<R> {
    /// When the root produced this view.
    pub at: SimTime,
    /// The aggregated report.
    pub view: R,
}

enum Ev<R> {
    /// Unsync: a logical node's periodic timer.
    NodeTimer(u32),
    /// Sync: the root's round timer.
    RootTimer,
    /// Sync: a request arriving at a logical node.
    Request { node: u32, round: u64 },
    /// A child partial arriving at its parent logical node. `None` when the
    /// child subtree had nothing to report (a non-canonical leaf). `from`
    /// is the sending child's logical index — sync mode dedups repeated
    /// partials per sender, unsync mode keys its latest-partial cache by it.
    Partial {
        node: u32,
        round: u64,
        from: u32,
        r: Option<R>,
    },
    /// Sync: give up waiting for this round's remaining children and send
    /// what has been accumulated (self-healing under member failure).
    Timeout { node: u32, round: u64 },
}

/// Per-round aggregation buffer (sync mode): the running partial plus which
/// children have already been folded in (dedup per sender).
#[derive(Clone)]
struct RoundBuf<R> {
    acc: Option<R>,
    seen: Vec<u32>,
}

/// The gather-flow simulator. Generic over the report type and the message
/// delay between hosting ring members.
pub struct GatherSim<'a, R, L, D>
where
    R: Report,
    L: FnMut(usize, SimTime) -> R,
    D: Fn(usize, usize) -> SimTime,
{
    tree: &'a SomoTree,
    mode: FlowMode,
    period: SimTime,
    leaf_sample: L,
    delay: D,
    queue: EventQueue<Ev<R>>,
    /// Latest partial received from each logical child (unsync mode),
    /// stamped with its arrival time so stale entries (a crashed child)
    /// age out after a few periods.
    latest: Vec<HashMap<u32, (SimTime, R)>>,
    /// Per-round aggregation buffers (sync mode).
    rounds: Vec<HashMap<u64, RoundBuf<R>>>,
    /// Which leaf reports each member's data (leaf logical idx → member).
    reporting: HashMap<u32, usize>,
    views: Vec<RootView<R>>,
    messages: u64,
    round_ctr: u64,
    /// Ring members whose hosts have crashed (they neither send nor
    /// receive; their logical nodes go silent).
    dead: std::collections::HashSet<usize>,
    /// Sync mode: how long an internal node waits for its children before
    /// forwarding a partial aggregate.
    child_timeout: SimTime,
    /// Fault layer every inter-host message is threaded through. Endpoint
    /// labels are ring member indices. A no-op plan is zero-cost.
    faults: FaultyLink,
    /// Structured event trace (disabled by default: zero cost).
    tracer: Tracer,
    /// Round/timeout accounting.
    metrics: MetricsRegistry,
}

impl<'a, R, L, D> GatherSim<'a, R, L, D>
where
    R: Report,
    L: FnMut(usize, SimTime) -> R,
    D: Fn(usize, usize) -> SimTime,
{
    /// Create a simulator over a tree snapshot.
    ///
    /// `leaf_sample(member, now)` produces a member's current local report;
    /// `delay(host_a, host_b)` is the one-way message latency between two
    /// hosting ring members (0 when they are the same member).
    pub fn new(
        tree: &'a SomoTree,
        ring: &dht::Ring,
        mode: FlowMode,
        period: SimTime,
        leaf_sample: L,
        delay: D,
    ) -> Self {
        Self::with_faults(
            tree,
            ring,
            mode,
            period,
            leaf_sample,
            delay,
            FaultPlan::none(),
        )
    }

    /// Like [`GatherSim::new`], but every inter-host message is threaded
    /// through the fault plan (endpoints are labeled by ring member index).
    /// A no-op plan behaves exactly like the fault-free constructor.
    pub fn with_faults(
        tree: &'a SomoTree,
        ring: &dht::Ring,
        mode: FlowMode,
        period: SimTime,
        leaf_sample: L,
        delay: D,
        plan: FaultPlan,
    ) -> Self {
        // Canonical reporting leaf per member: the leaf whose region
        // contains the member's own ID. The leaf's host is the member
        // itself or its ring successor; in the latter case the member's
        // report costs one extra (cheap, ring-neighbor) fetch hop.
        let mut reporting = HashMap::new();
        for m in 0..ring.len() {
            let leaf = tree.canonical_leaf_of(ring.member(m).id);
            let prev = reporting.insert(leaf, m);
            debug_assert!(prev.is_none(), "two members share a canonical leaf");
        }

        let n = tree.len();
        let mut queue = EventQueue::new();
        match mode {
            FlowMode::Unsynchronized => {
                // Stagger timers deterministically across the first period.
                let p = period.as_micros().max(1);
                for i in 0..n as u32 {
                    let jitter =
                        SimTime::from_micros(simcore::rng::derive_seed(0x50_50, i as u64) % p);
                    queue.schedule(jitter, Ev::NodeTimer(i));
                }
            }
            FlowMode::Synchronized => {
                queue.schedule(SimTime::ZERO, Ev::RootTimer);
            }
        }

        GatherSim {
            tree,
            mode,
            period,
            leaf_sample,
            delay,
            queue,
            latest: vec![HashMap::new(); n],
            rounds: vec![HashMap::new(); n],
            reporting,
            views: Vec::new(),
            messages: 0,
            round_ctr: 0,
            dead: std::collections::HashSet::new(),
            child_timeout: period,
            faults: FaultyLink::new(plan),
            tracer: Tracer::disabled(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Attach a tracer; pass [`Tracer::ring`] to record events. The default
    /// is a disabled tracer, which costs one branch per would-be event.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Drain the tracer's buffered records (empty if tracing is disabled,
    /// `None` when a custom sink owns them — drain that sink instead).
    pub fn take_trace(&mut self) -> Option<Vec<TraceRecord>> {
        self.tracer.take_records()
    }

    /// Round/timeout accounting: `gather.rounds_completed`,
    /// `gather.rounds_timeout`, `gather.partials_deduped`,
    /// `gather.timeouts_suppressed`.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Events currently scheduled (timers, in-flight messages, pending
    /// round timeouts).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Children of `node` whose hosting members are currently alive — the
    /// number of partials a sync round can still expect.
    fn live_children(&self, node: u32) -> usize {
        self.tree.nodes()[node as usize]
            .children
            .iter()
            .filter(|&&c| !self.dead.contains(&self.tree.nodes()[c as usize].host))
            .count()
    }

    /// Crash the host behind ring member `m`: every logical node it hosts
    /// stops sending and receiving, and its member report is lost. Sync
    /// rounds keep completing thanks to the per-round child timeout; the
    /// root's view simply shrinks until the ring (and with it the tree) is
    /// rebuilt — SOMO's "regenerated after a short jitter" behaviour.
    pub fn kill_member(&mut self, m: usize) {
        self.dead.insert(m);
    }

    /// Restart a crashed member: its logical nodes resume sending and
    /// receiving, and its member report is counted again. Unsync timers
    /// were parked while dead, so the node picks up on its next tick with
    /// no extra scheduling.
    pub fn revive_member(&mut self, m: usize) {
        self.dead.remove(&m);
    }

    /// Whether ring member `m` is currently crashed.
    pub fn is_dead(&self, m: usize) -> bool {
        self.dead.contains(&m)
    }

    /// Override the sync-round child timeout (defaults to one period).
    pub fn set_child_timeout(&mut self, t: SimTime) {
        self.child_timeout = t;
    }

    /// Run until simulated time `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            self.handle(now, ev);
        }
    }

    /// Root views recorded so far, in time order.
    pub fn views(&self) -> &[RootView<R>] {
        &self.views
    }

    /// Total inter-host messages sent (same-host hops are free and not
    /// counted).
    pub fn messages_sent(&self) -> u64 {
        self.messages
    }

    /// Messages the fault layer dropped so far.
    pub fn messages_dropped(&self) -> u64 {
        self.faults.dropped()
    }

    fn handle(&mut self, now: SimTime, ev: Ev<R>) {
        // A crashed host neither fires timers nor receives messages.
        let at_node = match &ev {
            Ev::NodeTimer(i) => Some(*i),
            Ev::Request { node, .. } | Ev::Partial { node, .. } | Ev::Timeout { node, .. } => {
                Some(*node)
            }
            Ev::RootTimer => None,
        };
        if let Some(i) = at_node {
            if self.dead.contains(&self.tree.nodes()[i as usize].host) {
                // Keep unsync timers parked so a later revive would be easy.
                if let Ev::NodeTimer(i) = ev {
                    self.queue.schedule_after(self.period, Ev::NodeTimer(i));
                }
                return;
            }
        }
        match ev {
            Ev::NodeTimer(i) => {
                if let Some(r) = self.aggregate_unsync(i, now) {
                    self.emit_to_parent_after(i, 0, Some(r), SimTime::ZERO);
                }
                self.queue.schedule_after(self.period, Ev::NodeTimer(i));
            }
            Ev::RootTimer => {
                self.round_ctr += 1;
                let round = self.round_ctr;
                self.queue.schedule(now, Ev::Request { node: 0, round });
                self.queue.schedule_after(self.period, Ev::RootTimer);
            }
            Ev::Request { node, round } => {
                let n = &self.tree.nodes()[node as usize];
                if n.is_leaf() {
                    // If the reporting member is not the leaf's host, the
                    // host fetches the report from it first: one
                    // request/response round-trip between ring neighbors.
                    let leaf_host = n.host;
                    let member = self.reporting.get(&node).copied();
                    let member_dead = member.is_some_and(|m| self.dead.contains(&m));
                    // If either leg of the fetch round-trip is dropped, the
                    // member's report is lost for this round; the leaf still
                    // answers its parent (with nothing) so the round closes.
                    let mut fetch_lost = false;
                    let fetch = match member {
                        Some(m) if m != leaf_host && !member_dead => {
                            self.messages += 1;
                            let leg1 = self.faults.transmit(
                                leaf_host as u64,
                                m as u64,
                                now,
                                (self.delay)(leaf_host, m),
                            );
                            match leg1 {
                                None => {
                                    fetch_lost = true;
                                    SimTime::ZERO
                                }
                                Some(d1) => {
                                    self.messages += 1;
                                    let leg2 = self.faults.transmit(
                                        m as u64,
                                        leaf_host as u64,
                                        now + d1,
                                        (self.delay)(m, leaf_host),
                                    );
                                    match leg2 {
                                        None => {
                                            fetch_lost = true;
                                            SimTime::ZERO
                                        }
                                        Some(d2) => d1 + d2,
                                    }
                                }
                            }
                        }
                        _ => SimTime::ZERO,
                    };
                    let r = if member_dead || fetch_lost {
                        None // the member crashed (or the fetch was lost)
                    } else {
                        self.leaf_report(node, now)
                    };
                    self.emit_to_parent_after(node, round, r, fetch);
                } else {
                    // Forward to every child; remember who has answered so
                    // far this round. Children hosted by the same member
                    // get the message instantly (delay 0).
                    self.rounds[node as usize].insert(
                        round,
                        RoundBuf {
                            acc: None,
                            seen: Vec::new(),
                        },
                    );
                    let expected = self.live_children(node) as u32;
                    self.tracer.emit(now, || TraceEvent::GatherOpen {
                        node,
                        round,
                        expected,
                    });
                    let n = &self.tree.nodes()[node as usize];
                    let children = n.children.clone();
                    let my_host = n.host;
                    for c in children {
                        let ch = self.tree.nodes()[c as usize].host;
                        let d = if ch == my_host {
                            Some(SimTime::ZERO)
                        } else {
                            self.messages += 1;
                            self.faults.transmit(
                                my_host as u64,
                                ch as u64,
                                now,
                                (self.delay)(my_host, ch),
                            )
                        };
                        // A dropped request leaves that child silent this
                        // round; the per-round timeout closes the round.
                        if let Some(d) = d {
                            self.queue.schedule_after(d, Ev::Request { node: c, round });
                        }
                    }
                    self.queue
                        .schedule_after(self.child_timeout, Ev::Timeout { node, round });
                }
            }
            Ev::Timeout { node, round } => {
                // Fast path: the round usually closed on its last partial
                // and the entry is gone — the stale timeout is a no-op.
                let Some(buf) = self.rounds[node as usize].remove(&round) else {
                    self.metrics.inc("gather.timeouts_suppressed");
                    self.tracer
                        .emit(now, || TraceEvent::GatherTimeoutSuppressed { node, round });
                    return;
                };
                // Children that never answered are presumed crashed; send
                // what we have so the round still completes.
                self.metrics.inc("gather.rounds_timeout");
                let received = buf.seen.len() as u32;
                let expected = self.live_children(node) as u32;
                self.tracer.emit(now, || TraceEvent::GatherClose {
                    node,
                    round,
                    received,
                    expected,
                    reason: CloseReason::Timeout,
                });
                self.emit_to_parent_after(node, round, buf.acc, SimTime::ZERO);
            }
            Ev::Partial {
                node,
                round,
                from,
                r,
            } => match self.mode {
                FlowMode::Unsynchronized => {
                    // Keyed by the sending child so a parent keeps one
                    // latest partial per subtree.
                    if let Some(r) = r {
                        self.latest[node as usize].insert(from, (now, r));
                    }
                }
                FlowMode::Synchronized => {
                    // Live children only: a host that crashed mid-round
                    // will never answer, so waiting for its partial would
                    // stall the round all the way to the timeout.
                    let expected = self.live_children(node);
                    // The round may already be closed by a timeout; late
                    // partials are then dropped.
                    let Some(entry) = self.rounds[node as usize].get_mut(&round) else {
                        return;
                    };
                    if entry.seen.contains(&from) {
                        self.metrics.inc("gather.partials_deduped");
                        self.tracer
                            .emit(now, || TraceEvent::GatherDuplicate { node, round, from });
                        return;
                    }
                    entry.seen.push(from);
                    match (&mut entry.acc, r) {
                        (Some(acc), Some(r)) => acc.merge(&r),
                        (slot @ None, Some(r)) => *slot = Some(r),
                        (_, None) => {}
                    }
                    let received = entry.seen.len();
                    self.tracer
                        .emit(now, || TraceEvent::GatherPartial { node, round, from });
                    // `>=`, not `==`: if the live-child set shrank after
                    // some children already answered, the count can step
                    // past the target — the round must still close rather
                    // than limp to its timeout.
                    if received >= expected {
                        let buf = self.rounds[node as usize].remove(&round).unwrap();
                        self.metrics.inc("gather.rounds_completed");
                        self.tracer.emit(now, || TraceEvent::GatherClose {
                            node,
                            round,
                            received: received as u32,
                            expected: expected as u32,
                            reason: CloseReason::Completed,
                        });
                        self.emit_to_parent_after(node, round, buf.acc, SimTime::ZERO);
                    }
                }
            },
        }
    }

    /// Unsync aggregation at a logical node: own member data (if this is a
    /// reporting leaf) merged with the latest child partials. `None` when
    /// nothing has been heard yet.
    fn aggregate_unsync(&mut self, i: u32, now: SimTime) -> Option<R> {
        // Age out partials from children we have not heard from for three
        // periods — a crashed subtree must not be reported forever.
        let expiry = SimTime::from_micros(self.period.as_micros().saturating_mul(3));
        self.latest[i as usize].retain(|_, (at, _)| now.saturating_sub(*at) < expiry);
        let mut acc: Option<R> = self.leaf_report(i, now);
        for (_, (_, r)) in self.latest[i as usize].iter() {
            match &mut acc {
                Some(a) => a.merge(r),
                slot @ None => *slot = Some(r.clone()),
            }
        }
        acc
    }

    /// A leaf's contribution: the hosting member's data if this is the
    /// member's canonical leaf, nothing otherwise (avoids double-counting
    /// members whose zone holds several leaves).
    fn leaf_report(&mut self, leaf: u32, now: SimTime) -> Option<R> {
        let member = *self.reporting.get(&leaf)?;
        Some((self.leaf_sample)(member, now))
    }

    fn emit_to_parent_after(&mut self, i: u32, round: u64, r: Option<R>, extra: SimTime) {
        let n = &self.tree.nodes()[i as usize];
        match n.parent {
            None => {
                // Root: record the fresh global view.
                if let Some(view) = r {
                    let at = self.queue.now() + extra;
                    self.tracer
                        .emit(at, || TraceEvent::GatherRootView { round });
                    self.views.push(RootView { at, view });
                }
            }
            Some(p) => {
                let ph = self.tree.nodes()[p as usize].host;
                let hop = if ph == n.host {
                    Some(SimTime::ZERO)
                } else {
                    self.messages += 1;
                    self.faults.transmit(
                        n.host as u64,
                        ph as u64,
                        self.queue.now() + extra,
                        (self.delay)(n.host, ph),
                    )
                };
                // A dropped partial never reaches the parent: in sync mode
                // the round's timeout fills in, in unsync mode the parent
                // simply keeps its previous latest entry.
                let Some(hop) = hop else { return };
                let d = extra + hop;
                self.queue.schedule_after(
                    d,
                    Ev::Partial {
                        node: p,
                        round,
                        from: i,
                        r,
                    },
                );
            }
        }
    }
}

/// The paper's unsynchronized staleness bound: `ceil(log_k N) · T`.
pub fn unsync_staleness_bound(n: usize, fanout: usize, period: SimTime) -> SimTime {
    let levels = (n.max(2) as f64).log(fanout as f64).ceil() as u64;
    SimTime::from_micros(period.as_micros() * levels)
}

/// The paper's synchronized staleness bound: `T + 2·t_hop·log_k N`
/// (requests descend and partials ascend `log_k N` levels each).
pub fn sync_staleness_bound(n: usize, fanout: usize, t_hop: SimTime, period: SimTime) -> SimTime {
    let levels = (n.max(2) as f64).log(fanout as f64).ceil() as u64;
    period + SimTime::from_micros(2 * t_hop.as_micros() * levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht::Ring;
    use netsim::HostId;

    fn setup(n: u32, fanout: usize) -> (Ring, SomoTree) {
        let ring = Ring::with_random_ids((0..n).map(HostId), 13);
        let tree = SomoTree::build(&ring, fanout);
        (ring, tree)
    }

    const HOP: SimTime = SimTime::from_millis(200);
    const T: SimTime = SimTime::from_secs(5);

    fn run(
        mode: FlowMode,
        n: u32,
        fanout: usize,
        until_secs: u64,
    ) -> (Vec<RootView<FreshnessReport>>, u64, usize) {
        let (ring, tree) = setup(n, fanout);
        let mut sim = GatherSim::new(
            &tree,
            &ring,
            mode,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
        );
        sim.run_until(SimTime::from_secs(until_secs));
        (sim.views().to_vec(), sim.messages_sent(), ring.len())
    }

    #[test]
    fn sync_gather_counts_every_member_exactly_once() {
        let (views, _msgs, n) = run(FlowMode::Synchronized, 100, 8, 60);
        assert!(!views.is_empty(), "no root views recorded");
        for v in &views {
            assert_eq!(v.view.members, n as u64, "member census wrong");
        }
    }

    #[test]
    fn unsync_gather_converges_to_full_census() {
        let (views, _msgs, n) = run(FlowMode::Unsynchronized, 100, 8, 300);
        let last = views.last().expect("no views");
        assert_eq!(last.view.members, n as u64, "unsync census incomplete");
    }

    #[test]
    fn sync_staleness_within_paper_bound() {
        let (ring, tree) = setup(256, 8);
        let mut sim = GatherSim::new(
            &tree,
            &ring,
            FlowMode::Synchronized,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
        );
        sim.run_until(SimTime::from_secs(120));
        // A shallow leaf may be sampled almost immediately while the root
        // still waits for the deepest subtree's descent + fetch + ascent,
        // so the oldest-sample lag is bounded by (2·depth + 2) hops.
        let bound = SimTime::from_micros(HOP.as_micros() * (2 * tree.depth() as u64 + 2));
        for v in sim.views() {
            let lag = v.at.saturating_sub(v.view.oldest);
            assert!(lag <= bound, "sync lag {lag} exceeds bound {bound}");
        }
        // In sync mode the lag must be far below the period-dominated
        // unsync bound: it is pure propagation (samples are taken on
        // request).
        let worst = sim
            .views()
            .iter()
            .map(|v| v.at.saturating_sub(v.view.oldest))
            .max()
            .unwrap();
        assert!(worst < T, "sync lag {worst} should be below one period");
    }

    #[test]
    fn unsync_staleness_within_paper_bound() {
        let (ring, tree) = setup(256, 8);
        let mut sim = GatherSim::new(
            &tree,
            &ring,
            FlowMode::Unsynchronized,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
        );
        sim.run_until(SimTime::from_secs(600));
        // The paper's bound is levels·T; our tree's actual depth replaces
        // the idealized log_k N (random zone sizes make it ~2·log_k N).
        let levels = tree.depth() as u64 + 1;
        let bound = SimTime::from_micros(T.as_micros() * levels);
        // Skip the warm-up (views before every member has been counted).
        let full: Vec<_> = sim
            .views()
            .iter()
            .filter(|v| v.view.members == ring.len() as u64)
            .collect();
        assert!(!full.is_empty());
        // Allow per-hop propagation slack on top of the timer-phase bound.
        let slack = SimTime::from_micros(HOP.as_micros() * (levels + 2));
        for v in &full[2..] {
            let lag = v.at.saturating_sub(v.view.oldest);
            assert!(
                lag <= bound + slack,
                "unsync lag {lag} exceeds bound {bound} (+{slack})"
            );
        }
    }

    #[test]
    fn single_member_ring_reports_itself() {
        let (views, msgs, _) = run(FlowMode::Synchronized, 1, 8, 30);
        assert!(!views.is_empty());
        assert_eq!(views[0].view.members, 1);
        assert_eq!(msgs, 0, "single node should never go over the network");
    }

    #[test]
    fn message_volume_is_linear_in_tree_size() {
        let (ring, tree) = setup(200, 8);
        let mut sim = GatherSim::new(
            &tree,
            &ring,
            FlowMode::Synchronized,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
        );
        sim.run_until(SimTime::from_secs(60));
        let rounds = sim.views().len() as u64;
        assert!(rounds >= 5);
        // Per round: at most one request + one response per tree edge,
        // plus a two-message fetch per member report.
        let edges = (tree.len() - 1) as u64;
        let per_round = 2 * edges + 2 * ring.len() as u64;
        assert!(
            sim.messages_sent() <= per_round * (rounds + 2),
            "too many messages: {} for {} rounds over {} edges",
            sim.messages_sent(),
            rounds,
            edges
        );
    }

    #[test]
    fn analytic_bounds_match_paper_numbers() {
        // §3.2: "For 2M nodes and with k=8 and a typical latency of 200ms
        // per DHT hop, the SOMO root will have a global view with a lag of
        // 1.6 s" — that is t_hop · log_8(2M) ≈ 0.2 · 7 = 1.4–1.6 s; our
        // sync bound adds the descent, so halve it for the one-way figure.
        let levels = (2_000_000f64).log(8.0).ceil(); // = 7
        assert_eq!(levels as u64, 7);
        let one_way = SimTime::from_micros(HOP.as_micros() * levels as u64);
        assert_eq!(one_way, SimTime::from_millis(1400));
        // And the full sync round-trip bound on top of one period:
        let b = sync_staleness_bound(2_000_000, 8, HOP, T);
        assert_eq!(b, T + SimTime::from_millis(2800));
    }

    #[test]
    fn sync_gather_survives_member_crash() {
        let (ring, tree) = setup(100, 8);
        let mut sim = GatherSim::new(
            &tree,
            &ring,
            FlowMode::Synchronized,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
        );
        sim.run_until(SimTime::from_secs(30));
        let full = sim.views().last().unwrap().view.members;
        assert_eq!(full, 100);

        // Crash a member that hosts an internal tree node if possible.
        let victim = tree.nodes()[0]
            .children
            .first()
            .map(|&c| tree.nodes()[c as usize].host)
            .unwrap_or(1);
        sim.kill_member(victim);
        sim.run_until(SimTime::from_secs(120));
        // Rounds keep completing (timeouts), with a reduced census: the
        // crashed member's own report is gone, and so are reports of any
        // member whose canonical leaf the victim hosted or whose subtree
        // hangs under a logical node the victim hosted.
        let after = sim.views().last().unwrap();
        assert!(
            after.at > SimTime::from_secs(40),
            "no views after the crash"
        );
        assert!(after.view.members < 100, "crashed member still counted");
        assert!(after.view.members >= 50, "far too many members lost");
    }

    #[test]
    fn unsync_census_shrinks_after_crash() {
        // Unsync mode has no timeouts, but stale child partials age out
        // after three periods, so a crashed subtree disappears from the
        // root's census instead of being reported forever.
        let (ring, tree) = setup(80, 8);
        let mut sim = GatherSim::new(
            &tree,
            &ring,
            FlowMode::Unsynchronized,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
        );
        sim.run_until(SimTime::from_secs(200));
        assert_eq!(sim.views().last().unwrap().view.members, 80);
        sim.kill_member(5);
        sim.run_until(SimTime::from_secs(400));
        let after = sim.views().last().unwrap().view.members;
        assert!(after < 80, "crashed member still in the unsync census");
    }

    #[test]
    fn revived_member_rejoins_the_census() {
        let (ring, tree) = setup(80, 8);
        let mut sim = GatherSim::new(
            &tree,
            &ring,
            FlowMode::Synchronized,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
        );
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(sim.views().last().unwrap().view.members, 80);
        sim.kill_member(7);
        assert!(sim.is_dead(7));
        sim.run_until(SimTime::from_secs(90));
        assert!(sim.views().last().unwrap().view.members < 80);
        sim.revive_member(7);
        sim.run_until(SimTime::from_secs(150));
        assert_eq!(
            sim.views().last().unwrap().view.members,
            80,
            "revived member not counted again"
        );
    }

    #[test]
    fn unsync_census_converges_to_full_under_loss() {
        // 5% per-message loss: unsync per-hop cached partials make the
        // census reach (and mostly hold) 100% anyway — each link only needs
        // one success every three periods.
        let (ring, tree) = setup(100, 8);
        let mut sim = GatherSim::with_faults(
            &tree,
            &ring,
            FlowMode::Unsynchronized,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
            FaultPlan::with_loss(11, 0.05).jitter(SimTime::from_millis(20)),
        );
        sim.run_until(SimTime::from_secs(600));
        assert!(sim.messages_dropped() > 0, "loss never fired");
        let full = sim
            .views()
            .iter()
            .filter(|v| v.view.members == ring.len() as u64)
            .count();
        assert!(
            full * 2 > sim.views().len(),
            "census full in only {full}/{} views",
            sim.views().len()
        );
        assert_eq!(
            sim.views().last().unwrap().view.members,
            ring.len() as u64,
            "census did not converge under loss"
        );
    }

    #[test]
    fn no_fault_plan_is_bit_identical_to_plain_sim() {
        let (ring, tree) = setup(120, 8);
        fn finish<L, D>(mut sim: GatherSim<FreshnessReport, L, D>) -> Run
        where
            L: FnMut(usize, SimTime) -> FreshnessReport,
            D: Fn(usize, usize) -> SimTime,
        {
            sim.run_until(SimTime::from_secs(120));
            let vs: Vec<(SimTime, u64, SimTime)> = sim
                .views()
                .iter()
                .map(|v| (v.at, v.view.members, v.view.oldest))
                .collect();
            (vs, sim.messages_sent(), sim.messages_dropped())
        }
        type Run = (Vec<(SimTime, u64, SimTime)>, u64, u64);
        let plain = finish(GatherSim::new(
            &tree,
            &ring,
            FlowMode::Synchronized,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
        ));
        let faulty = finish(GatherSim::with_faults(
            &tree,
            &ring,
            FlowMode::Synchronized,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
            FaultPlan::none(),
        ));
        assert_eq!(plain.0, faulty.0);
        assert_eq!(plain.1, faulty.1);
        assert_eq!(faulty.2, 0);
    }

    #[test]
    fn churn_mid_round_closes_by_completion_not_timeout() {
        // Kill a remote root child after round 1's requests are in flight:
        // the live-child count shrinks mid-round, and the root must close
        // the round as soon as the survivors have answered (`>=` on a live
        // count), not limp to the 5 s timeout as the old `==`-on-static
        // count did.
        let (ring, tree) = setup(12, 64);
        let mut sim = GatherSim::new(
            &tree,
            &ring,
            FlowMode::Synchronized,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
        );
        sim.set_tracer(simcore::Tracer::ring(4096));
        // Process everything at t=0: round 1 opens and requests go out.
        sim.run_until(SimTime::ZERO);
        let root_host = tree.nodes()[0].host;
        let victim = tree.nodes()[0]
            .children
            .iter()
            .map(|&c| tree.nodes()[c as usize].host)
            .find(|&h| h != root_host)
            .expect("no remote root child to kill");
        sim.kill_member(victim);
        // Well before the 5 s child timeout could fire.
        sim.run_until(SimTime::from_secs(4));
        let trace = sim.take_trace().expect("ring tracer owns its records");
        let close = trace
            .iter()
            .find_map(|rec| match rec.ev {
                simcore::TraceEvent::GatherClose {
                    node: 0,
                    round: 1,
                    reason,
                    ..
                } => Some(reason),
                _ => None,
            })
            .expect("root round 1 never closed before the timeout window");
        assert_eq!(
            close,
            simcore::trace::CloseReason::Completed,
            "round with churned child should complete, not time out"
        );
        let last = sim.views().last().expect("no views");
        assert!(last.view.members < 12, "dead member still counted");
    }

    #[test]
    fn queue_length_after_successful_round_is_period_independent() {
        // After a fully successful gather round, stale per-round timeouts
        // must be suppressed no-ops: the number of pending events mid-cycle
        // is a property of the tree, not of the period.
        let mut pendings = Vec::new();
        for period_secs in [4u64, 10, 40] {
            let (ring, tree) = setup(60, 8);
            let period = SimTime::from_secs(period_secs);
            let mut sim = GatherSim::new(
                &tree,
                &ring,
                FlowMode::Synchronized,
                period,
                |_m, now| FreshnessReport::of_member(now),
                |a, b| if a == b { SimTime::ZERO } else { HOP },
            );
            // 1.5 periods in: round 1 closed and its timeouts suppressed,
            // round 2 closed with its timeouts still pending, round 3 not
            // started.
            sim.run_until(SimTime::from_micros(period.as_micros() * 3 / 2));
            assert!(
                sim.metrics().counter("gather.timeouts_suppressed") > 0,
                "successful rounds should leave suppressed timeouts"
            );
            assert_eq!(sim.metrics().counter("gather.rounds_timeout"), 0);
            pendings.push(sim.pending_events());
        }
        assert_eq!(pendings[0], pendings[1], "pending events depend on period");
        assert_eq!(pendings[1], pendings[2], "pending events depend on period");
    }

    #[test]
    fn rebuilt_tree_restores_full_census_after_crash() {
        // The self-healing story end-to-end: crash → reduced view; ring
        // repair (rebuild tree without the victim) → full view of the
        // survivors.
        let mut ring = Ring::with_random_ids((0..60u32).map(HostId), 13);
        let tree = SomoTree::build(&ring, 8);
        let mut sim = GatherSim::new(
            &tree,
            &ring,
            FlowMode::Synchronized,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
        );
        sim.kill_member(30);
        sim.run_until(SimTime::from_secs(60));
        let degraded = sim.views().last().unwrap().view.members;
        assert!(degraded < 60);

        // The DHT detects the failure and drops the member; SOMO is a pure
        // function of the ring, so the rebuilt tree covers all survivors.
        let dead_id = ring.member(30).id;
        ring.remove_id(dead_id).unwrap();
        let tree2 = SomoTree::build(&ring, 8);
        let mut sim2 = GatherSim::new(
            &tree2,
            &ring,
            FlowMode::Synchronized,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
        );
        sim2.run_until(SimTime::from_secs(30));
        assert_eq!(sim2.views().last().unwrap().view.members, 59);
    }
}
