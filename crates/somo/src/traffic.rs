//! Report wire-size accounting (§3.2's operational notes).
//!
//! LiquidEye runs with "a reporting cycle of 5 seconds, and the leaf SOMO
//! report is 40 bytes... In a wide-area and large-scale deployment, we will
//! opt for a less aggressive interval and also employ compression
//! optimization." Capacity planning for SOMO is about how report bytes
//! scale up the tree: a node at depth d carries the aggregate of its whole
//! subtree, so uncapped reports grow linearly in subtree size while capped
//! reports plateau.
//!
//! [`Encodable`] gives reports a wire size; [`traffic_by_level`] walks a
//! tree snapshot and accounts the bytes each level ships per gather round —
//! the number you size an overlay's background bandwidth with.

pub use bytes::{BufMut, Bytes, BytesMut};

use crate::report::{CapabilityReport, CensusReport, Report};
use crate::tree::SomoTree;

/// Running message/byte counters for one traffic source (gather rounds,
/// query descents, subscription deltas, …). Downstream crates hold one
/// ledger per source so benches can compare them on equal terms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficLedger {
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
}

impl TrafficLedger {
    /// Account one message of `bytes` payload.
    pub fn record(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
    }

    /// Fold another ledger in.
    pub fn absorb(&mut self, other: &TrafficLedger) {
        self.messages += other.messages;
        self.bytes += other.bytes;
    }

    /// Publish this ledger into a [`simcore::MetricsRegistry`] as the
    /// `<prefix>.messages` / `<prefix>.bytes` counter pair.
    pub fn publish(&self, reg: &mut simcore::MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.messages"), self.messages);
        reg.add(&format!("{prefix}.bytes"), self.bytes);
    }
}

/// A report that knows its wire encoding.
pub trait Encodable: Report {
    /// Serialize into a byte buffer (length-prefixed fields, no
    /// compression — the paper's "compression optimization" would sit on
    /// top of this).
    fn encode(&self) -> Bytes;

    /// Wire size in bytes.
    fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

impl Encodable for CensusReport {
    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64(self.members);
        b.put_f64(self.free_capacity);
        b.freeze()
    }
}

impl Encodable for CapabilityReport {
    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(13);
        match self.best {
            None => b.put_u8(0),
            Some((h, c)) => {
                b.put_u8(1);
                b.put_u32(h.0);
                b.put_f64(c);
            }
        }
        b.freeze()
    }
}

/// Bytes shipped per tree level in one full (synchronized) gather round.
#[derive(Clone, Debug, Default)]
pub struct LevelTraffic {
    /// `bytes[d]` = total report bytes sent *from* depth-d nodes to their
    /// parents in one round.
    pub bytes: Vec<usize>,
}

impl LevelTraffic {
    /// Total bytes per round across all levels.
    pub fn total(&self) -> usize {
        self.bytes.iter().sum()
    }
}

/// Account one gather round's upward traffic: every node's aggregate (its
/// subtree fold of the per-member reports from `member_report`) crosses the
/// edge to its parent once.
pub fn traffic_by_level<R: Encodable>(
    tree: &SomoTree,
    ring: &dht::Ring,
    member_report: impl Fn(usize) -> R,
) -> LevelTraffic {
    // Fold subtree aggregates bottom-up. A node's aggregate merges the
    // canonical member reports of every leaf in its subtree.
    let n = tree.len();
    let mut agg: Vec<Option<R>> = vec![None; n];
    // Process nodes deepest-first.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(tree.nodes()[i as usize].level));
    // Canonical members per leaf.
    let mut canon: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for m in 0..ring.len() {
        canon.insert(tree.canonical_leaf_of(ring.member(m).id), m);
    }
    for &i in &order {
        let node = &tree.nodes()[i as usize];
        let mut acc: Option<R> = canon.get(&i).map(|&m| member_report(m));
        for &c in &node.children {
            if let Some(child_agg) = agg[c as usize].clone() {
                match &mut acc {
                    Some(a) => a.merge(&child_agg),
                    slot @ None => *slot = Some(child_agg),
                }
            }
        }
        agg[i as usize] = acc;
    }

    let depth = tree.depth() as usize;
    let mut bytes = vec![0usize; depth + 1];
    for (i, node) in tree.nodes().iter().enumerate() {
        if node.parent.is_some() {
            if let Some(a) = &agg[i] {
                bytes[node.level as usize] += a.encoded_len();
            }
        }
    }
    LevelTraffic { bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht::Ring;
    use netsim::HostId;

    #[test]
    fn census_encoding_is_fixed_width() {
        let r = CensusReport::of_member(3.5);
        assert_eq!(r.encoded_len(), 16);
        // Merging does not grow a census (that is the point of
        // aggregation: constant-size summaries).
        let mut m = r;
        m.merge(&CensusReport::of_member(1.0));
        assert_eq!(m.encoded_len(), 16);
    }

    #[test]
    fn capability_encoding_sizes() {
        assert_eq!(CapabilityReport::default().encoded_len(), 1);
        assert_eq!(
            CapabilityReport::of_member(HostId(3), 9.0).encoded_len(),
            13
        );
    }

    #[test]
    fn per_level_traffic_accounts_every_edge_once() {
        let ring = Ring::with_random_ids((0..100u32).map(HostId), 31);
        let tree = SomoTree::build(&ring, 8);
        let t = traffic_by_level(&tree, &ring, |_m| CensusReport::of_member(1.0));
        // Constant-size reports: total bytes = 16 per non-root node that
        // carries data. Every node on a path from a canonical leaf to the
        // root carries data; in practice that is almost every node.
        let edges_with_data = t.total() / 16;
        assert!(edges_with_data > 0);
        assert!(edges_with_data < tree.len());
        // Level sums are consistent with the tree shape.
        assert_eq!(t.bytes.len() as u32, tree.depth() + 1);
        assert_eq!(t.bytes[0], 0, "the root sends nothing upward");
    }

    #[test]
    fn forty_byte_reports_at_liquid_eye_scale() {
        // The paper's LiquidEye deployment: ~100 machines, 5 s cycle,
        // 40-byte leaf reports. With constant-size aggregation the total
        // per round is bounded by 40 bytes × tree edges — a few KB per
        // cycle; background noise, as the paper implies.
        #[derive(Clone)]
        struct FortyByte;
        impl Report for FortyByte {
            fn merge(&mut self, _other: &Self) {}
        }
        impl Encodable for FortyByte {
            fn encode(&self) -> Bytes {
                Bytes::from_static(&[0u8; 40])
            }
        }
        let ring = Ring::with_random_ids((0..100u32).map(HostId), 32);
        let tree = SomoTree::build(&ring, 8);
        let t = traffic_by_level(&tree, &ring, |_| FortyByte);
        let per_cycle = t.total();
        assert!(per_cycle <= 40 * (tree.len() - 1), "more bytes than edges");
        assert!(per_cycle < 64 * 1024, "LiquidEye-scale traffic must be KBs");
    }
}
