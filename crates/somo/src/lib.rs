#![warn(missing_docs)]

//! # somo — Self-Organized Metadata Overlay (§3.2)
//!
//! DHT alone pools resources but tells nobody what is going on inside the
//! pool. SOMO completes the picture: a logical tree with fixed fanout `k` is
//! *drawn in the virtual ID space* — its node positions are pure arithmetic
//! that every peer computes independently — and then mapped onto whichever
//! physical nodes currently own each logical point. Metadata flows leaf →
//! root (gather) and root → leaf (disseminate) in `O(log_k N)` time, giving
//! every peer access to a continuously refreshed global view: the illusion
//! of a single resource pool.
//!
//! Because the hierarchy lives in the *logical* space, it inherits the DHT's
//! self-organization for free: when a node dies, its zone — and with it the
//! logical tree nodes it hosted — passes to a ring neighbor, and the tree is
//! whole again. No tree-repair protocol exists, by construction.
//!
//! Crate layout:
//!
//! * [`tree`] — the logical-tree geometry: recursive arc subdivision,
//!   leaf condition (an arc entirely inside one DHT zone stops splitting),
//!   hosting (each logical node is owned by `ring.owner(center)`);
//! * [`report`] — the [`report::Report`] merge abstraction and stock
//!   reports (membership census, capability maximum);
//! * [`flow`] — discrete-event simulation of the gather flow in both the
//!   **unsynchronized** (free-running timers; staleness ≤ `log_k N · T`)
//!   and **synchronized** (root-triggered cascade; staleness ≈
//!   `T + t_hop · log_k N`) regimes;
//! * [`heal`] — failure remapping measurements and the capability-driven
//!   **root swap** self-optimization.

pub mod flow;
pub mod heal;
pub mod newscast;
pub mod report;
pub mod traffic;
pub mod tree;

pub use report::Report;
pub use tree::SomoTree;
