//! Self-healing and self-optimization.
//!
//! **Healing.** SOMO has no repair protocol: the tree is a pure function of
//! the ring membership, so when a node dies its zone — and every logical
//! node whose point falls in it — passes to the ring successor. This module
//! measures exactly how much of the tree is remapped by a membership change
//! (the paper's LiquidEye observation: "each time the global view is
//! regenerated after a short jitter").
//!
//! **Root swap (§3.2).** The root logical point (0.5 of the space) is hosted
//! by whatever node happens to own it. To put the most capable machine at
//! the top, SOMO identifies the strongest member by an upward merge-sort
//! (a [`crate::report::CapabilityReport`] gather) and then the two nodes
//! simply *exchange IDs* — a purely logical operation that moves the root
//! onto the capable machine without disturbing any other peer.

use dht::ring::Member;
use dht::Ring;
use netsim::HostId;

use crate::report::{CapabilityReport, Report};
use crate::tree::SomoTree;

/// How a membership change remapped the SOMO tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct RemapStats {
    /// Logical nodes in the new tree.
    pub total: usize,
    /// Logical nodes whose hosting member changed (matched by region).
    pub remapped: usize,
    /// Logical nodes that exist only in the new tree (finer subdivision).
    pub created: usize,
    /// Logical nodes of the old tree that no longer exist (regions merged
    /// away — e.g. the subdivision around a departed member's ID).
    pub dropped: usize,
}

impl RemapStats {
    /// Fraction of surviving logical nodes that moved hosts.
    pub fn remap_fraction(&self) -> f64 {
        let survived = self.total - self.created;
        if survived == 0 {
            0.0
        } else {
            self.remapped as f64 / survived as f64
        }
    }
}

/// Compare two tree snapshots (before/after a membership change); hosts are
/// matched by *member identity* (`HostId`), not ring index, because indices
/// shift on insert/remove.
pub fn remap_stats(
    before: &SomoTree,
    before_ring: &Ring,
    after: &SomoTree,
    after_ring: &Ring,
) -> RemapStats {
    use std::collections::HashMap;
    let mut old: HashMap<(u128, u128), HostId> = HashMap::new();
    for n in before.nodes() {
        old.insert(n.region, before_ring.member(n.host).host);
    }
    let mut stats = RemapStats {
        total: after.len(),
        ..Default::default()
    };
    let mut survived = 0usize;
    for n in after.nodes() {
        match old.get(&n.region) {
            None => stats.created += 1,
            Some(&h) => {
                survived += 1;
                if h != after_ring.member(n.host).host {
                    stats.remapped += 1;
                }
            }
        }
    }
    // `survived` counts matches in `after`, and region keys need not be
    // unique: if the new tree re-subdivides a region into duplicates that
    // all match one old node, `survived` can exceed `before.len()`.
    // Saturate instead of underflowing.
    stats.dropped = before.len().saturating_sub(survived);
    stats
}

/// Run the upward merge-sort for the most capable member and swap its ID
/// with the current root owner's. Returns the host now owning the root, or
/// `None` if the ring is empty.
///
/// `capability(host)` scores a member (e.g. CPU × uptime, or the degree
/// bound in the ALM setting).
pub fn optimize_root(ring: &mut Ring, capability: impl Fn(HostId) -> f64) -> Option<HostId> {
    if ring.is_empty() {
        return None;
    }
    // The upward merge-sort: fold every member's capability report — this
    // is what the CapabilityReport gather computes at the SOMO root (see
    // `optimize_root_via_gather` for the message-level version).
    let mut best = CapabilityReport::default();
    for m in ring.members() {
        best.merge(&CapabilityReport::of_member(m.host, capability(m.host)));
    }
    let (best_host, _) = best.best.expect("non-empty ring");

    let root_point = crate::tree::root_point();
    let root_idx = ring.owner(root_point);
    let root_member = ring.member(root_idx);
    if root_member.host == best_host {
        return Some(best_host); // already optimal
    }
    let best_idx = ring
        .members()
        .iter()
        .position(|m| m.host == best_host)
        .expect("best host is a member");
    let best_member = ring.member(best_idx);

    // Exchange IDs: remove both, reinsert with swapped IDs.
    ring.remove_id(root_member.id);
    ring.remove_id(best_member.id);
    ring.insert(Member {
        id: root_member.id,
        host: best_member.host,
    });
    ring.insert(Member {
        id: best_member.id,
        host: root_member.host,
    });
    Some(best_host)
}

/// The message-level root swap: run a synchronized [`CapabilityReport`]
/// gather over the live SOMO tree (the literal "upward merge-sort through
/// SOMO"), then exchange IDs with the winner. Returns the host now owning
/// the root, or `None` if the ring is empty or the gather produced no view
/// within `horizon`.
pub fn optimize_root_via_gather(
    ring: &mut Ring,
    fanout: usize,
    capability: impl Fn(HostId) -> f64,
    delay: impl Fn(usize, usize) -> simcore::SimTime,
    period: simcore::SimTime,
    horizon: simcore::SimTime,
) -> Option<HostId> {
    use crate::flow::{FlowMode, GatherSim};

    if ring.is_empty() {
        return None;
    }
    let tree = SomoTree::build(ring, fanout);
    let mut sim = GatherSim::new(
        &tree,
        &*ring,
        FlowMode::Synchronized,
        period,
        |member, _now| {
            let h = ring.member(member).host;
            CapabilityReport::of_member(h, capability(h))
        },
        delay,
    );
    sim.run_until(horizon);
    let (best_host, _) = sim.views().last()?.view.best?;

    // Same ID exchange as the direct path.
    let root_idx = ring.owner(crate::tree::root_point());
    let root_member = ring.member(root_idx);
    if root_member.host == best_host {
        return Some(best_host);
    }
    let best_idx = ring
        .members()
        .iter()
        .position(|m| m.host == best_host)
        .expect("winner is a member");
    let best_member = ring.member(best_idx);
    ring.remove_id(root_member.id);
    ring.remove_id(best_member.id);
    ring.insert(Member {
        id: root_member.id,
        host: best_member.host,
    });
    ring.insert(Member {
        id: best_member.id,
        host: root_member.host,
    });
    Some(best_host)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32, seed: u64) -> Ring {
        Ring::with_random_ids((0..n).map(HostId), seed)
    }

    #[test]
    fn failure_remaps_only_a_small_tree_fraction() {
        let mut r = ring(200, 21);
        let before = SomoTree::build(&r, 8);
        let before_ring = r.clone();
        // Kill one node.
        let victim = r.member(37).id;
        r.remove_id(victim).unwrap();
        let after = SomoTree::build(&r, 8);
        let stats = remap_stats(&before, &before_ring, &after, &r);
        assert!(stats.total > 0);
        // One zone out of 200 absorbs the victim's logical nodes; the
        // rest of the tree must be untouched.
        assert!(
            stats.remap_fraction() < 0.1,
            "remap fraction {} too high",
            stats.remap_fraction()
        );
        // Something local must have changed: the victim's zone region
        // either remapped, merged away, or got re-subdivided.
        assert!(
            stats.remapped + stats.dropped + stats.created > 0,
            "failure left the tree bit-identical"
        );
    }

    #[test]
    fn unrelated_join_touches_little() {
        let mut r = ring(200, 22);
        let before = SomoTree::build(&r, 8);
        let before_ring = r.clone();
        r.insert(Member {
            id: dht::NodeId::hash_of(0x1011),
            host: HostId(9999),
        });
        let after = SomoTree::build(&r, 8);
        let stats = remap_stats(&before, &before_ring, &after, &r);
        assert!(stats.remap_fraction() < 0.1);
    }

    #[test]
    fn duplicate_region_resubdivision_does_not_underflow_dropped() {
        // Regression: `dropped` was computed as `before.len() - survived`,
        // but `survived` counts *after*-side matches — if the new tree holds
        // duplicate region keys that all match one old node, survived can
        // exceed before.len() and the subtraction underflowed (panic in
        // debug, absurd counts in release).
        use crate::tree::LogicalNode;
        let r = ring(2, 29);
        let mk = |region: (u128, u128), host: usize, parent: Option<u32>| LogicalNode {
            level: if parent.is_some() { 1 } else { 0 },
            region,
            point: dht::NodeId((((region.0 + region.1) / 2) & u64::MAX as u128) as u64),
            host,
            parent,
            children: vec![],
        };
        let full = (0u128, 1u128 << 64);
        // Before: a single root covering the whole space.
        let before = SomoTree::from_nodes(2, vec![mk(full, 0, None)]);
        // After: the root plus two children that (degenerately) repeat the
        // root's region key — three matches against one old node.
        let mut root = mk(full, 0, None);
        root.children = vec![1, 2];
        let after = SomoTree::from_nodes(2, vec![root, mk(full, 0, Some(0)), mk(full, 1, Some(0))]);
        let stats = remap_stats(&before, &r, &after, &r);
        assert_eq!(stats.total, 3);
        assert_eq!(stats.created, 0, "all after-nodes match the old region");
        assert_eq!(stats.dropped, 0, "dropped must saturate, not wrap");
    }

    #[test]
    fn root_swap_moves_root_to_most_capable() {
        let mut r = ring(64, 23);
        // Host 42 is the beast.
        let cap = |h: HostId| if h == HostId(42) { 100.0 } else { 1.0 };
        let new_root = optimize_root(&mut r, cap).unwrap();
        assert_eq!(new_root, HostId(42));
        let tree = SomoTree::build(&r, 8);
        assert_eq!(r.member(tree.root().host).host, HostId(42));
    }

    #[test]
    fn root_swap_is_idempotent() {
        let mut r = ring(64, 24);
        let cap = |h: HostId| if h == HostId(7) { 9.0 } else { 1.0 };
        optimize_root(&mut r, cap);
        let snapshot: Vec<_> = r.members().to_vec();
        optimize_root(&mut r, cap);
        assert_eq!(
            snapshot,
            r.members().to_vec(),
            "second swap changed the ring"
        );
    }

    #[test]
    fn root_swap_disturbs_no_other_peer() {
        let mut r = ring(64, 25);
        let before: Vec<_> = r.members().to_vec();
        let cap = |h: HostId| h.0 as f64; // host 63 wins
        optimize_root(&mut r, cap).unwrap();
        let after: Vec<_> = r.members().to_vec();
        // Same ID multiset.
        let ids_b: Vec<_> = before.iter().map(|m| m.id).collect();
        let ids_a: Vec<_> = after.iter().map(|m| m.id).collect();
        assert_eq!(ids_b, ids_a);
        // Exactly two members changed their binding.
        let moved = before
            .iter()
            .zip(&after)
            .filter(|(b, a)| b.host != a.host)
            .count();
        assert_eq!(moved, 2);
    }

    #[test]
    fn empty_ring_root_swap_is_none() {
        let mut r = Ring::new();
        assert_eq!(optimize_root(&mut r, |_| 1.0), None);
    }

    #[test]
    fn gather_based_swap_matches_direct_swap() {
        use simcore::SimTime;
        let cap = |h: HostId| {
            if h == HostId(13) {
                50.0
            } else {
                h.0 as f64 / 100.0
            }
        };
        let mut direct = ring(48, 26);
        let mut gathered = direct.clone();
        let a = optimize_root(&mut direct, cap).unwrap();
        let b = optimize_root_via_gather(
            &mut gathered,
            8,
            cap,
            |x, y| {
                if x == y {
                    SimTime::ZERO
                } else {
                    SimTime::from_millis(50)
                }
            },
            SimTime::from_secs(5),
            SimTime::from_secs(60),
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, HostId(13));
        assert_eq!(direct.members(), gathered.members());
    }
}
