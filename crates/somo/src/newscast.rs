//! The full newscast cycle: gather **and disseminate** (§3.2, Figure 3).
//!
//! SOMO is described as "a self-organizing 'news broadcast' hierarchy": the
//! aggregated system status is not only collected at the root — it flows
//! back down the same tree so that *any* peer can consult the global view
//! locally. This module simulates one complete cycle per period:
//!
//! 1. the root cascades a gather request; partials aggregate upward exactly
//!    as in [`crate::flow`] (timeout-protected);
//! 2. the instant the root's view for the round completes, it is published
//!    down the tree; every leaf hands the view to its canonical member.
//!
//! The metric is the **member-level view lag**: how stale is the global view
//! in the hands of an ordinary peer (root lag + descent). This is the number
//! that matters to the paper's task managers — they run at session roots,
//! not at the SOMO root.

use std::collections::HashMap;

use simcore::{EventQueue, SimTime};

use crate::report::Report;
use crate::tree::SomoTree;

/// A member's receipt of one published global view.
#[derive(Clone, Debug)]
pub struct Delivery<R> {
    /// Ring member index that received the view.
    pub member: usize,
    /// When it arrived.
    pub at: SimTime,
    /// The view delivered.
    pub view: R,
}

enum Ev<R> {
    RootTimer,
    Request {
        node: u32,
        round: u64,
    },
    Partial {
        node: u32,
        round: u64,
        from: u32,
        r: Option<R>,
    },
    Timeout {
        node: u32,
        round: u64,
    },
    Publish {
        node: u32,
        r: R,
    },
}

/// Per-round aggregation buffer: running partial + children already folded
/// in (dedup per sender, mirroring [`crate::flow`]).
#[derive(Clone)]
struct RoundBuf<R> {
    acc: Option<R>,
    seen: Vec<u32>,
}

/// Simulator of the complete gather+disseminate newscast.
pub struct NewscastSim<'a, R, L, D>
where
    R: Report,
    L: FnMut(usize, SimTime) -> R,
    D: Fn(usize, usize) -> SimTime,
{
    tree: &'a SomoTree,
    period: SimTime,
    leaf_sample: L,
    delay: D,
    queue: EventQueue<Ev<R>>,
    rounds: Vec<HashMap<u64, RoundBuf<R>>>,
    reporting: HashMap<u32, usize>,
    deliveries: Vec<Delivery<R>>,
    messages: u64,
    round_ctr: u64,
}

impl<'a, R, L, D> NewscastSim<'a, R, L, D>
where
    R: Report,
    L: FnMut(usize, SimTime) -> R,
    D: Fn(usize, usize) -> SimTime,
{
    /// Create a newscast simulator (synchronized flow, timeout = period).
    pub fn new(
        tree: &'a SomoTree,
        ring: &dht::Ring,
        period: SimTime,
        leaf_sample: L,
        delay: D,
    ) -> Self {
        let mut reporting = HashMap::new();
        for m in 0..ring.len() {
            reporting.insert(tree.canonical_leaf_of(ring.member(m).id), m);
        }
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::ZERO, Ev::RootTimer);
        NewscastSim {
            tree,
            period,
            leaf_sample,
            delay,
            queue,
            rounds: vec![HashMap::new(); tree.len()],
            reporting,
            deliveries: Vec::new(),
            messages: 0,
            round_ctr: 0,
        }
    }

    /// Run until simulated time `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            self.handle(now, ev);
        }
    }

    /// All member deliveries so far, in time order.
    pub fn deliveries(&self) -> &[Delivery<R>] {
        &self.deliveries
    }

    /// Total inter-host messages.
    pub fn messages_sent(&self) -> u64 {
        self.messages
    }

    fn hop(&mut self, from: usize, to: usize) -> SimTime {
        if from == to {
            SimTime::ZERO
        } else {
            self.messages += 1;
            (self.delay)(from, to)
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev<R>) {
        match ev {
            Ev::RootTimer => {
                self.round_ctr += 1;
                let round = self.round_ctr;
                self.queue.schedule(now, Ev::Request { node: 0, round });
                self.queue.schedule_after(self.period, Ev::RootTimer);
            }
            Ev::Request { node, round } => {
                let n = &self.tree.nodes()[node as usize];
                if n.is_leaf() {
                    let r = self
                        .reporting
                        .get(&node)
                        .copied()
                        .map(|m| (self.leaf_sample)(m, now));
                    self.up(node, round, r);
                } else {
                    self.rounds[node as usize].insert(
                        round,
                        RoundBuf {
                            acc: None,
                            seen: Vec::new(),
                        },
                    );
                    let my = n.host;
                    for c in n.children.clone() {
                        let ch = self.tree.nodes()[c as usize].host;
                        let d = self.hop(my, ch);
                        self.queue.schedule_after(d, Ev::Request { node: c, round });
                    }
                    self.queue
                        .schedule_after(self.period, Ev::Timeout { node, round });
                }
            }
            Ev::Partial {
                node,
                round,
                from,
                r,
            } => {
                let expected = self.tree.nodes()[node as usize].children.len();
                let Some(entry) = self.rounds[node as usize].get_mut(&round) else {
                    return;
                };
                // A repeated partial from the same child must not advance
                // the count past `expected` and strand the round.
                if entry.seen.contains(&from) {
                    return;
                }
                entry.seen.push(from);
                match (&mut entry.acc, r) {
                    (Some(acc), Some(r)) => acc.merge(&r),
                    (slot @ None, Some(r)) => *slot = Some(r),
                    (_, None) => {}
                }
                // `>=`: close even if the count stepped past the target.
                if entry.seen.len() >= expected {
                    let buf = self.rounds[node as usize].remove(&round).unwrap();
                    self.up(node, round, buf.acc);
                }
            }
            Ev::Timeout { node, round } => {
                if let Some(buf) = self.rounds[node as usize].remove(&round) {
                    self.up(node, round, buf.acc);
                }
            }
            Ev::Publish { node, r } => {
                let n = &self.tree.nodes()[node as usize];
                if n.is_leaf() {
                    if let Some(&m) = self.reporting.get(&node) {
                        // Hand the view to the member (one ring-neighbor hop
                        // if the leaf host is the successor).
                        let d = self.hop(n.host, m);
                        self.deliveries.push(Delivery {
                            member: m,
                            at: self.queue.now() + d,
                            view: r,
                        });
                    }
                } else {
                    let my = n.host;
                    for c in n.children.clone() {
                        let ch = self.tree.nodes()[c as usize].host;
                        let d = self.hop(my, ch);
                        self.queue.schedule_after(
                            d,
                            Ev::Publish {
                                node: c,
                                r: r.clone(),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Move a completed aggregate one level up — or, at the root, flip it
    /// around and publish it down the tree.
    fn up(&mut self, node: u32, round: u64, r: Option<R>) {
        let n = &self.tree.nodes()[node as usize];
        match n.parent {
            None => {
                if let Some(view) = r {
                    self.queue
                        .schedule_after(SimTime::ZERO, Ev::Publish { node: 0, r: view });
                }
            }
            Some(p) => {
                let ph = self.tree.nodes()[p as usize].host;
                let d = self.hop(n.host, ph);
                self.queue.schedule_after(
                    d,
                    Ev::Partial {
                        node: p,
                        round,
                        from: node,
                        r,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FreshnessReport;
    use dht::Ring;
    use netsim::HostId;

    const HOP: SimTime = SimTime::from_millis(200);
    const T: SimTime = SimTime::from_secs(5);

    fn sim_run(n: u32, horizon: u64) -> (Vec<Delivery<FreshnessReport>>, u32, u32) {
        let ring = Ring::with_random_ids((0..n).map(HostId), 21);
        let tree = SomoTree::build(&ring, 8);
        let depth = tree.depth();
        let mut sim = NewscastSim::new(
            &tree,
            &ring,
            T,
            |_m, now| FreshnessReport::of_member(now),
            |a, b| if a == b { SimTime::ZERO } else { HOP },
        );
        sim.run_until(SimTime::from_secs(horizon));
        (sim.deliveries().to_vec(), depth, n)
    }

    #[test]
    fn every_member_receives_the_global_view() {
        let (deliveries, _, n) = sim_run(120, 40);
        let mut seen = vec![false; n as usize];
        for d in &deliveries {
            seen[d.member] = true;
            assert_eq!(d.view.members, n as u64, "partial view delivered");
        }
        assert!(seen.iter().all(|&s| s), "some member never got the news");
    }

    #[test]
    fn member_view_lag_is_bounded_by_full_round_trip() {
        let (deliveries, depth, _) = sim_run(120, 60);
        // Lag = descent of the request + fetch + ascent + descent of the
        // publication + final hand-off: ≤ (3·depth + 4) hops.
        let bound = SimTime::from_micros(HOP.as_micros() * (3 * depth as u64 + 4));
        for d in &deliveries {
            let lag = d.at.saturating_sub(d.view.oldest);
            assert!(lag <= bound, "member view lag {lag} above bound {bound}");
        }
    }

    #[test]
    fn deliveries_repeat_every_period() {
        let (deliveries, _, n) = sim_run(60, 31);
        // ~6 rounds × 60 members (first round may straddle the horizon).
        assert!(deliveries.len() >= 5 * n as usize, "{}", deliveries.len());
    }

    #[test]
    fn single_member_newscast() {
        let (deliveries, _, _) = sim_run(1, 20);
        assert!(!deliveries.is_empty());
        assert_eq!(deliveries[0].member, 0);
        assert_eq!(deliveries[0].view.members, 1);
    }
}
