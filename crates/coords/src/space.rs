//! The coordinate space and the coordinate store.

use netsim::{HostId, LatencyModel};
use serde::{Deserialize, Serialize};

/// Maximum embedding dimension supported without heap allocation.
pub const MAX_DIM: usize = 8;

/// Default embedding dimension (GNP found 5–7 dimensions sufficient; 5 is a
/// good accuracy/cost tradeoff for transit–stub underlays).
pub const DEFAULT_DIM: usize = 5;

/// A point in the d-dimensional Euclidean embedding (d ≤ [`MAX_DIM`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Coord {
    v: [f64; MAX_DIM],
    dim: u8,
}

impl Coord {
    /// The origin of a `dim`-dimensional space.
    pub fn zero(dim: usize) -> Coord {
        assert!((1..=MAX_DIM).contains(&dim));
        Coord {
            v: [0.0; MAX_DIM],
            dim: dim as u8,
        }
    }

    /// Construct from a slice (length = dimension).
    pub fn from_slice(v: &[f64]) -> Coord {
        assert!(!v.is_empty() && v.len() <= MAX_DIM);
        let mut arr = [0.0; MAX_DIM];
        arr[..v.len()].copy_from_slice(v);
        Coord {
            v: arr,
            dim: v.len() as u8,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// The coordinate components.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        let d = (self.dim as usize).min(MAX_DIM);
        debug_assert_eq!(d, self.dim as usize, "dim exceeds MAX_DIM");
        // SAFETY: `d <= MAX_DIM`, the fixed length of `v`.
        unsafe { self.v.get_unchecked(..d) }
    }

    /// Mutable components.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.v[..self.dim as usize]
    }

    /// Euclidean distance to another coordinate (this *is* the latency
    /// prediction, in ms).
    #[inline]
    pub fn distance(&self, other: &Coord) -> f64 {
        debug_assert_eq!(self.dim, other.dim);
        let d = (self.dim as usize).min(MAX_DIM);
        debug_assert_eq!(d, self.dim as usize, "dim exceeds MAX_DIM");
        let mut s = 0.0;
        for i in 0..d {
            // SAFETY: `i < d <= MAX_DIM`, the fixed length of `v`.
            let diff = unsafe { self.v.get_unchecked(i) - other.v.get_unchecked(i) };
            s += diff * diff;
        }
        s.sqrt()
    }
}

/// Coordinates for every host, usable directly as a [`LatencyModel`] — this
/// is what turns the paper's *Critical* algorithms into the practical
/// *Leafset* ones.
#[derive(Clone, Debug)]
pub struct CoordStore {
    coords: Vec<Coord>,
}

impl CoordStore {
    /// A store with all hosts at the origin.
    pub fn zeros(n: usize, dim: usize) -> CoordStore {
        CoordStore {
            coords: vec![Coord::zero(dim); n],
        }
    }

    /// Build from explicit coordinates.
    pub fn from_coords(coords: Vec<Coord>) -> CoordStore {
        CoordStore { coords }
    }

    /// The coordinate of a host.
    pub fn get(&self, h: HostId) -> &Coord {
        &self.coords[h.idx()]
    }

    /// Set the coordinate of a host.
    pub fn set(&mut self, h: HostId, c: Coord) {
        self.coords[h.idx()] = c;
    }

    /// All coordinates, indexed by host.
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }
}

impl LatencyModel for CoordStore {
    #[inline]
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            0.0
        } else {
            self.coords[a.idx()].distance(&self.coords[b.idx()])
        }
    }

    #[inline]
    fn num_hosts(&self) -> usize {
        self.coords.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Coord::from_slice(&[0.0, 0.0, 0.0]);
        let b = Coord::from_slice(&[3.0, 4.0, 0.0]);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distance_symmetric() {
        let a = Coord::from_slice(&[1.0, -2.0, 0.5, 7.0, 3.3]);
        let b = Coord::from_slice(&[-4.0, 2.0, 9.5, 0.0, 1.0]);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn store_implements_latency_model() {
        let mut s = CoordStore::zeros(3, 2);
        s.set(HostId(1), Coord::from_slice(&[3.0, 4.0]));
        assert_eq!(s.latency_ms(HostId(0), HostId(1)), 5.0);
        assert_eq!(s.latency_ms(HostId(2), HostId(2)), 0.0);
        assert_eq!(s.num_hosts(), 3);
    }

    #[test]
    #[should_panic]
    fn dimension_bounds_checked() {
        Coord::zero(MAX_DIM + 1);
    }

    #[test]
    fn from_slice_round_trips() {
        let c = Coord::from_slice(&[1.0, 2.0]);
        assert_eq!(c.dim(), 2);
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }
}
