//! GNP: landmark-based network coordinates (the Figure 4 baseline).
//!
//! GNP first solves the coordinates of a small set of well-distributed
//! *landmark* hosts from their measured pairwise latencies, then lets every
//! other host solve its own coordinate against the landmarks. Both phases
//! minimize the same absolute-error objective the paper uses,
//! `E = Σ |predicted − measured|`, with Nelder–Mead.
//!
//! The landmark phase is solved by block coordinate descent: several sweeps
//! in which each landmark's coordinate is re-optimized with the others held
//! fixed. This avoids one huge (landmarks × dim)-dimensional simplex, which
//! Nelder–Mead handles poorly, and converges in a handful of sweeps.

use netsim::{HostId, LatencyModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::simplex::{minimize, SimplexOptions};
use crate::space::{Coord, CoordStore, DEFAULT_DIM};

/// Configuration of a GNP run.
#[derive(Clone, Debug)]
pub struct GnpConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Number of landmark (infrastructure) hosts.
    pub landmarks: usize,
    /// Coordinate-descent sweeps over the landmark set.
    pub sweeps: usize,
    /// Bounded multiplicative measurement noise (0.0 = exact probes).
    pub noise: f64,
    /// Simplex budget for each per-host minimization.
    pub simplex: SimplexOptions,
}

impl Default for GnpConfig {
    fn default() -> Self {
        GnpConfig {
            dim: DEFAULT_DIM,
            landmarks: 16,
            sweeps: 8,
            noise: 0.0,
            simplex: SimplexOptions {
                initial_step: 50.0,
                tolerance: 0.1,
                max_evals: 600,
            },
        }
    }
}

/// The GNP solver.
pub struct GnpSolver {
    cfg: GnpConfig,
}

impl GnpSolver {
    /// A solver with the given configuration.
    pub fn new(cfg: GnpConfig) -> GnpSolver {
        GnpSolver { cfg }
    }

    /// Solve coordinates for every host covered by `oracle`.
    ///
    /// `oracle` provides "measured" latencies (perturbed by `cfg.noise`);
    /// landmark selection and all randomness derive from `seed`.
    pub fn solve(&self, oracle: &impl LatencyModel, seed: u64) -> CoordStore {
        let n = oracle.num_hosts();
        let lm_count = self.cfg.landmarks.min(n);
        assert!(lm_count >= 2, "GNP needs at least two landmarks");
        let mut rng = StdRng::seed_from_u64(seed);

        // Pick landmarks uniformly at random ("well-distributed" in
        // expectation on a transit-stub net).
        let mut all: Vec<u32> = (0..n as u32).collect();
        all.shuffle(&mut rng);
        let landmarks: Vec<HostId> = all[..lm_count].iter().copied().map(HostId).collect();
        self.solve_landmarked(oracle, &landmarks, &mut rng)
    }

    /// Like [`GnpSolver::solve`], but with a caller-chosen landmark set
    /// (`cfg.landmarks` is ignored). This lets a partial oracle drive
    /// the fit: GNP only ever measures landmark↔landmark and
    /// host↔landmark pairs, so a model that knows just those — e.g. a
    /// landmark distance sketch — suffices, and coordinates can be
    /// solved at any N without a dense matrix.
    pub fn solve_with_landmarks(
        &self,
        oracle: &impl LatencyModel,
        landmarks: &[HostId],
        seed: u64,
    ) -> CoordStore {
        assert!(landmarks.len() >= 2, "GNP needs at least two landmarks");
        let mut rng = StdRng::seed_from_u64(seed);
        self.solve_landmarked(oracle, landmarks, &mut rng)
    }

    fn solve_landmarked(
        &self,
        oracle: &impl LatencyModel,
        landmarks: &[HostId],
        rng: &mut StdRng,
    ) -> CoordStore {
        let n = oracle.num_hosts();
        let lm_count = landmarks.len();

        // Measured landmark-to-landmark latencies.
        let mut lm_meas = vec![vec![0.0f64; lm_count]; lm_count];
        for i in 0..lm_count {
            for j in (i + 1)..lm_count {
                let m = measure(
                    oracle,
                    landmarks[i],
                    landmarks[j],
                    self.cfg.noise,
                    &mut *rng,
                );
                lm_meas[i][j] = m;
                lm_meas[j][i] = m;
            }
        }

        // Landmark phase: random init scaled to the measured diameter, then
        // block coordinate descent.
        let scale = lm_meas
            .iter()
            .flat_map(|r| r.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1.0);
        let mut lm_coords: Vec<Coord> = (0..lm_count)
            .map(|_| random_coord(self.cfg.dim, scale / 2.0, &mut *rng))
            .collect();
        for _ in 0..self.cfg.sweeps {
            for i in 0..lm_count {
                let objective = |p: &[f64]| {
                    let c = Coord::from_slice(p);
                    let mut e = 0.0;
                    for j in 0..lm_count {
                        if j != i {
                            e += (c.distance(&lm_coords[j]) - lm_meas[i][j]).abs();
                        }
                    }
                    e
                };
                let r = minimize(objective, lm_coords[i].as_slice(), self.cfg.simplex);
                lm_coords[i] = Coord::from_slice(&r.point);
            }
        }

        // Host phase: every host (landmarks keep their solved coordinates)
        // minimizes against the landmarks.
        let mut store = CoordStore::zeros(n, self.cfg.dim);
        for (i, &lm) in landmarks.iter().enumerate() {
            store.set(lm, lm_coords[i]);
        }
        for h in (0..n as u32).map(HostId) {
            if landmarks.contains(&h) {
                continue;
            }
            let meas: Vec<f64> = landmarks
                .iter()
                .map(|&lm| measure(oracle, h, lm, self.cfg.noise, &mut *rng))
                .collect();
            let objective = |p: &[f64]| {
                let c = Coord::from_slice(p);
                meas.iter()
                    .zip(&lm_coords)
                    .map(|(&m, lc)| (c.distance(lc) - m).abs())
                    .sum()
            };
            // Start from the centroid of the landmarks — a sane initial
            // guess that keeps the simplex in the populated region.
            let mut start = vec![0.0; self.cfg.dim];
            for lc in &lm_coords {
                for (s, &x) in start.iter_mut().zip(lc.as_slice()) {
                    *s += x;
                }
            }
            for s in start.iter_mut() {
                *s /= lm_count as f64;
            }
            let r = minimize(objective, &start, self.cfg.simplex);
            store.set(h, Coord::from_slice(&r.point));
        }
        store
    }
}

/// One latency "measurement": the oracle value perturbed by bounded
/// multiplicative noise.
pub(crate) fn measure(
    oracle: &impl LatencyModel,
    a: HostId,
    b: HostId,
    noise: f64,
    rng: &mut StdRng,
) -> f64 {
    let truth = oracle.latency_ms(a, b);
    if noise == 0.0 {
        truth
    } else {
        truth * (1.0 + noise * (2.0 * rng.random::<f64>() - 1.0))
    }
}

pub(crate) fn random_coord(dim: usize, scale: f64, rng: &mut StdRng) -> Coord {
    let v: Vec<f64> = (0..dim)
        .map(|_| scale * (2.0 * rng.random::<f64>() - 1.0))
        .collect();
    Coord::from_slice(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{random_pairs, relative_error_cdf};
    use netsim::{Network, NetworkConfig};

    fn small_net() -> Network {
        Network::generate(
            &NetworkConfig {
                transit_domains: 2,
                transit_per_domain: 3,
                stub_domains_per_transit: 2,
                routers_per_stub: 3,
                num_hosts: 120,
                ..NetworkConfig::default()
            },
            21,
        )
    }

    #[test]
    fn gnp_embeds_transit_stub_reasonably() {
        let net = small_net();
        let store = GnpSolver::new(GnpConfig {
            landmarks: 16,
            sweeps: 5,
            ..Default::default()
        })
        .solve(&net.latency, 3);
        let pairs = random_pairs(net.num_hosts(), 800, 5);
        let cdf = relative_error_cdf(&net.latency, &store, &pairs);
        let median = cdf.quantile(0.5).unwrap();
        // GNP on transit-stub nets reaches ~10-20% median relative error;
        // accept anything clearly better than "no information".
        assert!(median < 0.35, "median relative error {median}");
    }

    #[test]
    fn more_landmarks_do_not_hurt_much() {
        let net = small_net();
        let pairs = random_pairs(net.num_hosts(), 600, 6);
        let med = |lm: usize| {
            let store = GnpSolver::new(GnpConfig {
                landmarks: lm,
                sweeps: 4,
                ..Default::default()
            })
            .solve(&net.latency, 9);
            relative_error_cdf(&net.latency, &store, &pairs)
                .quantile(0.5)
                .unwrap()
        };
        let m16 = med(16);
        let m32 = med(32);
        // The paper's point: GNP is not very sensitive to the landmark
        // count. Allow wide slack; both must be sane embeddings.
        assert!(m16 < 0.35 && m32 < 0.35, "m16={m16} m32={m32}");
    }

    #[test]
    fn deterministic_given_seed() {
        let net = small_net();
        let cfg = GnpConfig {
            landmarks: 8,
            sweeps: 2,
            ..Default::default()
        };
        let a = GnpSolver::new(cfg.clone()).solve(&net.latency, 7);
        let b = GnpSolver::new(cfg).solve(&net.latency, 7);
        for h in (0..net.num_hosts() as u32).map(HostId) {
            assert_eq!(a.get(h), b.get(h));
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_landmark() {
        let net = small_net();
        GnpSolver::new(GnpConfig {
            landmarks: 1,
            ..Default::default()
        })
        .solve(&net.latency, 0);
    }
}
