//! Accuracy evaluation: the relative-error CDF of Figure 4.

use netsim::{HostId, LatencyModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcore::stats::Cdf;

/// Draw `count` distinct-ordered random host pairs (a ≠ b).
pub fn random_pairs(n_hosts: usize, count: usize, seed: u64) -> Vec<(HostId, HostId)> {
    assert!(n_hosts >= 2, "need at least two hosts to form pairs");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let a = rng.random_range(0..n_hosts as u32);
            let mut b = rng.random_range(0..n_hosts as u32);
            while b == a {
                b = rng.random_range(0..n_hosts as u32);
            }
            (HostId(a), HostId(b))
        })
        .collect()
}

/// Relative error of the estimate against the oracle for one pair:
/// `|predicted − actual| / actual`. Pairs with zero actual latency are
/// skipped by [`relative_error_cdf`].
pub fn relative_error(
    oracle: &impl LatencyModel,
    estimate: &impl LatencyModel,
    a: HostId,
    b: HostId,
) -> Option<f64> {
    let actual = oracle.latency_ms(a, b);
    if actual <= 0.0 {
        return None;
    }
    let predicted = estimate.latency_ms(a, b);
    Some((predicted - actual).abs() / actual)
}

/// The CDF of relative errors over a set of host pairs — Figure 4's y-axis
/// is `fraction_at(x)` for relative error `x`.
pub fn relative_error_cdf(
    oracle: &impl LatencyModel,
    estimate: &impl LatencyModel,
    pairs: &[(HostId, HostId)],
) -> Cdf {
    let errs: Vec<f64> = pairs
        .iter()
        .filter_map(|&(a, b)| relative_error(oracle, estimate, a, b))
        .collect();
    Cdf::from_samples(errs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Coord, CoordStore};

    struct FakeOracle(f64);
    impl LatencyModel for FakeOracle {
        fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
            if a == b {
                0.0
            } else {
                self.0
            }
        }
        fn num_hosts(&self) -> usize {
            10
        }
    }

    #[test]
    fn perfect_estimate_has_zero_error() {
        let oracle = FakeOracle(100.0);
        let pairs = random_pairs(10, 50, 1);
        let cdf = relative_error_cdf(&oracle, &oracle, &pairs);
        assert_eq!(cdf.quantile(1.0), Some(0.0));
    }

    #[test]
    fn known_error_is_measured() {
        let oracle = FakeOracle(100.0);
        // All hosts at origin except host 1 at distance 150 from the rest —
        // predicted 150 vs actual 100 → relative error 0.5 for pairs with 1.
        let mut store = CoordStore::zeros(10, 2);
        store.set(HostId(1), Coord::from_slice(&[150.0, 0.0]));
        let e = relative_error(&oracle, &store, HostId(0), HostId(1)).unwrap();
        assert!((e - 0.5).abs() < 1e-12);
        // Pair not involving host 1: predicted 0 vs actual 100 → error 1.0.
        let e = relative_error(&oracle, &store, HostId(2), HostId(3)).unwrap();
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_pairs_never_self() {
        for (a, b) in random_pairs(2, 100, 9) {
            assert_ne!(a, b);
        }
    }

    #[test]
    fn random_pairs_deterministic() {
        assert_eq!(random_pairs(50, 20, 3), random_pairs(50, 20, 3));
    }
}
