//! The leafset-based decentralized coordinate scheme (§4.1).
//!
//! No landmarks: each DHT node already heartbeats with its leafset, so it
//! measures delays `d_m` to leafset members for free and receives their
//! current coordinates in return (`d_p`). Periodically the node re-optimizes
//! *only its own* coordinate with downhill simplex, minimizing
//! `E(x) = Σ_i |d_p(i) − d_m(i)|`, and publishes the result in later
//! heartbeats.
//!
//! The simulation runs this as Gauss–Seidel rounds over the membership: one
//! round = every node updates once using its neighbors' *latest* published
//! coordinates, matching the continuous asynchronous refinement of the real
//! protocol. Because the leafset is a random sample of the whole population
//! (IDs are hashes), leafset neighbors are latency-diverse — exactly why the
//! scheme works.

use dht::Ring;
use netsim::{HostId, LatencyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gnp::{measure, random_coord};
use crate::simplex::{minimize, SimplexOptions};
use crate::space::{Coord, CoordStore, DEFAULT_DIM};

/// Configuration of the leafset coordinate protocol.
#[derive(Clone, Debug)]
pub struct LeafsetConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Total leafset size L (L/2 members per side; L=32 is Pastry's
    /// default and the paper's sweet spot).
    pub leafset_size: usize,
    /// Update rounds (each round every node refines once).
    pub rounds: usize,
    /// Bounded multiplicative measurement noise on heartbeat RTTs.
    pub noise: f64,
    /// Simplex budget per node-update.
    pub simplex: SimplexOptions,
}

impl Default for LeafsetConfig {
    fn default() -> Self {
        LeafsetConfig {
            dim: DEFAULT_DIM,
            leafset_size: 32,
            rounds: 20,
            noise: 0.0,
            simplex: SimplexOptions {
                initial_step: 30.0,
                tolerance: 0.1,
                max_evals: 400,
            },
        }
    }
}

/// The leafset coordinate protocol, simulated in rounds.
pub struct LeafsetCoords {
    cfg: LeafsetConfig,
}

impl LeafsetCoords {
    /// A protocol instance with the given configuration.
    pub fn new(cfg: LeafsetConfig) -> LeafsetCoords {
        LeafsetCoords { cfg }
    }

    /// Run the protocol over the members of `ring`, measuring real delays
    /// through `oracle`. Returns coordinates for **all hosts of the
    /// oracle** (hosts not in the ring keep the origin; the pool always
    /// rings every host).
    pub fn run(&self, oracle: &impl LatencyModel, ring: &Ring, seed: u64) -> CoordStore {
        let n_hosts = oracle.num_hosts();
        let mut rng = StdRng::seed_from_u64(seed);
        let r_side = (self.cfg.leafset_size / 2).max(1);

        // Precompute each member's leafset (host ids) and measured delays —
        // the accumulated d_m vector from heartbeat history.
        let n = ring.len();
        let mut neighbors: Vec<Vec<HostId>> = Vec::with_capacity(n);
        let mut measured: Vec<Vec<f64>> = Vec::with_capacity(n);
        for i in 0..n {
            let me = ring.member(i).host;
            let hosts: Vec<HostId> = ring
                .leafset(i, r_side)
                .into_iter()
                .map(|j| ring.member(j).host)
                .collect();
            let meas = hosts
                .iter()
                .map(|&nb| measure(oracle, me, nb, self.cfg.noise, &mut rng))
                .collect();
            neighbors.push(hosts);
            measured.push(meas);
        }

        // Random small initial coordinates (every node starts ignorant).
        let mut store = CoordStore::zeros(n_hosts, self.cfg.dim);
        for i in 0..n {
            let c = random_coord(self.cfg.dim, 10.0, &mut rng);
            store.set(ring.member(i).host, c);
        }

        // Gauss–Seidel refinement rounds.
        for round in 0..self.cfg.rounds {
            // Later rounds take smaller simplex steps: coordinates are
            // nearly settled and large probes just inject noise.
            let step = if round < 2 {
                self.cfg.simplex.initial_step
            } else {
                (self.cfg.simplex.initial_step / (round as f64)).max(2.0)
            };
            let opts = SimplexOptions {
                initial_step: step,
                ..self.cfg.simplex
            };
            for i in 0..n {
                let me = ring.member(i).host;
                let nb_coords: Vec<Coord> = neighbors[i].iter().map(|&h| *store.get(h)).collect();
                let meas = &measured[i];
                let objective = |p: &[f64]| {
                    let c = Coord::from_slice(p);
                    nb_coords
                        .iter()
                        .zip(meas)
                        .map(|(nc, &m)| (c.distance(nc) - m).abs())
                        .sum()
                };
                let res = minimize(objective, store.get(me).as_slice(), opts);
                store.set(me, Coord::from_slice(&res.point));
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{random_pairs, relative_error_cdf};
    use netsim::{Network, NetworkConfig};

    fn small_net() -> Network {
        Network::generate(
            &NetworkConfig {
                transit_domains: 2,
                transit_per_domain: 3,
                stub_domains_per_transit: 2,
                routers_per_stub: 3,
                num_hosts: 120,
                ..NetworkConfig::default()
            },
            33,
        )
    }

    #[test]
    fn leafset_coords_embed_reasonably() {
        let net = small_net();
        let ring = Ring::with_random_ids((0..net.num_hosts() as u32).map(HostId), 8);
        let store = LeafsetCoords::new(LeafsetConfig {
            leafset_size: 32,
            rounds: 12,
            ..Default::default()
        })
        .run(&net.latency, &ring, 4);
        let pairs = random_pairs(net.num_hosts(), 800, 10);
        let cdf = relative_error_cdf(&net.latency, &store, &pairs);
        let median = cdf.quantile(0.5).unwrap();
        assert!(median < 0.4, "median relative error {median}");
    }

    #[test]
    fn larger_leafset_helps() {
        // The paper's Figure 4 finding: the leafset variant is sensitive to
        // L; L=32 clearly beats a tiny leafset.
        let net = small_net();
        let ring = Ring::with_random_ids((0..net.num_hosts() as u32).map(HostId), 8);
        let pairs = random_pairs(net.num_hosts(), 800, 11);
        let med = |l: usize| {
            let store = LeafsetCoords::new(LeafsetConfig {
                leafset_size: l,
                rounds: 12,
                ..Default::default()
            })
            .run(&net.latency, &ring, 5);
            relative_error_cdf(&net.latency, &store, &pairs)
                .quantile(0.5)
                .unwrap()
        };
        let m4 = med(4);
        let m32 = med(32);
        assert!(m32 < m4, "L=32 (err {m32}) should beat L=4 (err {m4})");
    }

    #[test]
    fn deterministic_given_seed() {
        let net = small_net();
        let ring = Ring::with_random_ids((0..60u32).map(HostId), 2);
        let cfg = LeafsetConfig {
            rounds: 3,
            ..Default::default()
        };
        let a = LeafsetCoords::new(cfg.clone()).run(&net.latency, &ring, 6);
        let b = LeafsetCoords::new(cfg).run(&net.latency, &ring, 6);
        for h in (0..60u32).map(HostId) {
            assert_eq!(a.get(h), b.get(h));
        }
    }

    #[test]
    fn measurement_noise_degrades_gracefully() {
        // Heartbeat RTTs jitter in practice; a bounded 10% measurement
        // noise must not wreck the embedding (the protocol averages it out
        // across 32 neighbors and repeated refinement).
        let net = small_net();
        let ring = Ring::with_random_ids((0..net.num_hosts() as u32).map(HostId), 8);
        let pairs = random_pairs(net.num_hosts(), 600, 12);
        let med = |noise: f64| {
            let store = LeafsetCoords::new(LeafsetConfig {
                leafset_size: 32,
                rounds: 10,
                noise,
                ..Default::default()
            })
            .run(&net.latency, &ring, 7);
            relative_error_cdf(&net.latency, &store, &pairs)
                .quantile(0.5)
                .unwrap()
        };
        let clean = med(0.0);
        let noisy = med(0.1);
        assert!(
            noisy < clean + 0.15,
            "10% RTT noise blew up the embedding: {clean} → {noisy}"
        );
    }

    #[test]
    fn hosts_outside_ring_stay_at_origin() {
        let net = small_net();
        // Only half the hosts join the ring.
        let ring = Ring::with_random_ids((0..60u32).map(HostId), 2);
        let store = LeafsetCoords::new(LeafsetConfig {
            rounds: 2,
            ..Default::default()
        })
        .run(&net.latency, &ring, 6);
        assert_eq!(store.get(HostId(100)), &Coord::zero(DEFAULT_DIM));
    }
}
