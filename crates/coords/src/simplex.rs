//! Nelder–Mead downhill simplex minimization.
//!
//! The paper's §4.1 has every node "executing downhill simplex algorithm"
//! locally on its own coordinate. This is the standard Nelder–Mead method
//! (reflection / expansion / contraction / shrink) implemented from scratch
//! on flat `&[f64]` points; no external optimizer crates are used.

/// Options controlling a minimization run.
#[derive(Clone, Copy, Debug)]
pub struct SimplexOptions {
    /// Initial simplex edge length around the starting point.
    pub initial_step: f64,
    /// Stop when the best–worst objective spread falls below this.
    pub tolerance: f64,
    /// Hard cap on objective evaluations.
    pub max_evals: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            initial_step: 10.0,
            tolerance: 1e-3,
            max_evals: 2000,
        }
    }
}

/// Result of a minimization.
#[derive(Clone, Debug)]
pub struct SimplexResult {
    /// The best point found.
    pub point: Vec<f64>,
    /// Objective value at `point`.
    pub value: f64,
    /// Number of objective evaluations used.
    pub evals: usize,
}

/// Minimize `f` starting from `x0` with Nelder–Mead. Standard coefficients:
/// reflection α=1, expansion γ=2, contraction ρ=½, shrink σ=½.
pub fn minimize(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    opts: SimplexOptions,
) -> SimplexResult {
    let n = x0.len();
    assert!(n >= 1, "cannot minimize over zero dimensions");
    let mut evals = 0usize;
    let mut eval = |p: &[f64], evals: &mut usize| {
        *evals += 1;
        f(p)
    };

    // Initial simplex: x0 plus one vertex per axis offset.
    let mut pts: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    pts.push(x0.to_vec());
    for i in 0..n {
        let mut p = x0.to_vec();
        p[i] += opts.initial_step;
        pts.push(p);
    }
    let mut vals: Vec<f64> = pts.iter().map(|p| eval(p, &mut evals)).collect();

    while evals < opts.max_evals {
        // Order vertices best → worst.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| vals[a].total_cmp(&vals[b]));
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        if (vals[worst] - vals[best]).abs() < opts.tolerance {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for &i in &order[..n] {
            for d in 0..n {
                centroid[d] += pts[i][d];
            }
        }
        for c in centroid.iter_mut() {
            *c /= n as f64;
        }

        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(&x, &y)| x + t * (y - x)).collect()
        };

        // Reflection: centroid + 1·(centroid − worst).
        let reflected = lerp(&centroid, &pts[worst], -1.0);
        let fr = eval(&reflected, &mut evals);

        if fr < vals[best] {
            // Expansion: centroid + 2·(centroid − worst).
            let expanded = lerp(&centroid, &pts[worst], -2.0);
            let fe = eval(&expanded, &mut evals);
            if fe < fr {
                pts[worst] = expanded;
                vals[worst] = fe;
            } else {
                pts[worst] = reflected;
                vals[worst] = fr;
            }
        } else if fr < vals[second_worst] {
            pts[worst] = reflected;
            vals[worst] = fr;
        } else {
            // Contraction (outside if the reflection helped at all, inside
            // otherwise).
            let t = if fr < vals[worst] { -0.5 } else { 0.5 };
            let contracted = lerp(&centroid, &pts[worst], t);
            let fc = eval(&contracted, &mut evals);
            if fc < vals[worst].min(fr) {
                pts[worst] = contracted;
                vals[worst] = fc;
            } else {
                // Shrink everything toward the best vertex.
                let best_pt = pts[best].clone();
                for &i in order.iter().skip(1) {
                    pts[i] = lerp(&best_pt, &pts[i], 0.5);
                    vals[i] = eval(&pts[i], &mut evals);
                }
            }
        }
    }

    let (bi, _) = vals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    SimplexResult {
        point: pts[bi].clone(),
        value: vals[bi],
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let r = minimize(
            |p| p.iter().map(|x| (x - 3.0) * (x - 3.0)).sum(),
            &[0.0, 0.0, 0.0],
            SimplexOptions::default(),
        );
        for &x in &r.point {
            assert!((x - 3.0).abs() < 0.05, "point {:?}", r.point);
        }
        assert!(r.value < 1e-2);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        // Banana function: minimum at (1, 1). Nelder–Mead needs a budget.
        let rosen = |p: &[f64]| {
            let (x, y) = (p[0], p[1]);
            (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2)
        };
        let r = minimize(
            rosen,
            &[-1.2, 1.0],
            SimplexOptions {
                initial_step: 0.5,
                tolerance: 1e-10,
                max_evals: 5000,
            },
        );
        assert!((r.point[0] - 1.0).abs() < 0.05, "{:?}", r.point);
        assert!((r.point[1] - 1.0).abs() < 0.05, "{:?}", r.point);
    }

    #[test]
    fn minimizes_absolute_value_objective() {
        // The paper's E(x) is a sum of absolute differences — non-smooth.
        let target = [5.0, -2.0];
        let f = |p: &[f64]| (p[0] - target[0]).abs() + (p[1] - target[1]).abs();
        let r = minimize(f, &[0.0, 0.0], SimplexOptions::default());
        assert!((r.point[0] - 5.0).abs() < 0.1);
        assert!((r.point[1] + 2.0).abs() < 0.1);
    }

    #[test]
    fn respects_eval_budget() {
        let mut count = 0;
        let _ = minimize(
            |p| {
                count += 1;
                p[0] * p[0]
            },
            &[100.0],
            SimplexOptions {
                max_evals: 50,
                tolerance: 0.0,
                ..Default::default()
            },
        );
        // A shrink step may briefly overshoot the cap; allow the n+1 slack.
        assert!(count <= 55, "used {count} evals");
    }

    #[test]
    fn one_dimension_works() {
        let r = minimize(|p| (p[0] + 7.0).powi(2), &[0.0], SimplexOptions::default());
        assert!((r.point[0] + 7.0).abs() < 0.05);
    }

    #[test]
    fn already_optimal_start_stays() {
        let r = minimize(
            |p| p[0] * p[0] + p[1] * p[1],
            &[0.0, 0.0],
            SimplexOptions {
                initial_step: 1.0,
                ..Default::default()
            },
        );
        assert!(r.value < 1e-2);
    }
}
