#![warn(missing_docs)]

//! # coords — network coordinates without landmarks (§4.1)
//!
//! To pick nearby helpers out of a huge candidate list, the task manager
//! needs pair-wise latency estimates for *arbitrary* host pairs. GNP showed
//! that embedding hosts into a d-dimensional Euclidean space works well, but
//! needs a set of well-known *landmark* nodes — which contradicts the fully
//! distributed nature of a P2P resource pool.
//!
//! The paper's observation (shared with Lighthouse and PIC): DHT nodes
//! already heartbeat with their leafset to maintain the space, so each node
//! accumulates a **measured delay vector** `d_m` to its leafset members for
//! free, and neighbors' coordinates ride along in heartbeats giving a
//! **predicted delay vector** `d_p`. Each node then locally runs downhill
//! simplex to minimize `E(x) = Σ_i |d_p(i) − d_m(i)|` over its own
//! coordinate, and publishes the update in subsequent heartbeats.
//!
//! This crate implements:
//!
//! * [`simplex`] — a from-scratch Nelder–Mead minimizer;
//! * [`space`] — the coordinate type and the [`CoordStore`] that implements
//!   [`netsim::LatencyModel`], so ALM planning can run on estimated
//!   latencies (the paper's *Leafset* algorithms);
//! * [`gnp`] — the landmark-based GNP baseline (Figure 4's comparison);
//! * [`leafset`] — the decentralized leafset variant;
//! * [`eval`] — relative-error CDFs (Figure 4's metric).

pub mod dense;
pub mod eval;
pub mod gnp;
pub mod leafset;
pub mod simplex;
pub mod space;

pub use dense::DenseCoords;
pub use eval::relative_error_cdf;
pub use gnp::{GnpConfig, GnpSolver};
pub use leafset::LeafsetCoords;
pub use space::{Coord, CoordStore};
