//! `f32` structure-of-arrays fast path for coordinate distance evaluation.
//!
//! [`CoordStore`] keeps full-precision `f64` coordinates in an
//! array-of-structs layout (each [`Coord`](crate::Coord) carries a fixed
//! 8-wide buffer regardless of the embedding dimension). That is the right
//! representation while coordinates are being *solved*, but planner inner
//! loops only ever evaluate distances, and there the layout wastes memory
//! bandwidth: a 5-dimensional store streams 128 bytes per coordinate instead
//! of 20.
//!
//! [`DenseCoords`] snapshots a store into `dim` contiguous `f32` component
//! planes. Distance evaluation reads `dim` lanes per host and runs entirely
//! in `f32`.
//!
//! **Precision:** this is an opt-in approximation, *not* value-identical to
//! the source store — components are rounded to `f32` once and the
//! arithmetic is `f32` (see the [`LatencyModel`] precision contract). The
//! determinism-anchored pipelines (`staged_plan`, the fig8/fig10 benches)
//! must keep using [`CoordStore`] directly; `DenseCoords` exists for
//! throughput studies such as the `perf_planner` sweep.

use netsim::{HostId, LatencyModel};

use crate::space::CoordStore;

/// An `f32` SoA snapshot of a [`CoordStore`], usable as a [`LatencyModel`].
#[derive(Clone, Debug)]
pub struct DenseCoords {
    n: usize,
    dim: usize,
    /// Component plane `k` holds host `i`'s `k`-th component at `k * n + i`.
    comps: Vec<f32>,
}

impl DenseCoords {
    /// Snapshot `store` (rounds every component to `f32` once).
    pub fn from_store(store: &CoordStore) -> DenseCoords {
        let n = store.num_hosts();
        let dim = store.coords().first().map_or(0, |c| c.dim());
        let mut comps = vec![0f32; dim * n];
        for (i, c) in store.coords().iter().enumerate() {
            assert_eq!(c.dim(), dim, "mixed embedding dimensions");
            for (k, &x) in c.as_slice().iter().enumerate() {
                comps[k * n + i] = x as f32;
            }
        }
        DenseCoords { n, dim, comps }
    }

    /// Embedding dimension of the snapshot.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl LatencyModel for DenseCoords {
    #[inline]
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            return 0.0;
        }
        debug_assert!(a.idx() < self.n && b.idx() < self.n, "host out of range");
        let mut s = 0f32;
        for k in 0..self.dim {
            let base = k * self.n;
            // SAFETY: `base + idx < dim * n`, the length of `comps`; ids are
            // below `num_hosts` by the model contract (debug-asserted above).
            let d = unsafe {
                self.comps.get_unchecked(base + a.idx()) - self.comps.get_unchecked(base + b.idx())
            };
            s += d * d;
        }
        f64::from(s.sqrt())
    }

    #[inline]
    fn num_hosts(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Coord;

    #[test]
    fn matches_store_within_f32_rounding() {
        let mut store = CoordStore::zeros(8, 5);
        for i in 0..8u32 {
            let v: Vec<f64> = (0..5)
                .map(|k| (i as f64 + 0.1) * (k as f64 - 2.0))
                .collect();
            store.set(HostId(i), Coord::from_slice(&v));
        }
        let dense = DenseCoords::from_store(&store);
        assert_eq!(dense.num_hosts(), 8);
        assert_eq!(dense.dim(), 5);
        for a in 0..8u32 {
            for b in 0..8u32 {
                let exact = store.latency_ms(HostId(a), HostId(b));
                let fast = dense.latency_ms(HostId(a), HostId(b));
                let tol = 1e-5 * exact.abs().max(1.0);
                assert!((exact - fast).abs() <= tol, "{exact} vs {fast}");
            }
        }
        assert_eq!(dense.latency_ms(HostId(3), HostId(3)), 0.0);
    }

    #[test]
    fn empty_store_is_fine() {
        let dense = DenseCoords::from_store(&CoordStore::zeros(0, 1));
        assert_eq!(dense.num_hosts(), 0);
    }
}
