#![warn(missing_docs)]

//! # runstore — a queryable store for one simulation run
//!
//! The trace/metrics layer (`simcore::trace`) stops at post-hoc JSON-lines
//! dumps: once a run ends, the ring buffer is drained and the history is a
//! flat file. A [`RunStore`] is the live-operations upgrade — the
//! event-log-plus-snapshots shape of an audit store:
//!
//! * an **append-only trace log** of every [`TraceRecord`] the run emits,
//!   kept in bounded segments ([`StoreConfig`]) with *counted* eviction —
//!   a record is never lost silently;
//! * an append-only **delta log** of typed state-changing events
//!   ([`Stamped`]`<D>`), same segmented retention;
//! * periodic **snapshots** of full simulator state
//!   ([`SnapshotEntry`]`<S>`), each stamped with the trace and delta
//!   sequence numbers it is consistent with.
//!
//! Reconstruction is `open_at(snapshot) + replay(deltas)`
//! ([`RunStore::open_at`], [`RunStore::replay`]): clone the snapshot's
//! state and fold the retained deltas forward with a caller-supplied apply
//! function. When the segments still hold the needed range this is exact —
//! the determinism gates in `tests/liveops.rs` and the `ext_liveops` bench
//! assert the reconstructed state byte-identical to the live run. When
//! eviction has opened a gap, the store says so with a typed
//! [`ReplayGap`] instead of replaying from the wrong base.
//!
//! The store is deliberately generic: `D` (delta) and `S` (snapshot state)
//! are the simulator's own serde-able types; `pool::liveops` instantiates
//! it for the market. [`StoreSink`] adapts a shared store into a
//! [`TraceSink`] so a `Tracer` streams records straight into the trace log.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use serde::Serialize;
use simcore::metrics::MetricsRegistry;
use simcore::trace::{to_json_lines, TraceRecord, TraceSink};
use simcore::SimTime;

/// Retention policy for one segmented log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// Records per segment (a segment seals when full).
    pub segment_cap: usize,
    /// Maximum sealed-or-open segments retained per log; the oldest
    /// segment is evicted (and its records counted) beyond this.
    pub max_segments: usize,
}

impl StoreConfig {
    /// Bounded retention: at most `max_segments` segments of
    /// `segment_cap` records each, per log.
    ///
    /// # Panics
    /// If either bound is 0.
    pub fn bounded(segment_cap: usize, max_segments: usize) -> StoreConfig {
        assert!(segment_cap > 0, "segment capacity must be positive");
        assert!(max_segments > 0, "segment count must be positive");
        StoreConfig {
            segment_cap,
            max_segments,
        }
    }

    /// Segmented but effectively unbounded retention (determinism gates
    /// want the full history).
    pub fn unbounded(segment_cap: usize) -> StoreConfig {
        StoreConfig::bounded(segment_cap, usize::MAX)
    }
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig::unbounded(4096)
    }
}

/// A requested replay range reaches below the store's retained history:
/// eviction dropped records the reconstruction would need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayGap {
    /// First sequence number the caller needed.
    pub requested: u64,
    /// Earliest sequence number still retained.
    pub earliest: u64,
}

impl std::fmt::Display for ReplayGap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay gap: seq {} requested but eviction kept only {}..",
            self.requested, self.earliest
        )
    }
}

impl std::error::Error for ReplayGap {}

/// One delta stamped with its log position and simulated instant.
#[derive(Clone, Debug, PartialEq)]
pub struct Stamped<D> {
    /// Position in the delta log (monotonic, never reset by eviction).
    pub seq: u64,
    /// Simulated instant the delta was appended at, microseconds.
    pub at_us: u64,
    /// The delta itself.
    pub delta: D,
}

/// One snapshot of full simulator state, with the log positions it is
/// consistent with: every trace record `< trace_seq` and every delta
/// `< delta_seq` is already reflected in `state`.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotEntry<S> {
    /// Simulated instant the snapshot was taken at, microseconds.
    pub at_us: u64,
    /// Trace-log sequence number the snapshot is consistent with.
    pub trace_seq: u64,
    /// Delta-log sequence number the snapshot is consistent with.
    pub delta_seq: u64,
    /// The captured state.
    pub state: S,
}

// The vendored serde derive does not handle generic types; these render
// the same field-by-name object encoding the derive would.
impl<D: Serialize> Serialize for Stamped<D> {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("seq".to_owned(), self.seq.to_json_value()),
            ("at_us".to_owned(), self.at_us.to_json_value()),
            ("delta".to_owned(), self.delta.to_json_value()),
        ])
    }
}

impl<S: Serialize> Serialize for SnapshotEntry<S> {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("at_us".to_owned(), self.at_us.to_json_value()),
            ("trace_seq".to_owned(), self.trace_seq.to_json_value()),
            ("delta_seq".to_owned(), self.delta_seq.to_json_value()),
            ("state".to_owned(), self.state.to_json_value()),
        ])
    }
}

/// An append-only log in bounded segments with counted eviction.
#[derive(Clone, Debug)]
struct SegmentedLog<T> {
    segments: VecDeque<Segment<T>>,
    cfg: StoreConfig,
    /// Records ever appended (== the next sequence number).
    appended: u64,
    /// Records lost to segment eviction.
    evicted: u64,
}

#[derive(Clone, Debug)]
struct Segment<T> {
    first_seq: u64,
    items: Vec<T>,
}

impl<T> SegmentedLog<T> {
    fn new(cfg: StoreConfig) -> SegmentedLog<T> {
        SegmentedLog {
            segments: VecDeque::new(),
            cfg,
            appended: 0,
            evicted: 0,
        }
    }

    fn append(&mut self, item: T) {
        let needs_new = match self.segments.back() {
            Some(s) => s.items.len() >= self.cfg.segment_cap,
            None => true,
        };
        if needs_new {
            self.segments.push_back(Segment {
                first_seq: self.appended,
                items: Vec::new(),
            });
            if self.segments.len() > self.cfg.max_segments {
                let old = self.segments.pop_front().expect("len > max >= 1");
                self.evicted += old.items.len() as u64;
            }
        }
        self.segments
            .back_mut()
            .expect("just ensured a segment")
            .items
            .push(item);
        self.appended += 1;
    }

    /// Sequence number of the earliest retained record (== `appended` when
    /// the log is empty).
    fn earliest(&self) -> u64 {
        self.segments.front().map_or(self.appended, |s| s.first_seq)
    }

    fn next_seq(&self) -> u64 {
        self.appended
    }

    fn stored(&self) -> impl Iterator<Item = &T> {
        self.segments.iter().flat_map(|s| s.items.iter())
    }

    /// Every retained record with sequence number in `[from, to)`.
    fn range(&self, from: u64, to: u64) -> Result<Vec<&T>, ReplayGap> {
        if from < self.earliest() {
            return Err(ReplayGap {
                requested: from,
                earliest: self.earliest(),
            });
        }
        let mut out = Vec::new();
        for seg in &self.segments {
            let seg_end = seg.first_seq + seg.items.len() as u64;
            if seg_end <= from || seg.first_seq >= to {
                continue;
            }
            let lo = from.saturating_sub(seg.first_seq) as usize;
            let hi = (to.min(seg_end) - seg.first_seq) as usize;
            out.extend(seg.items[lo..hi].iter());
        }
        Ok(out)
    }
}

/// Cumulative accounting for one [`RunStore`]. Every count is explicit —
/// eviction is visible here and through
/// [`RunStore::publish_metrics`], never silent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct StoreStats {
    /// Trace records ever appended.
    pub trace_appended: u64,
    /// Trace records lost to segment eviction.
    pub trace_evicted: u64,
    /// Deltas ever appended.
    pub delta_appended: u64,
    /// Deltas lost to segment eviction.
    pub delta_evicted: u64,
    /// Snapshots taken.
    pub snapshots: u64,
}

/// A replay starting point: the snapshot plus every retained delta from
/// its consistency point to the end of the log.
#[derive(Debug)]
pub struct ReplayView<'a, D, S> {
    /// The snapshot to reconstruct from.
    pub snapshot: &'a SnapshotEntry<S>,
    /// The deltas to fold forward, in log order.
    pub deltas: Vec<&'a Stamped<D>>,
}

/// The run store. See the module docs; `D` is the simulator's delta type,
/// `S` its snapshot state.
pub struct RunStore<D, S> {
    trace: SegmentedLog<TraceRecord>,
    deltas: SegmentedLog<Stamped<D>>,
    snapshots: Vec<SnapshotEntry<S>>,
}

impl<D, S> RunStore<D, S> {
    /// An empty store; both logs retain per `cfg`.
    pub fn new(cfg: StoreConfig) -> RunStore<D, S> {
        RunStore {
            trace: SegmentedLog::new(cfg),
            deltas: SegmentedLog::new(cfg),
            snapshots: Vec::new(),
        }
    }

    /// Append one trace record (normally via [`StoreSink`]).
    pub fn append_trace(&mut self, rec: TraceRecord) {
        self.trace.append(rec);
    }

    /// Append one delta at simulated instant `at`; returns its sequence
    /// number.
    pub fn append_delta(&mut self, at: SimTime, delta: D) -> u64 {
        let seq = self.deltas.next_seq();
        self.deltas.append(Stamped {
            seq,
            at_us: at.as_micros(),
            delta,
        });
        seq
    }

    /// Record a snapshot of `state` taken at `at`, consistent with
    /// everything appended so far. Returns its index.
    pub fn snapshot(&mut self, at: SimTime, state: S) -> usize {
        self.snapshots.push(SnapshotEntry {
            at_us: at.as_micros(),
            trace_seq: self.trace.next_seq(),
            delta_seq: self.deltas.next_seq(),
            state,
        });
        self.snapshots.len() - 1
    }

    /// Every snapshot taken, oldest first.
    pub fn snapshots(&self) -> &[SnapshotEntry<S>] {
        &self.snapshots
    }

    /// The most recent snapshot, if any.
    pub fn latest_snapshot(&self) -> Option<&SnapshotEntry<S>> {
        self.snapshots.last()
    }

    /// Open snapshot `idx` for replay: the snapshot plus every retained
    /// delta from its consistency point onward.
    ///
    /// # Errors
    /// [`ReplayGap`] when delta eviction dropped part of the needed range
    /// — reconstruction from this snapshot would be wrong, so it is
    /// refused rather than silently partial.
    pub fn open_at(&self, idx: usize) -> Result<ReplayView<'_, D, S>, ReplayGap> {
        let snapshot = &self.snapshots[idx];
        let deltas = self
            .deltas
            .range(snapshot.delta_seq, self.deltas.next_seq())?;
        Ok(ReplayView { snapshot, deltas })
    }

    /// Reconstruct the state at the end of the log from snapshot `idx`:
    /// clone its state and fold every later delta forward with `apply`.
    ///
    /// # Errors
    /// [`ReplayGap`] as for [`RunStore::open_at`].
    pub fn replay<F>(&self, idx: usize, mut apply: F) -> Result<S, ReplayGap>
    where
        S: Clone,
        F: FnMut(&mut S, &Stamped<D>),
    {
        let view = self.open_at(idx)?;
        let mut state = view.snapshot.state.clone();
        for d in view.deltas {
            apply(&mut state, d);
        }
        Ok(state)
    }

    /// The full-run trace, cloned out of the segments.
    ///
    /// # Errors
    /// [`ReplayGap`] when eviction dropped early records — the full trace
    /// no longer exists and a partial one must not masquerade as it.
    pub fn trace_records(&self) -> Result<Vec<TraceRecord>, ReplayGap> {
        if self.trace.evicted > 0 {
            return Err(ReplayGap {
                requested: 0,
                earliest: self.trace.earliest(),
            });
        }
        Ok(self.trace.stored().cloned().collect())
    }

    /// Every retained trace record, oldest first (partial after eviction).
    pub fn trace_stored(&self) -> impl Iterator<Item = &TraceRecord> {
        self.trace.stored()
    }

    /// Every retained delta, oldest first (partial after eviction).
    pub fn deltas_stored(&self) -> impl Iterator<Item = &Stamped<D>> {
        self.deltas.stored()
    }

    /// Cumulative append/evict/snapshot accounting.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            trace_appended: self.trace.appended,
            trace_evicted: self.trace.evicted,
            delta_appended: self.deltas.appended,
            delta_evicted: self.deltas.evicted,
            snapshots: self.snapshots.len() as u64,
        }
    }

    /// Surface the store accounting as counters (`runstore.*`), eviction
    /// included. Call once at the end of a run.
    pub fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        let s = self.stats();
        reg.add("runstore.trace_appended", s.trace_appended);
        reg.add("runstore.trace_evicted", s.trace_evicted);
        reg.add("runstore.delta_appended", s.delta_appended);
        reg.add("runstore.delta_evicted", s.delta_evicted);
        reg.add("runstore.snapshots", s.snapshots);
    }

    /// The full-run trace rendered as JSON lines (byte-identical to
    /// rendering the live tracer's records).
    ///
    /// # Errors
    /// [`ReplayGap`] as for [`RunStore::trace_records`].
    pub fn trace_json_lines(&self) -> Result<String, ReplayGap> {
        Ok(to_json_lines(&self.trace_records()?))
    }
}

impl<D: Serialize, S> RunStore<D, S> {
    /// Every retained delta as JSON lines, one stamped object per line.
    pub fn deltas_json_lines(&self) -> String {
        let mut out = String::new();
        for d in self.deltas.stored() {
            out.push_str(&serde_json::to_string(d).expect("deltas always serialize"));
            out.push('\n');
        }
        out
    }
}

impl<D, S: Serialize> RunStore<D, S> {
    /// Every snapshot as JSON lines, one entry per line.
    pub fn snapshots_json_lines(&self) -> String {
        let mut out = String::new();
        for s in &self.snapshots {
            out.push_str(&serde_json::to_string(s).expect("snapshots always serialize"));
            out.push('\n');
        }
        out
    }
}

/// Shared ownership of a store: the simulator holds one clone, the
/// tracer's [`StoreSink`] another, an operator console a third.
pub type StoreHandle<D, S> = Arc<Mutex<RunStore<D, S>>>;

/// Wrap a store in a fresh shared handle.
pub fn shared<D, S>(store: RunStore<D, S>) -> StoreHandle<D, S> {
    Arc::new(Mutex::new(store))
}

/// A [`TraceSink`] that appends every record to a shared [`RunStore`]'s
/// trace log. Attach via `Tracer::with_sink(Box::new(StoreSink::new(h)))`.
pub struct StoreSink<D, S> {
    handle: StoreHandle<D, S>,
}

impl<D, S> StoreSink<D, S> {
    /// A sink feeding `handle`'s trace log.
    pub fn new(handle: StoreHandle<D, S>) -> StoreSink<D, S> {
        StoreSink { handle }
    }
}

impl<D, S> TraceSink for StoreSink<D, S> {
    fn record(&mut self, rec: TraceRecord) {
        self.handle
            .lock()
            .expect("run store lock poisoned")
            .append_trace(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::trace::TraceEvent;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            at_us: seq * 1000,
            ev: TraceEvent::RecoveryPhase { phase: seq as u32 },
        }
    }

    #[test]
    fn appends_snapshots_and_replays_to_the_final_state() {
        let mut st: RunStore<i64, i64> = RunStore::new(StoreConfig::unbounded(4));
        st.append_delta(SimTime::from_secs(1), 5);
        st.snapshot(SimTime::from_secs(1), 5);
        for i in 0..10 {
            st.append_delta(SimTime::from_secs(2 + i), 1);
        }
        st.snapshot(SimTime::from_secs(20), 15);
        // Replay from the first snapshot folds the ten +1 deltas forward.
        let got = st.replay(0, |s, d| *s += d.delta).unwrap();
        assert_eq!(got, 15);
        assert_eq!(got, st.latest_snapshot().unwrap().state);
        // Replay from the final snapshot applies nothing.
        assert_eq!(st.replay(1, |s, d| *s += d.delta).unwrap(), 15);
    }

    #[test]
    fn eviction_is_counted_and_gaps_are_typed_errors() {
        let mut st: RunStore<i64, i64> = RunStore::new(StoreConfig::bounded(2, 2));
        st.snapshot(SimTime::ZERO, 0);
        for i in 0..9 {
            st.append_delta(SimTime::from_secs(i), 1);
        }
        // 9 deltas in segments of 2, at most 2 segments retained: opening
        // the segment for seq 8 evicted everything below seq 6.
        let s = st.stats();
        assert_eq!(s.delta_appended, 9);
        assert_eq!(s.delta_evicted, 6);
        assert_eq!(st.deltas_stored().count(), 3);
        let gap = st.open_at(0).unwrap_err();
        assert_eq!(
            gap,
            ReplayGap {
                requested: 0,
                earliest: 6
            }
        );
        // A snapshot taken above the gap still replays the tail exactly.
        st.snapshot(SimTime::from_secs(9), 9);
        st.append_delta(SimTime::from_secs(10), 1);
        st.append_delta(SimTime::from_secs(11), 1);
        assert_eq!(st.replay(1, |s, d| *s += d.delta).unwrap(), 11);
    }

    #[test]
    fn trace_log_roundtrips_and_refuses_partial_full_traces() {
        let mut st: RunStore<(), ()> = RunStore::new(StoreConfig::unbounded(3));
        for i in 0..7 {
            st.append_trace(rec(i));
        }
        let records = st.trace_records().unwrap();
        assert_eq!(records.len(), 7);
        assert_eq!(st.trace_json_lines().unwrap(), to_json_lines(&records));

        let mut tiny: RunStore<(), ()> = RunStore::new(StoreConfig::bounded(2, 1));
        for i in 0..5 {
            tiny.append_trace(rec(i));
        }
        assert!(tiny.stats().trace_evicted > 0);
        assert!(
            tiny.trace_records().is_err(),
            "partial must not pass as full"
        );
        assert!(tiny.trace_stored().count() > 0, "partial is still readable");
    }

    #[test]
    fn store_sink_feeds_the_shared_store() {
        use simcore::Tracer;
        let handle = shared::<(), ()>(RunStore::new(StoreConfig::default()));
        let mut t = Tracer::with_sink(Box::new(StoreSink::new(handle.clone())));
        for i in 0..4u32 {
            t.emit(SimTime::from_millis(i as u64), || {
                TraceEvent::RecoveryPhase { phase: i }
            });
        }
        assert_eq!(t.take_records(), None, "the store owns the records");
        let st = handle.lock().unwrap();
        assert_eq!(st.stats().trace_appended, 4);
        assert_eq!(st.trace_records().unwrap().len(), 4);
        let mut reg = MetricsRegistry::new();
        st.publish_metrics(&mut reg);
        assert_eq!(reg.counter("runstore.trace_appended"), 4);
        assert_eq!(reg.counter("runstore.trace_evicted"), 0);
    }

    #[test]
    fn stamped_deltas_and_snapshots_export_as_json_lines() {
        let mut st: RunStore<i64, i64> = RunStore::new(StoreConfig::default());
        st.append_delta(SimTime::from_secs(3), 42);
        st.snapshot(SimTime::from_secs(3), 42);
        let d = st.deltas_json_lines();
        assert_eq!(d.lines().count(), 1);
        assert!(d.contains("\"seq\":0") && d.contains("42"), "{d}");
        let s = st.snapshots_json_lines();
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("\"delta_seq\":1"), "{s}");
    }
}
