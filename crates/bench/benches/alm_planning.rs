//! Criterion bench for §5.2's runtime claim: "this algorithm can generate
//! a solution for hundreds of nodes in less than one second."

use alm::{adjust, amcast, critical, HelperPool, Problem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::{HostId, Network, NetworkConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

fn members(net: &Network, size: usize, seed: u64) -> Vec<HostId> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut all: Vec<u32> = (0..net.num_hosts() as u32).collect();
    all.shuffle(&mut rng);
    all[..size].iter().copied().map(HostId).collect()
}

fn bench_planning(c: &mut Criterion) {
    let net = Network::generate(&NetworkConfig::default(), 7);
    let dbound = |h: HostId| net.hosts.degree_bound(h);

    let mut g = c.benchmark_group("amcast");
    g.sample_size(20);
    for size in [50usize, 100, 200, 400] {
        let m = members(&net, size, size as u64);
        let p = Problem::new(m[0], m, &net.latency, dbound);
        g.bench_with_input(BenchmarkId::from_parameter(size), &p, |b, p| {
            b.iter(|| black_box(amcast(p).max_height()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("critical");
    g.sample_size(10);
    for size in [50usize, 100, 200] {
        let m = members(&net, size, size as u64);
        let p = Problem::new(m[0], m, &net.latency, dbound);
        let pool = HelperPool::new(net.hosts.ids().collect());
        g.bench_with_input(BenchmarkId::from_parameter(size), &p, |b, p| {
            b.iter(|| black_box(critical(p, &pool).max_height()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("adjust");
    g.sample_size(20);
    for size in [50usize, 100, 200] {
        let m = members(&net, size, size as u64);
        let p = Problem::new(m[0], m, &net.latency, dbound);
        let t = amcast(&p);
        g.bench_with_input(BenchmarkId::from_parameter(size), &p, |b, p| {
            b.iter(|| {
                let mut t2 = t.clone();
                adjust(p, &mut t2);
                black_box(t2.max_height())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
