//! Criterion bench: the cost of one node's coordinate update — the
//! Nelder–Mead simplex run every node performs per refinement round. This
//! is the per-heartbeat CPU budget of the §4.1 protocol.

use coords::simplex::{minimize, SimplexOptions};
use coords::space::Coord;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("coord_update");
    for leafset in [8usize, 16, 32] {
        // A synthetic but realistic instance: neighbors scattered in a
        // 5-D ball, measured distances with mild inconsistency.
        let mut rng = StdRng::seed_from_u64(7);
        let neighbors: Vec<Coord> = (0..leafset)
            .map(|_| {
                let v: Vec<f64> = (0..5).map(|_| 200.0 * rng.random::<f64>()).collect();
                Coord::from_slice(&v)
            })
            .collect();
        let me = Coord::from_slice(&[90.0, 110.0, 95.0, 105.0, 100.0]);
        let measured: Vec<f64> = neighbors
            .iter()
            .map(|nb| me.distance(nb) * (0.95 + 0.1 * rng.random::<f64>()))
            .collect();
        let opts = SimplexOptions {
            initial_step: 30.0,
            tolerance: 0.1,
            max_evals: 400,
        };
        g.bench_with_input(BenchmarkId::from_parameter(leafset), &leafset, |b, _| {
            b.iter(|| {
                let r = minimize(
                    |p| {
                        let c = Coord::from_slice(p);
                        neighbors
                            .iter()
                            .zip(&measured)
                            .map(|(nb, &m)| (c.distance(nb) - m).abs())
                            .sum()
                    },
                    me.as_slice(),
                    opts,
                );
                black_box(r.value)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simplex);
criterion_main!(benches);
