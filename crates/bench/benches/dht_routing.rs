//! Criterion bench: O(N) ring walk vs O(log N) finger routing (§3.1's
//! lookup-performance contrast), plus finger-table construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dht::routing::{route_fingers, route_ring_walk, FingerTables};
use dht::{NodeId, Ring};
use netsim::HostId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    for n in [256usize, 1024, 4096] {
        let ring = Ring::with_random_ids((0..n as u32).map(HostId), 3);
        let fingers = FingerTables::build(&ring);
        let mut rng = StdRng::seed_from_u64(9);
        let keys: Vec<(usize, NodeId)> = (0..64)
            .map(|_| (rng.random_range(0..n), NodeId(rng.random())))
            .collect();

        let mut g = c.benchmark_group(format!("routing_n{n}"));
        g.bench_with_input(BenchmarkId::new("ring_walk", n), &keys, |b, keys| {
            b.iter(|| {
                let mut hops = 0;
                for &(from, key) in keys {
                    hops += route_ring_walk(&ring, from, key).hops;
                }
                black_box(hops)
            })
        });
        g.bench_with_input(BenchmarkId::new("fingers", n), &keys, |b, keys| {
            b.iter(|| {
                let mut hops = 0;
                for &(from, key) in keys {
                    hops += route_fingers(&ring, &fingers, from, key).hops;
                }
                black_box(hops)
            })
        });
        g.finish();
    }

    let mut g = c.benchmark_group("finger_table_build");
    g.sample_size(20);
    for n in [1024usize, 4096] {
        let ring = Ring::with_random_ids((0..n as u32).map(HostId), 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &ring, |b, ring| {
            b.iter(|| black_box(FingerTables::build(ring).of(0).len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
