//! Criterion bench: SOMO tree construction and one full synchronized
//! gather round over rings of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dht::Ring;
use netsim::HostId;
use simcore::SimTime;
use somo::flow::{FlowMode, FreshnessReport, GatherSim};
use somo::SomoTree;
use std::hint::black_box;

fn bench_somo(c: &mut Criterion) {
    let mut g = c.benchmark_group("somo_tree_build");
    for n in [256usize, 1024, 4096] {
        let ring = Ring::with_random_ids((0..n as u32).map(HostId), 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &ring, |b, ring| {
            b.iter(|| black_box(SomoTree::build(ring, 8).len()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("somo_sync_gather_round");
    g.sample_size(20);
    for n in [256usize, 1024] {
        let ring = Ring::with_random_ids((0..n as u32).map(HostId), 5);
        let tree = SomoTree::build(&ring, 8);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut sim = GatherSim::new(
                    &tree,
                    &ring,
                    FlowMode::Synchronized,
                    SimTime::from_secs(5),
                    |_m, now| FreshnessReport::of_member(now),
                    |a, b| {
                        if a == b {
                            SimTime::ZERO
                        } else {
                            SimTime::from_millis(200)
                        }
                    },
                );
                sim.run_until(SimTime::from_secs(6));
                black_box(sim.views().len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_somo);
criterion_main!(benches);
