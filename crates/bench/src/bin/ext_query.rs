//! Extension experiment: hierarchical top-k queries vs full-snapshot scans.
//!
//! The snapshot discipline (Figure 7) ships a pool-wide resource report up
//! the SOMO tree every period — Θ(N) bytes per round no matter how few
//! hosts are actually idle. The query index instead caches a constant-size
//! aggregate at every interior node and answers top-k requests by
//! descending only the subtrees whose cached maxima can still qualify:
//! O(idle · log_k N) wire cost per answer.
//!
//! Method: for each N, build a ring of N single-member hosts with a
//! synthetic workload that leaves a fixed-size idle set (so the *answer*
//! stays constant while the pool grows — isolating the scaling of the
//! discovery machinery itself). Probe sessions then discover helpers both
//! ways and plan critical-node trees from each candidate list. The bench
//! hard-asserts the two candidate lists are identical — same hosts, same
//! order — so any quality metric (tree height, degree violations) matches
//! by construction, and reports the bytes/messages each discipline paid.
//!
//! Everything is synthetic: no `Network::generate` (its dense latency
//! matrix is quadratic in N and unusable at 8192 hosts); latencies come
//! from the same 2-D sample coordinates the region histograms bucket.
//!
//! Run with: `cargo run --release -p bench --bin ext_query`
//! (set `EXT_QUERY_SMOKE=1` for the N=256 smoke slice CI runs).

use alm::{critical, HelperPool, MulticastTree, Problem};
use bench::{dump_json, mean};
use dht::Ring;
use netsim::{HostId, LatencyModel};
use query::{HostSample, QueryIndex, RegionBounds, Scope};
use rand::Rng;
use serde_json::json;
use simcore::rng::derive_rng2;
use simcore::SimTime;
use somo::SomoTree;

const FANOUT: usize = 8;
const PERIOD: SimTime = SimTime::from_secs(60);
const RANK: usize = 3;
const MIN_FREE: u32 = 4;
const IDLE_HOSTS: usize = 64;
const MEMBER_SIZE: usize = 20;
const PROBES: usize = 16;
const SNAPSHOT_CAP: usize = 512;
/// Wire size of one snapshot report entry: HostId + `[u32; 4]` avail.
const ENTRY_BYTES: u64 = 20;

/// Latency straight from the 2-D coordinates carried in the samples.
struct CoordLatency(Vec<[f64; 2]>);

impl LatencyModel for CoordLatency {
    fn latency_ms(&self, a: HostId, b: HostId) -> f64 {
        let (p, q) = (self.0[a.0 as usize], self.0[b.0 as usize]);
        let (dx, dy) = (p[0] - q[0], p[1] - q[1]);
        (dx * dx + dy * dy).sqrt().max(1.0)
    }
    fn num_hosts(&self) -> usize {
        self.0.len()
    }
}

/// The synthetic pool state at one N: every host has a sample; a strided
/// subset of `IDLE_HOSTS` hosts clears the helper bar at the weakest rank,
/// the rest sit below it (a busy pool with scattered idle capacity).
fn synth_samples(n: usize, seed: u64, now: SimTime) -> Vec<HostSample> {
    let stride = n / IDLE_HOSTS;
    (0..n)
        .map(|h| {
            let mut rng = derive_rng2(seed, 0x5A, h as u64);
            let idle = h % stride == 0;
            let f3 = if idle {
                MIN_FREE + rng.random_range(0..8u32)
            } else {
                rng.random_range(0..MIN_FREE)
            };
            let f2 = f3 + rng.random_range(0..3u32);
            let f1 = f2 + rng.random_range(0..3u32);
            let f0 = f1 + rng.random_range(0..3u32);
            HostSample {
                host: HostId(h as u32),
                free: [f0, f1, f2, f3],
                pos: [
                    rng.random_range(-350.0..350.0),
                    rng.random_range(-350.0..350.0),
                ],
                bw_class: rng.random_range(0..5),
                sampled_at: now,
                capacity: f0 + rng.random_range(0..4u32),
                queued: 0,
                preempted: 0,
            }
        })
        .collect()
}

/// Exact per-round wire cost of the snapshot gather: every logical node
/// ships its merged report (capped at `SNAPSHOT_CAP` entries) to its
/// parent; only inter-host edges cost anything.
fn snapshot_gather_cost(tree: &SomoTree, ring: &Ring) -> (u64, u64) {
    // Members in each node's subtree = canonical leaves beneath it.
    let mut members = vec![0u64; tree.len()];
    for m in 0..ring.len() {
        members[tree.canonical_leaf_of(ring.member(m).id) as usize] += 1;
    }
    // Children precede parents nowhere in particular, so accumulate by
    // walking nodes deepest-level first.
    let mut order: Vec<usize> = (0..tree.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(tree.nodes()[i].level));
    let (mut messages, mut bytes) = (0u64, 0u64);
    for i in order {
        let node = &tree.nodes()[i];
        let Some(p) = node.parent else { continue };
        members[p as usize] += members[i];
        if tree.nodes()[p as usize].host != node.host {
            messages += 1;
            bytes += members[i].min(SNAPSHOT_CAP as u64) * ENTRY_BYTES;
        }
    }
    (messages, bytes)
}

/// The snapshot planner's candidate list: brute-force over all samples,
/// sorted by the shared stable key (free at rank desc, host id asc),
/// truncated to the report cap.
fn snapshot_candidates(samples: &[HostSample], exclude: &[HostId]) -> Vec<HostId> {
    let mut out: Vec<(u32, HostId)> = samples
        .iter()
        .filter(|s| s.free[RANK] >= MIN_FREE && !exclude.contains(&s.host))
        .map(|s| (s.free[RANK], s.host))
        .collect();
    out.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    out.truncate(SNAPSHOT_CAP);
    out.into_iter().map(|(_, h)| h).collect()
}

fn violations(tree: &MulticastTree, dbound: impl Fn(HostId) -> u32) -> usize {
    tree.hosts()
        .iter()
        .filter(|&&h| tree.degree(h) > dbound(h))
        .count()
}

fn main() {
    let seed = 2020u64;
    let smoke = std::env::var("EXT_QUERY_SMOKE").is_ok();
    let sizes: &[usize] = if smoke {
        &[256]
    } else {
        &[256, 512, 1024, 2048, 4096, 8192]
    };

    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "N", "depth", "snap B/round", "maint B/round", "query B/plan", "q msgs", "height"
    );
    let mut rows = Vec::new();
    let mut scaling: Vec<(usize, u64, f64)> = Vec::new();
    for &n in sizes {
        let ring = Ring::with_random_ids((0..n as u32).map(HostId), seed);
        let t0 = SimTime::from_secs(10);
        let samples = synth_samples(n, seed, t0);
        let coords = CoordLatency(samples.iter().map(|s| s.pos).collect());
        let mut index = QueryIndex::build(&ring, FANOUT, PERIOD, RegionBounds::default(), |m| {
            Some(samples[ring.member(m).host.0 as usize])
        });
        let maintenance = index.maintenance_traffic();
        let tree = SomoTree::build(&ring, FANOUT);
        let (snap_msgs, snap_bytes) = snapshot_gather_cost(&tree, &ring);

        // Probe sessions: members drawn (deterministically) from the busy
        // majority; each discovers helpers both ways and plans a tree.
        let now = t0 + SimTime::from_secs(30);
        let stride = n / IDLE_HOSTS;
        let busy: Vec<HostId> = (0..n)
            .filter(|h| h % stride != 0)
            .map(|h| HostId(h as u32))
            .collect();
        let mut heights = Vec::new();
        let free3: Vec<u32> = samples.iter().map(|s| s.free[RANK]).collect();
        index.reset_query_traffic();
        let mut probe_stats = Vec::new();
        for probe in 0..PROBES {
            let mut rng = derive_rng2(seed, 0xB0B, probe as u64);
            let mut members: Vec<HostId> = Vec::with_capacity(MEMBER_SIZE);
            while members.len() < MEMBER_SIZE {
                let h = busy[rng.random_range(0..busy.len())];
                if !members.contains(&h) {
                    members.push(h);
                }
            }
            let root = members[0];

            let ans = index.top_k(SNAPSHOT_CAP, RANK, MIN_FREE, &members, Scope::Global);
            let from_query: Vec<HostId> = ans.hosts.iter().map(|s| s.host).collect();
            let from_snapshot = snapshot_candidates(&samples, &members);
            assert_eq!(
                from_query, from_snapshot,
                "query candidates diverged from the snapshot scan at N={n}"
            );
            assert!(
                ans.freshness.staleness(now) <= ans.freshness.bound,
                "observed staleness exceeded the promised bound at N={n}"
            );
            probe_stats.push(ans.stats);

            // Identical candidate lists MUST produce identical plans; run
            // both anyway and hard-assert the quality metrics agree.
            let member_set: std::collections::HashSet<HostId> = members.iter().copied().collect();
            let dbound = |h: HostId| {
                if member_set.contains(&h) {
                    6
                } else {
                    free3[h.0 as usize]
                }
            };
            let problem = Problem::new(root, members.clone(), &coords, dbound);
            let mut pool_q = HelperPool::new(from_query);
            pool_q.min_degree = MIN_FREE;
            pool_q.radius_ms = 300.0;
            let mut pool_s = pool_q.clone();
            pool_s.set_candidates(from_snapshot);
            let tree_q = critical(&problem, &pool_q);
            let tree_s = critical(&problem, &pool_s);
            assert_eq!(
                tree_q.max_height(),
                tree_s.max_height(),
                "tree heights diverged at N={n}"
            );
            let (vq, vs) = (violations(&tree_q, dbound), violations(&tree_s, dbound));
            assert_eq!(vq, vs, "degree violations diverged at N={n}");
            assert_eq!(vq, 0, "planner violated a degree bound at N={n}");
            heights.push(tree_q.max_height());
        }
        let query = index.query_traffic();
        let query_bytes_per_plan = query.bytes as f64 / PROBES as f64;
        let query_msgs_per_plan = query.messages as f64 / PROBES as f64;
        let pruned: u64 = probe_stats.iter().map(|s| s.subtrees_pruned).sum();
        let visited: u64 = probe_stats.iter().map(|s| s.nodes_visited).sum();

        println!(
            "{:>6} {:>6} {:>14} {:>14} {:>14.0} {:>10.1} {:>10.1}",
            n,
            tree.depth(),
            snap_bytes,
            maintenance.bytes,
            query_bytes_per_plan,
            query_msgs_per_plan,
            mean(&heights),
        );
        rows.push(json!({
            "n": n,
            "fanout": FANOUT,
            "tree_depth": tree.depth(),
            "idle_hosts": IDLE_HOSTS,
            "snapshot_messages_per_round": snap_msgs,
            "snapshot_bytes_per_round": snap_bytes,
            "maintenance_bytes_per_round": maintenance.bytes,
            "maintenance_messages_per_round": maintenance.messages,
            "query_bytes_per_plan": query_bytes_per_plan,
            "query_messages_per_plan": query_msgs_per_plan,
            "nodes_visited_total": visited,
            "subtrees_pruned_total": pruned,
            "freshness_bound_us": somo::flow::unsync_staleness_bound(n, FANOUT, PERIOD).as_micros(),
            "mean_tree_height_ms": mean(&heights),
            "degree_violations": 0,
            "candidate_sets_identical": true,
        }));
        scaling.push((n, snap_bytes, query_bytes_per_plan));
    }

    // The headline claim: snapshot rounds grow linearly with N while query
    // cost tracks the (fixed) idle set times the tree depth.
    if scaling.len() >= 2 {
        let first = scaling[0];
        let last = scaling[scaling.len() - 1];
        let n_ratio = last.0 as f64 / first.0 as f64;
        let snap_ratio = last.1 as f64 / first.1 as f64;
        let query_ratio = last.2 / first.2;
        println!(
            "\nN grew {n_ratio:.0}x: snapshot bytes {snap_ratio:.1}x, query bytes {query_ratio:.1}x"
        );
        assert!(
            query_ratio < snap_ratio / 2.0,
            "query cost failed to scale sub-linearly vs the snapshot gather"
        );
    }
    println!(
        "(expect: query bytes per plan stay near-flat — the idle set is fixed —\n while snapshot bytes per round grow with N; identical candidate lists ⇒ identical trees)"
    );
    dump_json(
        "ext_query",
        &json!({ "probes": PROBES, "member_size": MEMBER_SIZE, "rank": RANK, "min_free": MIN_FREE, "rows": rows }),
    );
}
