//! Perf-regression harness for the planner hot paths.
//!
//! Sweeps session size N (hosts = N, members = N/2) over the two greedy
//! engines — the incremental best-parent engine behind [`alm::amcast`] /
//! [`alm::critical`] and the O(N³)-ish reference loop they replaced
//! ([`alm::amcast_reference`] / [`alm::critical_reference`]) — plus the
//! adjustment pass, the coordinate-kernel fast path and the market's
//! crash-replan A/B. For every cell it records wall-clock, oracle
//! `latency_ms` evaluations (via [`netsim::latency::Counted`]) and
//! candidate-parent relaxations (via [`alm::metrics`]), and asserts the
//! two engines return **bit-identical** trees wherever both run.
//!
//! On top of the dense-matrix cells, every N also runs a **tiered-oracle
//! quality cell** (`crates/oracle`): the same sessions planned through
//! the bounded-memory tiered oracle (GNP coordinates fit from landmark
//! probes only — no dense matrix involved in the tiered path), with the
//! resulting trees re-evaluated under the exact matrix. Latency stretch
//! and degree cost vs the exact-matrix trees are asserted within
//! [`STRETCH_BOUND`] / [`DEGREE_COST_BOUND`], per-tier hit counts and
//! resident bytes land in the JSON (`oracle_mem` per row, memory-gated
//! against the baseline), and an `Exact`-source gate pins
//! `PoolOracle::Exact` plans bit-identical to the `CachedLatency` plans.
//! Non-smoke runs finish with a **matrix-free N=131072 amcast cell**
//! built from `RouterNet`/`HostSet` directly — `Network::generate` (and
//! its O(N²) `LatencyMatrix`) is never called — asserting the tiered
//! oracle stays under 5% of the dense-matrix footprint.
//!
//! Results land in `results/BENCH_planner.json`. When a committed
//! `results/BENCH_planner_baseline.json` exists, each cell's wall-clock is
//! compared against it; a cell slower than `2×` baseline is a regression,
//! as is a tiered-oracle footprint above `1.5×` baseline.
//! Regressions fail the run only when `PERF_PLANNER_ENFORCE` is set (CI),
//! so a local run on a slower machine just prints the table.
//!
//! Env knobs:
//! * `PERF_PLANNER_SMOKE` — cap the sweep at N ≤ 1024 (the CI slice);
//! * `PERF_PLANNER_ENFORCE` — fail on >2× wall-clock regressions vs the
//!   committed baseline.
//!
//! Flags:
//! * `--trace-out` — attach a ring tracer to the incremental market A/B
//!   run and dump its JSON-lines trace to
//!   `results/BENCH_planner_trace.jsonl` (observation only: the asserted
//!   results are unchanged).
//!
//! Run with: `cargo run --release -p bench --bin perf_planner`

use std::time::Instant;

use alm::metrics::{relaxations, reset_relaxations};
use alm::{
    adjust, amcast, amcast_reference, critical, critical_reference, HelperPool, MulticastTree,
    Problem,
};
use bench::{dump_json, dump_jsonl, results_dir, trace_out_requested};
use coords::{Coord, CoordStore, DenseCoords, GnpConfig, GnpSolver};
use netsim::hosts::HostSet;
use netsim::latency::{latency_calls, reset_latency_calls, Counted};
use netsim::topology::TransitStubConfig;
use netsim::{CachedLatency, HostId, Network, NetworkConfig, RouterNet};
use oracle::{LandmarkSketch, PoolOracle, TieredConfig, TieredOracle};
use pool::task_manager::oracle_height;
use pool::{MarketConfig, MarketSim, PoolConfig, ResourcePool};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde_json::json;
use simcore::{FaultPlan, SimTime};

const SIZES: [usize; 7] = [256, 512, 1024, 2048, 4096, 8192, 16384];
const SMOKE_CAP: usize = 1024;
/// Largest N the reference engines are run at — beyond this only the
/// incremental engine is timed (the reference would dominate the harness).
const REF_CAP: usize = 4096;
const SEED: u64 = 2024;

/// The matrix-free scale cell: the dense matrix would need `N² × 4` =
/// 68.7 GB here, so the cell is built from `RouterNet` + `HostSet`
/// directly and `Network::generate` is never called.
const SCALE_N: usize = 131_072;
/// Member count of the scale-cell session (matches the N=16384 sweep
/// row's session size; the wall is memory, not planner CPU).
const SCALE_MEMBERS: usize = 8192;

/// Asserted ceiling on per-tree latency stretch of tiered-oracle trees:
/// `oracle_height(tiered tree, exact matrix) / exact tree height`.
/// Measured across the full sweep (N=256..16384, both engines, seed
/// 2024) stretch grows from 0.86–1.24 while the 128-row hot tier still
/// covers the members' router spread to a worst of 2.37 at N=16384,
/// where estimates dominate; 2.60 leaves ~10% headroom so the gate
/// catches real estimator damage without flaking on seed drift.
const STRETCH_BOUND: f64 = 2.60;
/// Asserted ceiling on the *mean* latency stretch across every tiered
/// quality cell of the sweep (the acceptance metric). Measured: 1.506.
const MEAN_STRETCH_BOUND: f64 = 1.70;
/// Asserted ceiling on the degree-cost ratio of tiered trees. Both
/// trees span the same member set (helpers only differ), so total
/// degree — `2·(edges)` — barely moves; measured ratios are
/// 0.997–1.013 across the full sweep.
const DEGREE_COST_BOUND: f64 = 1.10;

/// Total degree units a tree books — the cost side of every
/// quality-vs-cost tradeoff in the paper's evaluation.
fn degree_cost(t: &MulticastTree) -> u64 {
    t.hosts().iter().map(|&h| t.degree(h) as u64).sum()
}

/// One timed engine invocation: wall-clock plus both hot-path counters.
struct Cell {
    wall_ms: f64,
    latency_calls: u64,
    relaxations: u64,
    tree: MulticastTree,
}

fn timed(run: impl FnOnce() -> MulticastTree) -> Cell {
    reset_latency_calls();
    reset_relaxations();
    let t0 = Instant::now();
    let tree = run();
    Cell {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        latency_calls: latency_calls(),
        relaxations: relaxations(),
        tree,
    }
}

fn cell_json(c: &Cell) -> serde_json::Value {
    json!({
        "wall_ms": c.wall_ms,
        "latency_calls": c.latency_calls,
        "relaxations": c.relaxations,
        "height_ms": c.tree.max_height(),
    })
}

/// Bit-level tree equality: same host order, same parents, same height
/// bits — the equivalence contract of the incremental engine.
fn assert_identical(label: &str, inc: &MulticastTree, reference: &MulticastTree) {
    assert_eq!(
        inc.hosts(),
        reference.hosts(),
        "{label}: host order differs"
    );
    for &h in inc.hosts() {
        assert_eq!(
            inc.parent_of(h),
            reference.parent_of(h),
            "{label}: parent of {h:?} differs"
        );
        assert_eq!(
            inc.height_of(h).to_bits(),
            reference.height_of(h).to_bits(),
            "{label}: height of {h:?} differs"
        );
    }
}

/// Everything the parallel market legs must reproduce bit-for-bit from
/// the sequential leg: the aggregate outcome, the exact planner-work
/// counters, and the final degree books of every host (the committed
/// trees themselves, seen through their reservations).
#[derive(PartialEq)]
struct ParMarketDigest {
    plans: u64,
    planner_work: (u64, u64),
    improvement: Vec<(u64, u64)>,
    leaked: u32,
    tables: Vec<Vec<pool::degree_table::Allocation>>,
}

impl ParMarketDigest {
    fn of(out: &pool::MarketOutcome, p: &ResourcePool) -> ParMarketDigest {
        ParMarketDigest {
            plans: out.plans,
            planner_work: (out.planner_relaxations, out.planner_latency_calls),
            improvement: (1..=3)
                .map(|c| {
                    let s = &out.class(c).improvement;
                    (s.count(), s.mean().to_bits())
                })
                .collect(),
            leaked: out.leaked_degrees,
            tables: p
                .net
                .hosts
                .ids()
                .map(|h| p.table(h).allocations().to_vec())
                .collect(),
        }
    }
}

fn main() {
    let smoke = std::env::var("PERF_PLANNER_SMOKE").is_ok();
    let enforce = std::env::var("PERF_PLANNER_ENFORCE").is_ok();
    let trace_out = trace_out_requested();
    let sizes: Vec<usize> = SIZES
        .iter()
        .copied()
        .filter(|&n| !smoke || n <= SMOKE_CAP)
        .collect();

    println!(
        "planner perf sweep (smoke={smoke}): N = {sizes:?}, reference engines up to N = {REF_CAP}\n\
         {:>6} {:>9} | {:>10} {:>10} {:>8} | {:>12} {:>12} | {:>12} {:>12}",
        "N", "engine", "inc ms", "ref ms", "speedup", "inc relax", "ref relax", "inc lat", "ref lat"
    );

    let mut rows = Vec::new();
    let mut speedup_4096_critical = None;
    let mut stretches: Vec<f64> = Vec::new();
    for &n in &sizes {
        // A transit–stub underlay scaled to N end hosts. The router core
        // stays at the paper's 600 routers; only host attachment grows, so
        // the restricted-Dijkstra matrix build stays cheap.
        let net = Network::generate(
            &NetworkConfig {
                num_hosts: n,
                ..NetworkConfig::default()
            },
            SEED,
        );
        let oracle = Counted(CachedLatency::from_matrix(&net.latency));

        let mut rng = rand::rngs::StdRng::seed_from_u64(SEED ^ n as u64);
        let mut all: Vec<u32> = (0..n as u32).collect();
        all.shuffle(&mut rng);
        let members: Vec<HostId> = all[..n / 2].iter().copied().map(HostId).collect();
        let root = members[0];
        let candidates: Vec<HostId> = all[n / 2..].iter().copied().map(HostId).collect();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(root, members.clone(), &oracle, dbound);
        let mut hp = HelperPool::new(candidates.clone());
        hp.min_degree = 4;
        hp.radius_ms = 100.0;

        let mut engine_cells = Vec::new();
        let mut exact_trees: Vec<MulticastTree> = Vec::new();
        for engine in ["amcast", "critical"] {
            let inc = timed(|| match engine {
                "amcast" => amcast(&p),
                _ => critical(&p, &hp),
            });
            let reference = (n <= REF_CAP).then(|| {
                let c = timed(|| match engine {
                    "amcast" => amcast_reference(&p),
                    _ => critical_reference(&p, &hp),
                });
                assert_identical(&format!("N={n} {engine}"), &inc.tree, &c.tree);
                // Never more work than the reference; strictly fewer is
                // asserted (under richer degree bounds) by the alm crate's
                // equivalence tests — with the paper's degree distribution
                // most nodes are leaves, so at small N the prunes can have
                // nothing to skip and the counts legitimately tie.
                assert!(
                    inc.relaxations <= c.relaxations,
                    "N={n} {engine}: incremental did {} relaxations, reference {}",
                    inc.relaxations,
                    c.relaxations
                );
                c
            });
            let speedup = reference
                .as_ref()
                .map(|r| r.wall_ms / inc.wall_ms.max(1e-9));
            if n == 4096 && engine == "critical" {
                speedup_4096_critical = speedup;
            }
            println!(
                "{:>6} {:>9} | {:>10.2} {:>10} {:>8} | {:>12} {:>12} | {:>12} {:>12}",
                n,
                engine,
                inc.wall_ms,
                reference
                    .as_ref()
                    .map_or("-".into(), |r| format!("{:.2}", r.wall_ms)),
                speedup.map_or("-".into(), |s| format!("{s:.1}x")),
                inc.relaxations,
                reference
                    .as_ref()
                    .map_or("-".into(), |r| r.relaxations.to_string()),
                inc.latency_calls,
                reference
                    .as_ref()
                    .map_or("-".into(), |r| r.latency_calls.to_string()),
            );
            engine_cells.push(json!({
                "incremental": cell_json(&inc),
                "reference": reference.as_ref().map(cell_json),
                "speedup": speedup,
                "identical": reference.is_some(),
            }));
            exact_trees.push(inc.tree);
        }

        // `LatencySource::Exact` gate: a plan through the PoolOracle
        // enum's Exact arm must be bit-identical to the CachedLatency
        // plan — the enum dispatch may not perturb anything.
        if n <= REF_CAP {
            let po = PoolOracle::Exact(CachedLatency::from_matrix(&net.latency));
            let pe = Problem::new(root, members.clone(), &po, dbound);
            assert_identical(
                &format!("N={n} exact-source amcast"),
                &amcast(&pe),
                &exact_trees[0],
            );
            assert_identical(
                &format!("N={n} exact-source critical"),
                &critical(&pe, &hp),
                &exact_trees[1],
            );
        }

        // The adjustment pass over the incremental amcast tree.
        let mut t = amcast(&p);
        reset_latency_calls();
        let t0 = Instant::now();
        adjust(&p, &mut t);
        let adjust_cell = json!({
            "wall_ms": t0.elapsed().as_secs_f64() * 1e3,
            "latency_calls": latency_calls(),
        });

        // The coordinate kernel: the same amcast plan driven by the
        // AoS CoordStore vs its SoA snapshot (DenseCoords). Not
        // bit-compared — DenseCoords rounds to f32 by design.
        let mut coords_cell = serde_json::Value::Null;
        if n <= REF_CAP {
            let dim = coords::space::DEFAULT_DIM;
            let store = CoordStore::from_coords(
                (0..n)
                    .map(|i| {
                        let mut r = rand::rngs::StdRng::seed_from_u64(SEED ^ (i as u64) << 17);
                        Coord::from_slice(
                            &(0..dim)
                                .map(|_| r.random_range(-150.0..150.0))
                                .collect::<Vec<f64>>(),
                        )
                    })
                    .collect(),
            );
            let dense = DenseCoords::from_store(&store);
            let pc = Problem::new(root, members.clone(), &store, dbound);
            let t0 = Instant::now();
            let th_aos = amcast(&pc).max_height();
            let aos_ms = t0.elapsed().as_secs_f64() * 1e3;
            let pd = Problem::new(root, members.clone(), &dense, dbound);
            let t0 = Instant::now();
            let th_soa = amcast(&pd).max_height();
            let soa_ms = t0.elapsed().as_secs_f64() * 1e3;
            coords_cell = json!({
                "aos_ms": aos_ms,
                "soa_ms": soa_ms,
                "aos_height_ms": th_aos,
                "soa_height_ms": th_soa,
            });
        }
        // ---- Tiered-oracle quality cell: the same sessions planned
        // through the bounded-memory tiered oracle, trees re-evaluated
        // under the exact matrix. The tiered path never touches
        // `net.latency`: GNP coordinates are fit from landmark probes.
        let tcfg = TieredConfig::default();
        let t0 = Instant::now();
        let landmarks = LandmarkSketch::default_landmarks(n, tcfg.landmarks, SEED ^ 0x7157);
        let sketch = LandmarkSketch::build(&net.routers, &net.hosts, &landmarks);
        let sketch_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let gnp = GnpSolver::new(GnpConfig::default()).solve_with_landmarks(
            &sketch.probes(),
            &landmarks,
            SEED,
        );
        let gnp_ms = t0.elapsed().as_secs_f64() * 1e3;
        let tiered = TieredOracle::new(&net.routers, &net.hosts, gnp, sketch, &tcfg);
        tiered.promote(&members);
        tiered.promote(&candidates);
        let tor = Counted(tiered.share());
        let tp = Problem::new(root, members.clone(), &tor, dbound);
        let mut tiered_engines = Vec::new();
        for (ei, engine) in ["amcast", "critical"].iter().enumerate() {
            let cell = timed(|| match *engine {
                "amcast" => amcast(&tp),
                _ => critical(&tp, &hp),
            });
            // Quality is judged under the exact matrix, against the
            // exact-matrix tree of the same engine.
            let exact_height = oracle_height(&cell.tree, &net.latency);
            let stretch = exact_height / exact_trees[ei].max_height().max(1e-9);
            let cost = degree_cost(&cell.tree);
            let cost_ratio = cost as f64 / degree_cost(&exact_trees[ei]).max(1) as f64;
            assert!(
                stretch <= STRETCH_BOUND,
                "N={n} {engine}: tiered latency stretch {stretch:.3} exceeds {STRETCH_BOUND}"
            );
            assert!(
                cost_ratio <= DEGREE_COST_BOUND,
                "N={n} {engine}: tiered degree-cost ratio {cost_ratio:.3} exceeds {DEGREE_COST_BOUND}"
            );
            stretches.push(stretch);
            println!(
                "{:>6} {:>9} | tiered {:>8.2} ms, stretch {:.3}, degree-cost {:.3}",
                n,
                format!("{engine}~"),
                cell.wall_ms,
                stretch,
                cost_ratio
            );
            tiered_engines.push(json!({
                "wall_ms": cell.wall_ms,
                "latency_calls": cell.latency_calls,
                "height_ms": cell.tree.max_height(),
                "exact_height_ms": exact_height,
                "stretch": stretch,
                "degree_cost": cost,
                "degree_cost_ratio": cost_ratio,
            }));
        }
        let tstats = tiered.stats();
        let tiered_bytes = tiered.resident_bytes();
        let dense_bytes = n as u64 * n as u64 * 4;

        rows.push(json!({
            "n": n,
            "members": n / 2,
            "amcast": engine_cells[0],
            "critical": engine_cells[1],
            "adjust": adjust_cell,
            "coords_kernel": coords_cell,
            "tiered": {
                "amcast": tiered_engines[0],
                "critical": tiered_engines[1],
                "sketch_ms": sketch_ms,
                "gnp_ms": gnp_ms,
                "stats": serde_json::to_value(&tstats),
                "hot_hit_rate": tstats.hot as f64 / tstats.total().max(1) as f64,
            },
            "oracle_mem": {
                "dense_bytes": dense_bytes,
                "tiered_bytes": tiered_bytes,
                "ratio": tiered_bytes as f64 / dense_bytes as f64,
            },
        }));
    }

    let mean_stretch = stretches.iter().sum::<f64>() / stretches.len().max(1) as f64;
    let worst_stretch = stretches.iter().copied().fold(0.0_f64, f64::max);
    println!(
        "\ntiered quality: mean stretch {mean_stretch:.3}, worst {worst_stretch:.3} \
         over {} cells",
        stretches.len()
    );
    assert!(
        mean_stretch <= MEAN_STRETCH_BOUND,
        "acceptance: mean tiered latency stretch {mean_stretch:.3} exceeds {MEAN_STRETCH_BOUND}"
    );

    if let Some(s) = speedup_4096_critical {
        println!("\ncritical-node planning speedup at N=4096: {s:.1}x");
        assert!(
            s >= 5.0,
            "acceptance: critical planning at N=4096 must be ≥5x over the reference (got {s:.2}x)"
        );
    }

    // Market crash-replan A/B: the fig-10 pool under a 10% crash plan,
    // timed end-to-end in both replan modes.
    println!("\nmarket crash-replan A/B (1200-host pool, 10% crashes):");
    let pristine = ResourcePool::build(&PoolConfig::default(), 2010);
    let faults = crash_plan(0.10, pristine.net.num_hosts(), 2010);
    let mut market_cells = Vec::new();
    for full in [false, true] {
        let mode = if full { "full_replan" } else { "incremental" };
        let cfg = MarketConfig {
            faults: faults.clone(),
            full_crash_replan: full,
            ..MarketConfig::default()
        };
        let mut sim = MarketSim::new(pristine.clone(), cfg, 2010 + 20);
        if trace_out && !full {
            sim.set_tracer(simcore::Tracer::ring(1 << 16));
        }
        let t0 = Instant::now();
        let out = sim.run();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        if trace_out && !full {
            dump_jsonl(
                "BENCH_planner_trace",
                &simcore::trace::to_json_lines(&out.trace),
            );
        }
        assert_eq!(out.leaked_degrees, 0, "{mode}: leaked degrees");
        assert!(out.audit.is_clean(), "{mode}: {:?}", out.audit.violations);
        println!(
            "  {mode:>12}: {wall_ms:>8.1} ms, {} plans, {} repairs, {} re-syncs",
            out.plans, out.crash_repairs, out.incremental_replans
        );
        market_cells.push(json!({
            "wall_ms": wall_ms,
            "plans": out.plans,
            "crash_repairs": out.crash_repairs,
            "incremental_replans": out.incremental_replans,
            "resync_fallbacks": out.resync_fallbacks,
        }));
    }

    // ---- Parallel market planning: the same Priority-mode workload run
    // at plan_threads 1 / 4 / 8. Thread count 1 is the sequential engine;
    // every other leg must reproduce its outcome, planner-work counters
    // and final degree tables exactly — the speedup may only change when
    // the answer does not. The arrival gap is 1 µs so every first start
    // lands in one batch and replan waves stay phase-locked: the
    // batch-heavy shape the optimization targets.
    println!("\nparallel market planning (speculative plan, deterministic commit):");
    let par_sizes: &[usize] = if smoke { &[1024] } else { &[4096, 16384] };
    let par_threads: &[usize] = if smoke { &[1, 8] } else { &[1, 4, 8] };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut par_rows = Vec::new();
    let mut par_speedup_4096_8t = None;
    for &n in par_sizes {
        let (sessions, member_size) = match n {
            1024 => (12, 32),
            4096 => (32, 64),
            _ => (48, 64),
        };
        let pristine = ResourcePool::build(
            &PoolConfig {
                net: NetworkConfig {
                    num_hosts: n,
                    ..NetworkConfig::default()
                },
                ..PoolConfig::default()
            },
            SEED ^ n as u64,
        );
        let mut legs = Vec::new();
        let mut digest0: Option<ParMarketDigest> = None;
        let mut wall0 = 0.0f64;
        for &threads in par_threads {
            let cfg = MarketConfig {
                sessions,
                member_size,
                mean_gap: SimTime::from_micros(1),
                horizon: SimTime::from_secs(600),
                warmup: SimTime::from_secs(120),
                view_refresh: Some(SimTime::from_secs(60)),
                plan_threads: threads,
                ..MarketConfig::default()
            };
            let sim = MarketSim::new(pristine.clone(), cfg, SEED ^ 0xA12);
            let t0 = Instant::now();
            let (out, pool) = sim.run_full();
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let digest = ParMarketDigest::of(&out, &pool);
            let speedup = if threads == 1 {
                wall0 = wall_ms;
                digest0 = Some(digest);
                None
            } else {
                let d0 = digest0.as_ref().expect("threads=1 leg runs first");
                assert!(
                    *d0 == digest,
                    "N={n} plan_threads={threads}: outcome diverged from the sequential engine"
                );
                assert!(
                    out.speculative_commits > 0,
                    "N={n} plan_threads={threads}: parallel leg never speculated"
                );
                let s = wall0 / wall_ms.max(1e-9);
                if n == 4096 && threads == 8 {
                    par_speedup_4096_8t = Some(s);
                }
                Some(s)
            };
            println!(
                "  N={n:>5} threads={threads}: {wall_ms:>8.1} ms{}  ({} plans, {} committed, {} conflicted)",
                speedup.map_or(String::new(), |s| format!(", {s:.2}x")),
                out.plans,
                out.speculative_commits,
                out.speculative_conflicts,
            );
            legs.push(json!({
                "threads": threads,
                "wall_ms": wall_ms,
                "plans": out.plans,
                "speculative_commits": out.speculative_commits,
                "speculative_conflicts": out.speculative_conflicts,
                "speedup": speedup,
                "identical": threads == 1 || speedup.is_some(),
            }));
        }
        par_rows.push(json!({
            "n": n,
            "sessions": sessions,
            "member_size": member_size,
            "legs": legs,
        }));
    }
    // The wall-clock acceptance gate needs real cores: bit-identity is
    // asserted unconditionally above, but a speedup demand on a 1-core
    // container measures the scheduler, not the planner.
    if let Some(s) = par_speedup_4096_8t {
        println!("\nparallel market speedup at N=4096, 8 threads: {s:.2}x ({cores} cores)");
        if enforce && cores >= 8 {
            assert!(
                s >= 2.0,
                "acceptance: parallel market at N=4096 must be ≥2x at 8 threads (got {s:.2}x)"
            );
        }
    }

    // ---- Matrix-free scale cell: N=131072. Built from RouterNet +
    // HostSet directly; `Network::generate` (and with it the O(N²)
    // LatencyMatrix) is never called on this path, so the only latency
    // state that exists is the tiered oracle's own — the reported
    // resident bytes account for *everything* the oracle holds.
    let scale_cell = if smoke {
        serde_json::Value::Null
    } else {
        let routers = RouterNet::generate(
            &TransitStubConfig::default(),
            simcore::rng::derive_seed(SEED, 1),
        );
        let hosts = HostSet::attach(
            &routers,
            SCALE_N,
            (3.0, 8.0),
            simcore::rng::derive_seed(SEED, 2),
        );
        let tcfg = TieredConfig::default();
        let t0 = Instant::now();
        let landmarks = LandmarkSketch::default_landmarks(SCALE_N, tcfg.landmarks, SEED ^ 0x7157);
        let sketch = LandmarkSketch::build(&routers, &hosts, &landmarks);
        let sketch_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let gnp = GnpSolver::new(GnpConfig::default()).solve_with_landmarks(
            &sketch.probes(),
            &landmarks,
            SEED,
        );
        let gnp_ms = t0.elapsed().as_secs_f64() * 1e3;
        let tiered = TieredOracle::new(&routers, &hosts, gnp, sketch, &tcfg);

        let mut rng = rand::rngs::StdRng::seed_from_u64(SEED ^ SCALE_N as u64);
        let mut all: Vec<u32> = (0..SCALE_N as u32).collect();
        all.shuffle(&mut rng);
        let members: Vec<HostId> = all[..SCALE_MEMBERS].iter().copied().map(HostId).collect();
        let root = members[0];
        tiered.promote(&members);
        let dbound = |h: HostId| hosts.degree_bound(h);
        let tor = Counted(tiered.share());
        let p = Problem::new(root, members.clone(), &tor, dbound);
        let cell = timed(|| amcast(&p));

        let tiered_bytes = tiered.resident_bytes() as u64;
        let dense_bytes = SCALE_N as u64 * SCALE_N as u64 * 4;
        let ratio = tiered_bytes as f64 / dense_bytes as f64;
        let stats = tiered.stats();
        println!(
            "\nscale cell: N={SCALE_N}, members={SCALE_MEMBERS} — amcast {:.1} ms \
             (gnp fit {gnp_ms:.0} ms, sketch {sketch_ms:.0} ms)\n  oracle resident \
             {:.1} MB vs dense {:.1} GB ({:.3}% — dense tier never materialized)\n  \
             tier hits: hot {} / sketch {} / base {}, {} rows resident",
            cell.wall_ms,
            tiered_bytes as f64 / 1e6,
            dense_bytes as f64 / 1e9,
            ratio * 100.0,
            stats.hot,
            stats.sketch,
            stats.base,
            tiered.resident_rows(),
        );
        // The acceptance bar: tiered memory under 5% of the dense
        // equivalent (it lands around 0.05%, three orders below the
        // 68.7 GB the matrix would need).
        assert!(
            (tiered_bytes as f64) < 0.05 * dense_bytes as f64,
            "scale cell: oracle resident {tiered_bytes} B is not under 5% of dense {dense_bytes} B"
        );
        json!({
            "n": SCALE_N,
            "members": SCALE_MEMBERS,
            "amcast": cell_json(&cell),
            "gnp_ms": gnp_ms,
            "sketch_ms": sketch_ms,
            "stats": serde_json::to_value(&stats),
            "resident_rows": tiered.resident_rows(),
            "oracle_mem": {
                "dense_bytes": dense_bytes,
                "tiered_bytes": tiered_bytes,
                "ratio": ratio,
            },
        })
    };

    let result = json!({
        "bench": "perf_planner",
        "smoke": smoke,
        "sizes": sizes,
        "ref_cap": REF_CAP,
        "stretch_bound": STRETCH_BOUND,
        "mean_stretch_bound": MEAN_STRETCH_BOUND,
        "degree_cost_bound": DEGREE_COST_BOUND,
        "mean_stretch": mean_stretch,
        "worst_stretch": worst_stretch,
        "rows": rows,
        "market_replan": {
            "incremental": market_cells[0],
            "full_replan": market_cells[1],
        },
        "par_market": {
            "cores": cores,
            "rows": par_rows,
        },
        "scale": scale_cell,
    });
    dump_json("BENCH_planner", &result);
    compare_to_baseline(&result, enforce);
}

/// Crash `rate` of the hosts permanently at staggered mid-run times
/// (mirrors `ext_market_faults`).
fn crash_plan(rate: f64, num_hosts: usize, seed: u64) -> FaultPlan {
    let n = (num_hosts as f64 * rate).round() as usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut hosts: Vec<usize> = (0..num_hosts).collect();
    hosts.shuffle(&mut rng);
    let mut plan = FaultPlan::none();
    for &h in hosts.iter().take(n) {
        let at = rng.random_range(600..2700u64);
        plan = plan.crash_forever(h as u64, SimTime::from_secs(at));
    }
    plan
}

/// Compare every incremental-engine cell's wall-clock against the
/// committed baseline; >2× is a regression. Cells absent from either side
/// (e.g. smoke runs only cover N ≤ 1024) are skipped.
fn compare_to_baseline(current: &serde_json::Value, enforce: bool) {
    let path = results_dir().join("BENCH_planner_baseline.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        println!(
            "[no committed baseline at {} — skipping comparison]",
            path.display()
        );
        assert!(
            !enforce,
            "PERF_PLANNER_ENFORCE set but no baseline committed"
        );
        return;
    };
    let baseline: serde_json::Value = serde_json::from_str(&text).expect("baseline parse");
    let wall = |v: &serde_json::Value, n: u64, path: &[&str]| -> Option<f64> {
        let row = v
            .get("rows")?
            .as_array()?
            .iter()
            .find(|r| r.get("n").and_then(|x| x.as_u64()) == Some(n))?;
        let mut cur = row;
        for k in path {
            cur = cur.get(k)?;
        }
        cur.as_f64()
    };
    let mut regressions = Vec::new();
    let mut compared = 0;
    for row in current.get("rows").and_then(|r| r.as_array()).unwrap() {
        let n = row.get("n").and_then(|x| x.as_u64()).unwrap();
        for engine in ["amcast", "critical"] {
            let path = [engine, "incremental", "wall_ms"];
            let Some(cur) = wall(current, n, &path) else {
                continue;
            };
            let Some(base) = wall(&baseline, n, &path) else {
                continue;
            };
            compared += 1;
            let ratio = cur / base.max(1e-9);
            if ratio > 2.0 {
                regressions.push(format!(
                    "N={n} {engine}: {cur:.2} ms vs baseline {base:.2} ms ({ratio:.2}x)"
                ));
            }
        }
        // Memory gate: the tiered oracle's resident footprint must not
        // creep. A 1.5x blowup vs the committed baseline means someone
        // widened a tier (or started materializing rows eagerly) — fail
        // loudly rather than silently eroding the scaling story.
        let mem_path = ["oracle_mem", "tiered_bytes"];
        if let (Some(cur), Some(base)) =
            (wall(current, n, &mem_path), wall(&baseline, n, &mem_path))
        {
            compared += 1;
            let ratio = cur / base.max(1.0);
            if ratio > 1.5 {
                regressions.push(format!(
                    "N={n} oracle_mem: {:.1} KB vs baseline {:.1} KB ({ratio:.2}x)",
                    cur / 1e3,
                    base / 1e3
                ));
            }
        }
    }
    // Parallel-market legs: the sequential (threads = 1) wall-clock is
    // gated like every other cell. Multi-thread wall-clock is machine-
    // dependent — only the bit-identity and speedup asserts in main gate
    // those legs.
    let par_wall = |v: &serde_json::Value, n: u64| -> Option<f64> {
        v.get("par_market")?
            .get("rows")?
            .as_array()?
            .iter()
            .find(|r| r.get("n").and_then(|x| x.as_u64()) == Some(n))?
            .get("legs")?
            .as_array()?
            .iter()
            .find(|l| l.get("threads").and_then(|x| x.as_u64()) == Some(1))?
            .get("wall_ms")?
            .as_f64()
    };
    if let Some(rows) = current
        .get("par_market")
        .and_then(|p| p.get("rows"))
        .and_then(|r| r.as_array())
    {
        for row in rows {
            let n = row.get("n").and_then(|x| x.as_u64()).unwrap();
            if let (Some(cur), Some(base)) = (par_wall(current, n), par_wall(&baseline, n)) {
                compared += 1;
                let ratio = cur / base.max(1e-9);
                if ratio > 2.0 {
                    regressions.push(format!(
                        "N={n} par_market[threads=1]: {cur:.2} ms vs baseline {base:.2} ms ({ratio:.2}x)"
                    ));
                }
            }
        }
    }
    if regressions.is_empty() {
        println!("[baseline comparison: {compared} cells within 2x]");
    } else {
        println!("[baseline comparison: REGRESSIONS]");
        for r in &regressions {
            println!("  {r}");
        }
        assert!(
            !enforce,
            "wall-clock regressions vs committed baseline:\n{}",
            regressions.join("\n")
        );
    }
}
