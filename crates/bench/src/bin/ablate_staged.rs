//! Ablation of the *Leafset* planning pipeline (DESIGN.md §5.0).
//!
//! The paper's practical algorithm uses coordinates "for vicinity
//! judgment". This binary shows, with data, why each ingredient of our
//! staged interpretation matters, at the paper's group size of 20:
//!
//! * **naive** — plan every pair through coordinates (what a too-literal
//!   reading produces): the greedy planner adversarially selects the most
//!   under-estimated helpers and the plan is *worse* than no helpers;
//! * **hybrid** — members measure each other, helpers stay estimated:
//!   better, still poisoned by phantom-close helpers;
//! * **staged** — shortlist on estimates, contact & measure, replan: the
//!   paper-faithful loop, within a few points of the oracle;
//! * **oracle** — the *Critical* ceiling.
//!
//! Run with: `cargo run --release -p bench --bin ablate_staged`

use alm::{adjust, amcast, critical, staged_plan, HelperPool, Problem};
use bench::{dump_json, mean, parallel_runs};
use coords::leafset::LeafsetConfig;
use coords::LeafsetCoords;
use dht::Ring;
use netsim::latency::MeasuredSetLatency;
use netsim::{HostId, Network, NetworkConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde_json::json;

const RUNS: usize = 20;
const GROUP: usize = 20;

fn main() {
    let seed = 2016;
    println!("building topology + coordinates...");
    let net = Network::generate(&NetworkConfig::default(), seed);
    let ring = Ring::with_random_ids((0..net.num_hosts() as u32).map(HostId), seed + 1);
    let coords = LeafsetCoords::new(LeafsetConfig {
        leafset_size: 32,
        rounds: 20,
        ..Default::default()
    })
    .run(&net.latency, &ring, seed + 2);

    let results = parallel_runs(RUNS, |run| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 50 + run as u64);
        let mut all: Vec<u32> = (0..net.num_hosts() as u32).collect();
        all.shuffle(&mut rng);
        let members: Vec<HostId> = all[..GROUP].iter().copied().map(HostId).collect();
        let root = members[0];
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let pool = HelperPool::new(net.hosts.ids().collect());

        let p_oracle = Problem::new(root, members.clone(), &net.latency, dbound);
        let base = amcast(&p_oracle).max_height();
        let impr = |t: &alm::MulticastTree| {
            let mut e = t.clone();
            e.recompute_heights(&net.latency);
            alm::improvement(base, e.max_height())
        };

        // naive: every pair through coordinates.
        let p_naive = Problem::new(root, members.clone(), &coords, dbound);
        let mut t = critical(&p_naive, &pool);
        adjust(&p_naive, &mut t);
        let naive = impr(&t);

        // hybrid: members measured, helpers estimated, single pass.
        let hy = MeasuredSetLatency::new(members.iter().copied(), &net.latency, &coords);
        let p_hybrid = Problem::new(root, members.clone(), &hy, dbound);
        let mut t = critical(&p_hybrid, &pool);
        adjust(&p_hybrid, &mut t);
        let hybrid = impr(&t);

        // staged: the full estimate → contact → replan loop.
        let t = staged_plan(root, &members, &net.latency, &coords, dbound, &pool, true);
        let staged = impr(&t);

        // oracle: the Critical ceiling.
        let mut t = critical(&p_oracle, &pool);
        adjust(&p_oracle, &mut t);
        let oracle = impr(&t);

        (naive, hybrid, staged, oracle)
    });

    let naive = mean(&results.iter().map(|r| r.0).collect::<Vec<_>>());
    let hybrid = mean(&results.iter().map(|r| r.1).collect::<Vec<_>>());
    let staged = mean(&results.iter().map(|r| r.2).collect::<Vec<_>>());
    let oracle = mean(&results.iter().map(|r| r.3).collect::<Vec<_>>());

    println!("\nimprovement over AMCast at group size {GROUP} ({RUNS} runs, +adjust everywhere):");
    println!(
        "  naive  (all pairs estimated)      {:>7.1}%",
        naive * 100.0
    );
    println!(
        "  hybrid (members measured)         {:>7.1}%",
        hybrid * 100.0
    );
    println!(
        "  staged (contact & replan)         {:>7.1}%",
        staged * 100.0
    );
    println!(
        "  oracle (Critical ceiling)         {:>7.1}%",
        oracle * 100.0
    );
    println!("\n(expected ordering: naive < hybrid < staged ≤ oracle — the staged loop is\n what keeps coordinate error out of the tree's critical path)");

    dump_json(
        "ablate_staged",
        &json!({
            "group": GROUP,
            "runs": RUNS,
            "naive": naive,
            "hybrid": hybrid,
            "staged": staged,
            "oracle": oracle,
        }),
    );
}
