//! §3.2's SOMO latency claims, measured.
//!
//! The paper derives two gather-staleness bounds — `log_k N · T` for the
//! unsynchronized flow and `T + t_hop · log_k N` for the synchronized one —
//! and quotes the headline number: *"For 2M nodes and with k=8 and a
//! typical latency of 200 ms per DHT hop, the SOMO root will have a global
//! view with a lag of 1.6 s."*
//!
//! This binary measures the actual root-view lag over simulated rings of
//! increasing size and fanout (200 ms per inter-host hop, T = 5 s), and
//! prints the analytic 2M-node row for comparison.
//!
//! Run with: `cargo run --release -p bench --bin somo_latency`

use bench::dump_json;
use dht::Ring;
use netsim::HostId;
use serde_json::json;
use simcore::SimTime;
use somo::flow::{
    sync_staleness_bound, unsync_staleness_bound, FlowMode, FreshnessReport, GatherSim,
};
use somo::SomoTree;

const HOP: SimTime = SimTime::from_millis(200);
const PERIOD: SimTime = SimTime::from_secs(5);

fn main() {
    let sizes = [256usize, 1024, 4096];
    let fanouts = [2usize, 4, 8, 16];

    println!("SOMO gather staleness (T = 5 s, t_hop = 200 ms):");
    println!(
        "{:>6} {:>4} {:>6} {:>12} {:>12} {:>13} {:>14} {:>13}",
        "N", "k", "depth", "sync lag", "sync bound", "unsync lag", "unsync bound*", "depth bound"
    );
    let mut rows = Vec::new();
    for &n in &sizes {
        for &k in &fanouts {
            let ring = Ring::with_random_ids((0..n as u32).map(HostId), 42);
            let tree = SomoTree::build(&ring, k);
            let sync = measure(
                &ring,
                &tree,
                FlowMode::Synchronized,
                SimTime::from_secs(120),
            );
            let unsync = measure(
                &ring,
                &tree,
                FlowMode::Unsynchronized,
                SimTime::from_secs(600),
            );
            let sb = sync_staleness_bound(n, k, HOP, PERIOD);
            let ub = unsync_staleness_bound(n, k, PERIOD);
            // The paper's bound uses the idealized log_k N depth; the real
            // tree is ~2·log_k N deep (random zone sizes), so the exact
            // bound is levels·T plus per-hop propagation.
            let levels = tree.depth() as u64 + 1;
            let db = SimTime::from_micros(PERIOD.as_micros() * levels)
                + SimTime::from_micros(HOP.as_micros() * (levels + 2));
            println!(
                "{:>6} {:>4} {:>6} {:>12} {:>12} {:>13} {:>14} {:>13}",
                n,
                k,
                tree.depth(),
                fmt(sync),
                fmt(sb),
                fmt(unsync),
                fmt(ub),
                fmt(db)
            );
            assert!(unsync <= db, "unsync lag above the depth-exact bound");
            assert!(sync <= sb, "sync lag above the paper bound");
            rows.push(json!({
                "n": n, "fanout": k, "depth": tree.depth(),
                "sync_lag_s": sync.as_secs_f64(),
                "sync_bound_s": sb.as_secs_f64(),
                "unsync_lag_s": unsync.as_secs_f64(),
                "unsync_paper_bound_s": ub.as_secs_f64(),
                "unsync_depth_bound_s": db.as_secs_f64(),
            }));
        }
    }
    println!("\n(* the paper's idealized bound assumes depth = log_k N; actual trees are ~2·log_k N deep,");
    println!("   and the measured lag always respects the depth-exact bound in the last column)");

    // The 2M-node analytic row.
    let levels = (2_000_000f64).log(8.0).ceil() as u64;
    let one_way = SimTime::from_micros(HOP.as_micros() * levels);
    println!(
        "\nanalytic: 2M nodes, k=8, 200 ms/hop → {} levels, one-way propagation {} (paper: \"a lag of 1.6 s\")",
        levels,
        fmt(one_way)
    );

    dump_json(
        "somo_latency",
        &json!({
            "claim": "§3.2 gather staleness",
            "period_s": PERIOD.as_secs_f64(),
            "hop_ms": HOP.as_millis_f64(),
            "rows": rows,
            "analytic_2m": { "levels": levels, "one_way_s": one_way.as_secs_f64() },
        }),
    );
}

/// Worst root-view lag observed after warm-up.
fn measure(ring: &Ring, tree: &SomoTree, mode: FlowMode, horizon: SimTime) -> SimTime {
    let mut sim = GatherSim::new(
        tree,
        ring,
        mode,
        PERIOD,
        |_m, now| FreshnessReport::of_member(now),
        |a, b| if a == b { SimTime::ZERO } else { HOP },
    );
    sim.run_until(horizon);
    sim.views()
        .iter()
        .filter(|v| v.view.members == ring.len() as u64) // warm-up done
        .map(|v| v.at.saturating_sub(v.view.oldest))
        .max()
        .expect("no complete view within horizon")
}

fn fmt(t: SimTime) -> String {
    format!("{:.2}s", t.as_secs_f64())
}
