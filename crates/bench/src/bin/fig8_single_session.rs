//! Figure 8: single-session improvement over AMCast vs group size.
//!
//! Paper setup: transit–stub net with 600 routers + 1200 end systems, the
//! degree distribution P(d=i+1)=2⁻ⁱ, helper degree ≥ 4, radius R≈100 ms,
//! averages over 20 runs. Series:
//!
//! * `AMCast+adju` — tree adjustment alone (paper: ~5% — "mediocre");
//! * `Critical`, `Critical+adju` — helpers with oracle latencies;
//! * `Leafset`, `Leafset+adju` — helpers with coordinate-estimated
//!   latencies (the practical algorithm);
//! * `Bound` — the infinite-root-degree ceiling (paper: 40–50%).
//!
//! Shape to reproduce: resource pool very effective for small-to-medium
//! groups (paper: ≥30% at size 100, 35% at size 20 for Leafset+adju) and
//! fading for large groups where AMCast already has members to work with.
//!
//! Run with: `cargo run --release -p bench --bin fig8_single_session`

use alm::{adjust, amcast, critical, improvement_upper_bound, HelperPool, Problem};
use bench::{dump_json, mean, parallel_runs};
use coords::leafset::LeafsetConfig;
use coords::{CoordStore, LeafsetCoords};
use dht::Ring;
use netsim::{HostId, LatencyModel, Network, NetworkConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde_json::json;

const RUNS: usize = 20;
const GROUP_SIZES: [usize; 6] = [10, 20, 50, 100, 200, 400];

struct RunResult {
    amcast_adj: f64,
    critical_plain: f64,
    critical_adj: f64,
    leafset_plain: f64,
    leafset_adj: f64,
    bound: f64,
    helpers_critical: f64,
    helpers_leafset: f64,
}

fn main() {
    let seed = 2008;
    println!("generating the paper's topology and running the leafset coordinate protocol...");
    let net = Network::generate(&NetworkConfig::default(), seed);
    let ring = Ring::with_random_ids((0..net.num_hosts() as u32).map(HostId), seed + 1);
    let coords = LeafsetCoords::new(LeafsetConfig {
        leafset_size: 32,
        rounds: 20,
        ..Default::default()
    })
    .run(&net.latency, &ring, seed + 2);

    let mut table = Vec::new();
    println!(
        "\nFigure 8 — improvement over AMCast (%), averaged over {RUNS} runs:\n{:>6} {:>12} {:>10} {:>14} {:>10} {:>13} {:>8}",
        "size", "AMCast+adju", "Critical", "Critical+adju", "Leafset", "Leafset+adju", "Bound"
    );

    for &size in &GROUP_SIZES {
        let results = parallel_runs(RUNS, |run| {
            one_run(&net, &coords, size, seed + 100 + run as u64)
        });
        let row = (
            size,
            mean(&results.iter().map(|r| r.amcast_adj).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.critical_plain).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.critical_adj).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.leafset_plain).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.leafset_adj).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.bound).collect::<Vec<_>>()),
            mean(
                &results
                    .iter()
                    .map(|r| r.helpers_critical)
                    .collect::<Vec<_>>(),
            ),
            mean(
                &results
                    .iter()
                    .map(|r| r.helpers_leafset)
                    .collect::<Vec<_>>(),
            ),
        );
        println!(
            "{:>6} {:>11.1}% {:>9.1}% {:>13.1}% {:>9.1}% {:>12.1}% {:>7.1}%",
            row.0,
            row.1 * 100.0,
            row.2 * 100.0,
            row.3 * 100.0,
            row.4 * 100.0,
            row.5 * 100.0,
            row.6 * 100.0
        );
        table.push(row);
    }

    println!("\nhelpers recruited (avg): ");
    for row in &table {
        println!(
            "  size {:>4}: Critical {:.1}, Leafset {:.1}",
            row.0, row.7, row.8
        );
    }

    let json = json!({
        "figure": "8",
        "runs": RUNS,
        "rows": table.iter().map(|r| json!({
            "group_size": r.0,
            "amcast_adju": r.1,
            "critical": r.2,
            "critical_adju": r.3,
            "leafset": r.4,
            "leafset_adju": r.5,
            "bound": r.6,
            "helpers_critical": r.7,
            "helpers_leafset": r.8,
        })).collect::<Vec<_>>(),
    });
    dump_json("fig8_single_session", &json);
}

fn one_run(net: &Network, coords: &CoordStore, size: usize, seed: u64) -> RunResult {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut all: Vec<u32> = (0..net.num_hosts() as u32).collect();
    all.shuffle(&mut rng);
    let members: Vec<HostId> = all[..size].iter().copied().map(HostId).collect();
    let root = members[0];
    let dbound = |h: HostId| net.hosts.degree_bound(h);
    let candidates: Vec<HostId> = net.hosts.ids().collect();

    let p_oracle = Problem::new(root, members.clone(), &net.latency, dbound);
    let pool = HelperPool::new(candidates);

    let base = amcast(&p_oracle).max_height();
    let impr = |h: f64| alm::problem::improvement(base, h);

    // AMCast + adjust (oracle).
    let mut t = amcast(&p_oracle);
    adjust(&p_oracle, &mut t);
    let amcast_adj = impr(t.max_height());

    // Critical (oracle), then + adjust.
    let crit = critical(&p_oracle, &pool);
    let helpers_critical = alm::critical::helpers_used(&crit, &members).len() as f64;
    let critical_plain = impr(crit.max_height());
    let mut crit_adj = crit.clone();
    adjust(&p_oracle, &mut crit_adj);
    let critical_adj = impr(crit_adj.max_height());

    // Leafset: shortlist helpers through coordinates, measure contacted
    // helpers, replan (alm::staged_plan) — the paper's practical loop.
    // Then the same with the adjustment pass.
    let leaf = alm::staged_plan(root, &members, &net.latency, coords, dbound, &pool, false);
    let helpers_leafset = alm::critical::helpers_used(&leaf, &members).len() as f64;
    let leafset_plain = impr(eval_oracle(&leaf, &net.latency));
    let leaf_adj = alm::staged_plan(root, &members, &net.latency, coords, dbound, &pool, true);
    let leafset_adj = impr(eval_oracle(&leaf_adj, &net.latency));

    RunResult {
        amcast_adj,
        critical_plain,
        critical_adj,
        leafset_plain,
        leafset_adj,
        bound: improvement_upper_bound(&p_oracle, base),
        helpers_critical,
        helpers_leafset,
    }
}

fn eval_oracle(tree: &alm::MulticastTree, oracle: &impl LatencyModel) -> f64 {
    let mut t = tree.clone();
    t.recompute_heights(oracle);
    t.max_height()
}
