//! Extension: multipath redundancy — k degree-disjoint trees per session.
//!
//! The pool's robustness payoff for cheap capacity is redundancy: each
//! session plans k degree-disjoint delivery trees (a standby tree may not
//! consume the same reserved degree units as the primary on any shared
//! host, and per-host fan-out across trees is capped by the `bwest`
//! estimate). When a crash breaks the primary, the market promotes the
//! best surviving standby within one detection round and lazily re-plans
//! the lost tree in the background.
//!
//! This binary sweeps crash rate × k and reports the three costs/benefits
//! of that redundancy:
//!
//! * **delivery ratio** — per-round fraction of live members whose root
//!   path is intact in at least one tree;
//! * **failover latency** — rounds-to-restore: detection rounds from a
//!   primary break until a tree is serving again (standby promotion closes
//!   the window in ~1 round, a full re-plan takes longer);
//! * **degree cost** — pool utilization and helpers recruited, which grow
//!   with k.
//!
//! Three properties are asserted, not just measured:
//!
//! * **Zero-fault anchor** — the k=1 / rate-0 cell reproduces
//!   `fig10_multi_session.json`'s sessions=20 row bit-identically (the
//!   multipath machinery is a strict no-op at k=1);
//! * **No leaks, no double-counting** — at every swept cell the audit is
//!   clean (including the `tree-disjointness` invariant) and the leak
//!   census finds zero degrees still booked past the horizon;
//! * **Redundancy pays** — at crash rate 10%, k=2 delivers strictly more
//!   than k=1.
//!
//! With `--trace-out`, the rate-0.10 / k=2 run carries a ring tracer and
//! its structured event trace (failovers, rebuilds included) lands in
//! `results/ext_multipath_trace.jsonl` (observation only).
//!
//! Set `EXT_MULTIPATH_SMOKE=1` for the CI slice: the full-size anchor
//! cell plus one small-pool k=2 crash cell.
//!
//! Run with: `cargo run --release -p bench --bin ext_multipath`

use bench::{dump_json, dump_jsonl, parallel_runs, results_dir, trace_out_requested};
use netsim::NetworkConfig;
use pool::{MarketConfig, MarketOutcome, MarketSim, PlanConfig, PoolConfig, ResourcePool};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde_json::json;
use simcore::{FaultPlan, SimTime};

const SESSIONS: usize = 20;
const MEMBER_SIZE: usize = 20;
const CRASH_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];
const KS: [usize; 3] = [1, 2, 3];

fn main() {
    let seed = 2010;
    let smoke = std::env::var("EXT_MULTIPATH_SMOKE").is_ok();
    println!("building the 1200-host resource pool (coordinates + bandwidth)...");
    let pristine = ResourcePool::build(&PoolConfig::default(), seed);
    let num_hosts = pristine.net.num_hosts();

    // Every k at a given rate shares one crash plan (seeded per rate, same
    // derivation as ext_market_faults) so the k columns are comparable.
    let cells: Vec<(usize, usize)> = if smoke {
        vec![(0, 0)] // rate 0, k=1: the anchor cell, full size.
    } else {
        (0..CRASH_RATES.len())
            .flat_map(|r| (0..KS.len()).map(move |k| (r, k)))
            .collect()
    };

    println!(
        "\nmultipath market — {SESSIONS} sessions, crash rate × k swept:\n{:>6} {:>3} | {:>9} {:>9} | {:>9} {:>8} {:>8} | {:>6} {:>8}",
        "rate", "k", "delivery", "restore", "failover", "rebuilt", "lost", "util", "helpers"
    );
    let outs: Vec<MarketOutcome> = parallel_runs(cells.len(), |i| {
        let (r, ki) = cells[i];
        let (rate, k) = (CRASH_RATES[r], KS[ki]);
        let faults = crash_plan(rate, num_hosts, seed + r as u64);
        let cfg = MarketConfig {
            sessions: SESSIONS,
            member_size: MEMBER_SIZE,
            horizon: SimTime::from_secs(3600),
            warmup: SimTime::from_secs(600),
            plan: PlanConfig {
                k_trees: k,
                ..PlanConfig::default()
            },
            faults,
            ..MarketConfig::default()
        };
        // Same sim seed as the fig10 sessions=20 sweep point, so the
        // k=1 / rate-0 trajectory is the committed one.
        let mut sim = MarketSim::new(pristine.clone(), cfg, seed + SESSIONS as u64);
        if trace_out_requested() && rate == 0.10 && k == 2 {
            sim.set_tracer(simcore::Tracer::ring(1 << 16));
        }
        sim.run()
    });

    let mut rows = Vec::new();
    let mut delivery_10 = [f64::NAN; 3]; // delivery mean at rate 0.10, per k.
    for (&(r, ki), out) in cells.iter().zip(&outs) {
        let (rate, k) = (CRASH_RATES[r], KS[ki]);
        if !out.trace.is_empty() {
            dump_jsonl(
                "ext_multipath_trace",
                &simcore::trace::to_json_lines(&out.trace),
            );
        }
        let imp: Vec<f64> = (1..=3).map(|p| out.class(p).improvement.mean()).collect();
        let help: Vec<f64> = (1..=3).map(|p| out.class(p).helpers.mean()).collect();
        let helpers_mean = help.iter().sum::<f64>() / 3.0;
        println!(
            "{:>5.0}% {:>3} | {:>8.2}% {:>9.2} | {:>9} {:>8} {:>8} | {:>5.1}% {:>8.2}",
            rate * 100.0,
            k,
            out.delivery.mean() * 100.0,
            out.restore_rounds.mean(),
            out.tree_failovers,
            out.trees_rebuilt,
            out.sessions_lost(),
            out.utilization.mean() * 100.0,
            helpers_mean,
        );
        assert_cell_clean(out, rate, k);
        if rate == 0.0 && k == 1 {
            anchor_against_fig10(&imp, &help, out.plans);
            assert_eq!(out.tree_failovers + out.trees_rebuilt, 0);
        }
        if rate == 0.10 {
            delivery_10[ki] = out.delivery.mean();
        }
        rows.push(cell_json(rate, k, out, &imp, &help));
    }

    if !smoke {
        // The redundancy payoff, asserted: at 10% crashes a second
        // degree-disjoint tree must strictly raise the delivery ratio.
        assert!(
            delivery_10[1] > delivery_10[0],
            "k=2 delivery ({}) not above k=1 ({}) at 10% crashes",
            delivery_10[1],
            delivery_10[0]
        );

        // Message-loss cells: no crashes at all, 5% per-edge loss per
        // delivery round. Redundancy must pay here too — a member
        // survives a dropped edge in one tree if another still reaches
        // it — and with zero crashes the trajectory itself is the
        // fault-oblivious one (delivery sampling is pure observation).
        let loss = 0.05;
        let loss_outs: Vec<MarketOutcome> = parallel_runs(2, |ki| {
            let cfg = MarketConfig {
                sessions: SESSIONS,
                member_size: MEMBER_SIZE,
                horizon: SimTime::from_secs(3600),
                warmup: SimTime::from_secs(600),
                plan: PlanConfig {
                    k_trees: KS[ki],
                    ..PlanConfig::default()
                },
                faults: FaultPlan::with_loss(seed + 7, loss),
                ..MarketConfig::default()
            };
            MarketSim::new(pristine.clone(), cfg, seed + SESSIONS as u64).run()
        });
        println!("\n5% per-edge message loss (no crashes):");
        for (k, out) in KS.iter().take(2).zip(&loss_outs) {
            println!(
                "{:>5}% {:>3} | {:>8.2}% ({} samples)",
                loss * 100.0,
                k,
                out.delivery.mean() * 100.0,
                out.delivery.count()
            );
            assert_cell_clean(out, 0.0, *k);
            let imp: Vec<f64> = (1..=3).map(|p| out.class(p).improvement.mean()).collect();
            let help: Vec<f64> = (1..=3).map(|p| out.class(p).helpers.mean()).collect();
            let mut row = cell_json(0.0, *k, out, &imp, &help);
            if let serde_json::Value::Object(m) = &mut row {
                m.push(("loss".to_string(), json!(loss)));
            }
            rows.push(row);
        }
        assert!(
            loss_outs[1].delivery.mean() > loss_outs[0].delivery.mean(),
            "k=2 delivery ({}) not above k=1 ({}) under {loss} loss",
            loss_outs[1].delivery.mean(),
            loss_outs[0].delivery.mean()
        );
        assert!(
            loss_outs[0].delivery.mean() < 1.0,
            "5% loss never cost a delivery at k=1"
        );
    }

    if smoke {
        // One small-pool crash cell so CI exercises the failover/rebuild
        // machinery end to end without the full-size sweep.
        let small = ResourcePool::build(
            &PoolConfig {
                net: NetworkConfig {
                    num_hosts: 300,
                    ..NetworkConfig::default()
                },
                coord_rounds: 5,
                ..PoolConfig::default()
            },
            seed,
        );
        let rate = 0.10;
        let cfg = MarketConfig {
            sessions: 9,
            member_size: 12,
            horizon: SimTime::from_secs(1800),
            warmup: SimTime::from_secs(300),
            plan: PlanConfig {
                k_trees: 2,
                ..PlanConfig::default()
            },
            faults: crash_plan(rate, 300, seed + 2),
            ..MarketConfig::default()
        };
        let out = MarketSim::new(small, cfg, seed).run();
        println!(
            "\n[smoke] 300-host k=2 cell at 10% crashes: delivery {:.2}%, {} failovers, {} rebuilds",
            out.delivery.mean() * 100.0,
            out.tree_failovers,
            out.trees_rebuilt
        );
        assert_cell_clean(&out, rate, 2);
        assert!(
            out.delivery.count() > 0,
            "smoke cell never sampled delivery"
        );
        rows.push(cell_json(
            rate,
            2,
            &out,
            &(1..=3)
                .map(|p| out.class(p).improvement.mean())
                .collect::<Vec<_>>(),
            &(1..=3)
                .map(|p| out.class(p).helpers.mean())
                .collect::<Vec<_>>(),
        ));
    }

    println!(
        "\n(delivery is the per-round fraction of live members with an intact root path\n in ≥1 tree; restore is detection rounds from a primary break to a serving\n tree — standby promotion closes it in about one round, a re-plan takes more;\n utilization and helpers are the degree cost of the redundancy)"
    );
    dump_json(
        "ext_multipath",
        &json!({
            "extension": "multipath",
            "smoke": smoke,
            "sessions": SESSIONS,
            "member_size": MEMBER_SIZE,
            "crash_rates": CRASH_RATES,
            "ks": KS,
            "anchor": "fig10_multi_session sessions=20 row, bit-identical at k=1 / rate 0",
            "rows": rows,
        }),
    );
}

/// The hard acceptance gates, at every swept cell.
fn assert_cell_clean(out: &MarketOutcome, rate: f64, k: usize) {
    assert_eq!(
        out.leaked_degrees, 0,
        "rate {rate} k={k}: degrees leaked past the horizon"
    );
    assert_eq!(
        out.audit.count_of("tree-disjointness"),
        0,
        "rate {rate} k={k}: cross-tree disjointness violated: {:?}",
        out.audit.violations
    );
    assert!(
        out.audit.is_clean(),
        "rate {rate} k={k}: audit violations: {:?}",
        out.audit.violations
    );
}

fn cell_json(
    rate: f64,
    k: usize,
    out: &MarketOutcome,
    imp: &[f64],
    help: &[f64],
) -> serde_json::Value {
    json!({
        "crash_rate": rate,
        "k": k,
        "delivery": {"mean": out.delivery.mean(), "samples": out.delivery.count()},
        "restore_rounds": {"mean": out.restore_rounds.mean(), "samples": out.restore_rounds.count()},
        "tree_failovers": out.tree_failovers,
        "trees_rebuilt": out.trees_rebuilt,
        "failovers": out.failovers(),
        "sessions_lost": out.sessions_lost(),
        "crash_repairs": out.crash_repairs,
        "utilization_mean": out.utilization.mean(),
        "improvement": {"p1": imp[0], "p2": imp[1], "p3": imp[2]},
        "helpers": {"p1": help[0], "p2": help[1], "p3": help[2]},
        "plans": out.plans,
        "leaked_degrees": out.leaked_degrees,
        "audit": {
            "samples": out.audit.samples,
            "checks": out.audit.checks,
            "violations": out.audit.violations.len(),
        },
    })
}

/// Crash `rate` of the pool's hosts permanently, at deterministic times
/// staggered across the middle of the run — the same derivation as
/// `ext_market_faults`, so cells at equal rates share a plan.
fn crash_plan(rate: f64, num_hosts: usize, seed: u64) -> FaultPlan {
    let n = (num_hosts as f64 * rate).round() as usize;
    if n == 0 {
        return FaultPlan::none();
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut hosts: Vec<usize> = (0..num_hosts).collect();
    hosts.shuffle(&mut rng);
    let mut plan = FaultPlan::none();
    for &h in hosts.iter().take(n) {
        let at = rng.random_range(600..2700u64);
        plan = plan.crash_forever(h as u64, SimTime::from_secs(at));
    }
    plan
}

/// Compare the k=1 / rate-0 cell against the committed Figure 10 results:
/// the multipath machinery must not move a single bit of the trajectory.
fn anchor_against_fig10(imp: &[f64], help: &[f64], plans: u64) {
    let path = results_dir().join("fig10_multi_session.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "anchor requires {} (run fig10_multi_session first): {e}",
            path.display()
        )
    });
    let fig10: serde_json::Value = serde_json::from_str(&text).expect("fig10 results parse");
    let row = fig10
        .get("rows")
        .and_then(|r| r.as_array())
        .expect("rows")
        .iter()
        .find(|r| r.get("sessions").and_then(|s| s.as_u64()) == Some(SESSIONS as u64))
        .expect("fig10 sessions=20 row");
    let field = |outer: &str, p: &str| -> f64 {
        row.get(outer)
            .and_then(|o| o.get(p))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("fig10 row missing {outer}.{p}"))
    };
    for (i, p) in ["p1", "p2", "p3"].iter().enumerate() {
        let want_imp = field("improvement", p);
        let want_help = field("helpers", p);
        assert!(
            imp[i] == want_imp && help[i] == want_help,
            "k=1 / rate-0 run diverged from fig10 at {p}: \
             improvement {} vs {want_imp}, helpers {} vs {want_help}",
            imp[i],
            help[i],
        );
    }
    assert_eq!(
        row.get("plans").and_then(|v| v.as_u64()),
        Some(plans),
        "plan count diverged"
    );
    println!("  [anchor] k=1 / rate 0 reproduces fig10 sessions={SESSIONS} bit-identically");
}
