//! Extension experiment: how much does SOMO view staleness cost?
//!
//! The paper's whole argument rests on SOMO delivering "global, on-time and
//! trusted knowledge" (§5.3) with a bounded lag (§3.2). This experiment
//! quantifies the other side of that coin: a task manager planning from a
//! view that is *behind reality* will be refused by helpers the view
//! promised, must drop them and replan — losing improvement.
//!
//! Method: snapshot the pool's resource report, let `k` competing sessions
//! reserve helpers (making the snapshot progressively stale), then plan
//! probe sessions from the old snapshot and compare with probes planned
//! from a fresh one. Staleness here is measured in *competing reservations
//! missed*, the quantity a lag of `log_k N · T` translates into under any
//! given session arrival rate.
//!
//! Run with: `cargo run --release -p bench --bin ext_staleness`

use bench::{dump_json, mean};
use netsim::NetworkConfig;
use pool::task_manager::{plan_and_reserve, plan_and_reserve_from_view};
use pool::{PlanConfig, PlanModel, PoolConfig, ResourcePool, SessionId, SessionSpec};
use serde_json::json;

const PROBES: usize = 8;

fn main() {
    let seed = 2014;
    println!("building a 1200-host pool...");
    let pristine = ResourcePool::build(
        &PoolConfig {
            net: NetworkConfig::default(),
            coord_rounds: 10,
            ..PoolConfig::default()
        },
        seed,
    );
    let cfg = PlanConfig {
        model: PlanModel::Oracle,
        ..PlanConfig::default()
    };

    println!(
        "\n{:>22} {:>12} {:>14} {:>10}",
        "missed reservations", "improvement", "helper fails", "helpers"
    );
    let mut rows = Vec::new();
    for &competitors in &[0usize, 5, 10, 20, 40] {
        let mut pool = pristine.clone();
        // The probe's view of the world, taken *before* the competitors
        // make their reservations.
        let stale_view = pool.snapshot_report(usize::MAX);
        let sets = pool.partition_members(competitors + PROBES, 20, seed + competitors as u64);
        for (i, members) in sets[..competitors].iter().enumerate() {
            let s = SessionSpec {
                id: SessionId(1000 + i as u32),
                priority: 1,
                root: members[0],
                members: members.clone(),
            };
            plan_and_reserve(&mut pool, &s, &cfg);
        }
        // Probe sessions plan from the stale snapshot.
        let mut improvements = Vec::new();
        let mut failures = Vec::new();
        let mut helpers = Vec::new();
        for (i, members) in sets[competitors..].iter().enumerate() {
            let s = SessionSpec {
                id: SessionId(2000 + i as u32),
                priority: 2,
                root: members[0],
                members: members.clone(),
            };
            let out = plan_and_reserve_from_view(&mut pool, &s, &cfg, &stale_view);
            improvements.push(out.improvement);
            failures.push(out.helper_failures as f64);
            helpers.push(out.helpers.len() as f64);
            pool.release_session(s.id);
        }
        let row = (
            competitors,
            mean(&improvements),
            mean(&failures),
            mean(&helpers),
        );
        println!(
            "{:>22} {:>11.1}% {:>14.2} {:>10.2}",
            row.0,
            row.1 * 100.0,
            row.2,
            row.3
        );
        rows.push(json!({
            "competing_reservations_missed": row.0,
            "mean_improvement": row.1,
            "mean_helper_failures": row.2,
            "mean_helpers": row.3,
        }));
    }
    println!(
        "\n(expect: improvement degrades gracefully and failures rise as the view ages —\n the cost of staleness is retries, not broken sessions)"
    );
    dump_json("ext_staleness", &json!({ "probes": PROBES, "rows": rows }));
}
