//! Figure 5: average relative error of bottleneck-bandwidth estimation vs
//! leafset size.
//!
//! Paper setup: hosts draw access bandwidths from the Gnutella trace (we
//! substitute the documented synthetic mixture); every node estimates its
//! up/downstream bottleneck as the leafset-max of packet-pair probes.
//! Findings to reproduce: (1) error decreases with leafset size, (2) uplink
//! is predicted more accurately than downlink, (3) at L=32 the uplink error
//! is almost 0 and the uplink ranking is essentially perfect.
//!
//! Run with: `cargo run --release -p bench --bin fig5_bandwidth`

use bench::dump_json;
use bwest::estimator::{estimate, BwEstConfig};
use bwest::eval::evaluate;
use dht::Ring;
use netsim::{HostId, Network, NetworkConfig};
use serde_json::json;

fn main() {
    let seed = 2005;
    println!("generating 1200-host network with Gnutella-like access bandwidths...");
    let net = Network::generate(&NetworkConfig::default(), seed);
    let ring = Ring::with_random_ids((0..net.num_hosts() as u32).map(HostId), seed + 1);

    let sizes = [2usize, 4, 8, 16, 32, 64];
    println!(
        "\nFigure 5 — average relative error vs leafset size:\n{:>8} {:>12} {:>12} {:>14}",
        "L", "uplink err", "downlink err", "uplink ranking"
    );
    let mut rows = Vec::new();
    for &l in &sizes {
        let est = estimate(
            &net.hosts,
            &ring,
            &BwEstConfig {
                leafset_size: l,
                ..Default::default()
            },
            seed + 10 + l as u64,
        );
        let acc = evaluate(&net.hosts, &ring, &est);
        println!(
            "{:>8} {:>12.4} {:>12.4} {:>13.1}%",
            l,
            acc.up_avg_rel_err,
            acc.down_avg_rel_err,
            acc.up_ranking_accuracy * 100.0
        );
        rows.push((l, acc));
    }

    // The paper's qualitative claims, checked right here.
    let first = &rows[0].1;
    let last = &rows[rows.len() - 1].1;
    assert!(
        last.up_avg_rel_err < first.up_avg_rel_err,
        "uplink error should fall with leafset size"
    );
    let l32 = &rows.iter().find(|(l, _)| *l == 32).unwrap().1;
    println!("\nchecks: L=32 uplink err {:.4} (paper: almost 0), ranking {:.1}% (paper: 100%), uplink better than downlink: {}",
        l32.up_avg_rel_err,
        l32.up_ranking_accuracy * 100.0,
        l32.up_avg_rel_err < l32.down_avg_rel_err,
    );

    let json = json!({
        "figure": "5",
        "rows": rows.iter().map(|(l, a)| json!({
            "leafset_size": l,
            "up_avg_rel_err": a.up_avg_rel_err,
            "down_avg_rel_err": a.down_avg_rel_err,
            "up_ranking_accuracy": a.up_ranking_accuracy,
        })).collect::<Vec<_>>(),
    });
    dump_json("fig5_bandwidth", &json);
}
