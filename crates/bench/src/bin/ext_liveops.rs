//! Extension: the live operations surface — streaming sink + queryable
//! run store, audited for correctness on a faulted fig10-style market.
//!
//! Four same-seed runs of one crash-laden market workload, each observed
//! through a different surface, with every pair of observations held to a
//! byte-identity or exact-count gate:
//!
//! * **ring** — the legacy post-hoc ring tracer: the reference trace and
//!   final degree tables;
//! * **store** — a [`pool::LiveOps`] surface attached: trace streams into
//!   the run store, every pool op / slot / queue change lands in the
//!   delta log, periodic [`pool::MarketSnapshot`]s are taken. Gates: the
//!   store's trace is byte-identical to the ring run's; the final degree
//!   tables match host for host; **replaying from every snapshot**
//!   reconstructs the final state byte-identically (JSON of the replayed
//!   state vs the final snapshot's); nothing was evicted;
//! * **stream** — a bounded [`simcore::StreamSink`] at sufficient
//!   capacity: drained records byte-identical to the ring trace, zero
//!   drops;
//! * **tiny** — the same stream sink deliberately undersized: drops are
//!   counted exactly (`emitted == delivered + dropped`), oldest-first,
//!   and surfaced through the metrics registry — never silent.
//!
//! The operator queries ride the same store: "which hosts are over 90%
//! degree utilization", "which hosts crossed up in the last N rounds" —
//! answers carry the [`query`] crate's `Freshness` contract (an empty
//! window reports the a-priori bound, not false freshness).
//!
//! Set `EXT_LIVEOPS_SMOKE=1` for the CI slice (smaller pool, shorter
//! horizon — every gate still runs). Pass `--store-out` to dump the live
//! and store traces plus the delta/snapshot logs as JSON lines for the
//! byte-comparison step in CI.
//!
//! Run with: `cargo run --release -p bench --bin ext_liveops`

use bench::{dump_json, dump_jsonl, store_out_requested};
use netsim::NetworkConfig;
use pool::liveops::{hosts_crossed_up, hosts_over_threshold, reconstruct_at};
use pool::{LiveOps, LiveOpsConfig, MarketConfig, MarketSim, PlanConfig, PoolConfig, ResourcePool};
use serde_json::json;
use simcore::trace::to_json_lines;
use simcore::{FaultPlan, MetricsRegistry, SimTime, StreamSink, Tracer};

const SEED: u64 = 3001;
const UTIL_THRESHOLD: f64 = 0.9;
/// Undersized stream capacity for the drop-accounting gate.
const TINY_CAP: usize = 256;

struct Workload {
    hosts: usize,
    sessions: usize,
    member_size: usize,
    horizon: SimTime,
    warmup: SimTime,
    crash_step: usize,
}

fn main() {
    let smoke = std::env::var("EXT_LIVEOPS_SMOKE").is_ok();
    let w = if smoke {
        Workload {
            hosts: 200,
            sessions: 6,
            member_size: 10,
            horizon: SimTime::from_secs(1200),
            warmup: SimTime::from_secs(300),
            crash_step: 9,
        }
    } else {
        Workload {
            hosts: 300,
            sessions: 9,
            member_size: 12,
            horizon: SimTime::from_secs(1800),
            warmup: SimTime::from_secs(300),
            crash_step: 7,
        }
    };
    println!(
        "building the {}-host pool (faulted fig10-style market, {} sessions)...",
        w.hosts, w.sessions
    );
    let pristine = ResourcePool::build(
        &PoolConfig {
            net: NetworkConfig {
                num_hosts: w.hosts,
                ..NetworkConfig::default()
            },
            coord_rounds: 4,
            ..PoolConfig::default()
        },
        SEED,
    );

    // --- run 1: the reference ring trace -------------------------------
    println!("run 1/4: ring tracer (reference trace + final tables)...");
    let mut sim = market(&pristine, &w);
    sim.set_tracer(Tracer::ring(1 << 16));
    let (ring_out, ring_pool) = sim.run_full();
    let ring_trace = to_json_lines(&ring_out.trace);
    let emitted = ring_out.trace.len() as u64;
    assert!(emitted > 0, "the faulted market must emit trace records");
    assert!(
        (emitted as usize) < (1 << 16),
        "ring capacity too small for a byte-identity reference"
    );

    // --- run 2: the live-operations store ------------------------------
    println!("run 2/4: live-operations store (trace + deltas + snapshots)...");
    let mut sim = market(&pristine, &w);
    let mut lo = LiveOps::new(LiveOpsConfig {
        snapshot_period: SimTime::from_secs(60),
        util_threshold: UTIL_THRESHOLD,
        ..LiveOpsConfig::default()
    });
    // A standing operator query: alarm when fewer than 5 hosts near the
    // origin still offer free rank-3 degrees.
    lo.subscribe(0, [0.0, 0.0], 1e9, 3, 1, 5);
    let handle = sim.attach_liveops(lo);
    let (store_out, store_pool) = sim.run_full();
    assert!(
        store_out.trace.is_empty(),
        "the store owns the records; the outcome's inline trace is empty"
    );
    let store = handle.lock().expect("store lock");

    // Gate: byte-identical trace through the store path.
    let store_trace = store
        .trace_json_lines()
        .expect("nothing evicted at this capacity");
    assert_eq!(
        ring_trace, store_trace,
        "store-streamed trace diverged from the ring trace"
    );
    // Gate: attaching the surface did not move the trajectory.
    assert_eq!(ring_out.plans, store_out.plans, "plan count diverged");
    assert_eq!(
        ring_out.leaked_degrees, store_out.leaked_degrees,
        "leak census diverged"
    );
    let mut tables_checked = 0u64;
    for h in (0..w.hosts as u32).map(netsim::HostId) {
        assert_eq!(
            ring_pool.table(h),
            store_pool.table(h),
            "final degree table diverged on host {h:?}"
        );
        assert_eq!(ring_pool.is_alive(h), store_pool.is_alive(h));
        tables_checked += 1;
    }

    // Gate: counted-nothing-dropped store accounting.
    let stats = store.stats();
    assert_eq!(stats.trace_appended, emitted, "store missed trace records");
    assert_eq!(stats.trace_evicted, 0, "store evicted trace records");
    assert_eq!(stats.delta_evicted, 0, "store evicted deltas");
    assert!(stats.snapshots >= 2, "need snapshots to replay from");

    // Gate: replay from EVERY snapshot reconstructs the final state
    // byte-identically (JSON of the replayed state vs the final
    // snapshot's state, which run_full captured at the horizon).
    let final_state = store
        .latest_snapshot()
        .expect("final snapshot exists")
        .state
        .clone();
    let final_json = serde_json::to_string(&final_state).expect("snapshot serializes");
    let mut replays = 0u64;
    for idx in 0..store.snapshots().len() {
        let replayed = reconstruct_at(&store, idx).expect("nothing evicted");
        let got = serde_json::to_string(&replayed).expect("replayed state serializes");
        assert_eq!(
            got, final_json,
            "replay from snapshot {idx} diverged from the final state"
        );
        replays += 1;
    }
    // And the reconstructed tables are the live run's final tables.
    for (i, hs) in final_state.hosts.iter().enumerate() {
        let h = netsim::HostId(i as u32);
        assert_eq!(&hs.table, store_pool.table(h), "snapshot table diverged");
        assert_eq!(hs.alive, store_pool.is_alive(h));
    }

    // Operator queries against the store, with the Freshness contract.
    let bound = SimTime::from_secs(60);
    let over = hosts_over_threshold(&store, UTIL_THRESHOLD, bound);
    assert!(!over.freshness.empty_scope(), "populated store has a scope");
    let crossed = hosts_crossed_up(&store, SimTime::ZERO, bound);
    let empty = hosts_crossed_up(&store, w.horizon + SimTime::from_secs(1), bound);
    assert!(empty.hosts.is_empty());
    assert!(
        empty.freshness.empty_scope() && empty.freshness.staleness(w.horizon) == bound,
        "an empty window must report the a-priori bound"
    );

    // --- run 3: bounded stream sink at capacity ------------------------
    println!("run 3/4: stream sink at capacity (byte-identity, zero drops)...");
    let (sink, stream) = StreamSink::bounded(1 << 16);
    let mut sim = market(&pristine, &w);
    sim.set_tracer(Tracer::with_sink(Box::new(sink)));
    let _ = sim.run_full();
    assert_eq!(stream.dropped(), 0, "at-capacity stream dropped records");
    assert_eq!(stream.delivered(), emitted);
    let streamed = to_json_lines(&stream.drain());
    assert_eq!(ring_trace, streamed, "streamed trace diverged from ring");

    // --- run 4: undersized stream sink ---------------------------------
    println!("run 4/4: undersized stream sink (exact counted drops)...");
    let (sink, tiny) = StreamSink::bounded(TINY_CAP);
    let mut sim = market(&pristine, &w);
    sim.set_tracer(Tracer::with_sink(Box::new(sink)));
    let _ = sim.run_full();
    let expect_dropped = emitted.saturating_sub(TINY_CAP as u64);
    assert_eq!(tiny.dropped(), expect_dropped, "drop count not exact");
    assert_eq!(tiny.delivered() + tiny.dropped(), emitted);
    let survivors = tiny.drain();
    assert_eq!(survivors.len() as u64, emitted.min(TINY_CAP as u64));
    assert_eq!(
        survivors.first().map(|r| r.seq),
        Some(expect_dropped),
        "overflow must drop oldest-first"
    );
    let mut reg = MetricsRegistry::new();
    tiny.publish_metrics(&mut reg);
    assert_eq!(reg.counter("trace.dropped_records"), expect_dropped);

    println!(
        "\nall gates passed: trace byte-identity (ring == store == stream), \
         {replays} snapshot replays byte-identical to the final state, \
         {tables_checked} final tables matched, {expect_dropped} undersized-stream \
         drops counted exactly"
    );

    if store_out_requested() {
        dump_jsonl("ext_liveops_trace_live", &ring_trace);
        dump_jsonl("ext_liveops_trace_store", &store_trace);
        dump_jsonl("ext_liveops_deltas", &store.deltas_json_lines());
        dump_jsonl("ext_liveops_snapshots", &store.snapshots_json_lines());
    }

    dump_json(
        "ext_liveops",
        &json!({
            "extension": "liveops",
            "smoke": smoke,
            "workload": {
                "hosts": w.hosts,
                "sessions": w.sessions,
                "member_size": w.member_size,
                "horizon_s": w.horizon.as_secs_f64(),
                "crash_step": w.crash_step,
            },
            "trace": {
                "emitted": emitted,
                "ring_equals_store": true,
                "ring_equals_stream": true,
            },
            "store": {
                "trace_appended": stats.trace_appended,
                "trace_evicted": stats.trace_evicted,
                "delta_appended": stats.delta_appended,
                "delta_evicted": stats.delta_evicted,
                "snapshots": stats.snapshots,
                "replays_byte_identical": replays,
                "final_tables_checked": tables_checked,
            },
            "queries": {
                "util_threshold": UTIL_THRESHOLD,
                "hosts_over_threshold_final": over.hosts.len(),
                "hosts_crossed_up_total": crossed.hosts.len(),
                "freshness_bound_s": bound.as_secs_f64(),
                "empty_window_reports_bound": true,
            },
            "undersized_stream": {
                "cap": TINY_CAP,
                "dropped": expect_dropped,
                "delivered": emitted.min(TINY_CAP as u64),
                "oldest_first": true,
            },
        }),
    );
}

fn market(pristine: &ResourcePool, w: &Workload) -> MarketSim {
    let mut faults = FaultPlan::none();
    for h in (0..w.hosts as u64).step_by(w.crash_step) {
        faults = faults.crash_forever(h, SimTime::from_secs(600 + h));
    }
    let cfg = MarketConfig {
        sessions: w.sessions,
        member_size: w.member_size,
        horizon: w.horizon,
        warmup: w.warmup,
        faults,
        plan: PlanConfig::default(),
        ..MarketConfig::default()
    };
    MarketSim::new(pristine.clone(), cfg, SEED)
}
