//! Extension experiment: SOMO census completeness under unrepaired churn.
//!
//! SOMO's self-healing is structural — the tree is a pure function of ring
//! membership, so once the DHT expels a dead node (one failure-detection
//! timeout later) the tree is whole again. The exposure window is the time
//! *between* a crash and that repair: gather rounds keep completing (child
//! timeouts), but every member whose report routed through the dead host is
//! missing from the root's view.
//!
//! This binary measures that exposure: kill `f` random members of a
//! 512-node ring *without* repairing the tree, run synchronized gathers,
//! and report what fraction of the surviving members still reach the root.
//! Post-repair completeness is verified to be 100% in every case.
//!
//! With `--trace-out`, the heaviest stale-tree gather (f = 32, trial 0)
//! carries a ring tracer and its structured gather-round trace lands in
//! `results/ext_churn_trace.jsonl` (observation only — the repaired-census
//! assertion is unchanged).
//!
//! Run with: `cargo run --release -p bench --bin ext_churn`

use bench::{dump_json, dump_jsonl, mean, trace_out_requested};
use dht::Ring;
use netsim::HostId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde_json::json;
use simcore::SimTime;
use somo::flow::{FlowMode, FreshnessReport, GatherSim};
use somo::SomoTree;

const N: u32 = 512;
const TRIALS: usize = 5;
const HOP: SimTime = SimTime::from_millis(200);
const T: SimTime = SimTime::from_secs(5);

fn main() {
    println!("SOMO census completeness with f unrepaired failures (N = {N}, k = 8):");
    println!(
        "{:>4} {:>22} {:>22}",
        "f", "completeness (stale)", "completeness (repaired)"
    );
    let mut rows = Vec::new();
    for &f in &[0usize, 1, 2, 4, 8, 16, 32] {
        let mut stale = Vec::new();
        let mut repaired = Vec::new();
        for trial in 0..TRIALS {
            let seed = 40 + trial as u64;
            let ring = Ring::with_random_ids((0..N).map(HostId), seed);
            let tree = SomoTree::build(&ring, 8);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 100);
            let mut victims: Vec<usize> = (0..ring.len()).collect();
            victims.shuffle(&mut rng);
            let victims = &victims[..f];

            // Phase 1: failures land, tree NOT yet repaired.
            let mut sim = GatherSim::new(
                &tree,
                &ring,
                FlowMode::Synchronized,
                T,
                |_m, now| FreshnessReport::of_member(now),
                |a, b| if a == b { SimTime::ZERO } else { HOP },
            );
            let traced = trace_out_requested() && f == 32 && trial == 0;
            if traced {
                sim.set_tracer(simcore::Tracer::ring(1 << 16));
            }
            for &v in victims {
                sim.kill_member(v);
            }
            sim.run_until(SimTime::from_secs(60));
            if traced {
                dump_jsonl(
                    "ext_churn_trace",
                    &simcore::trace::to_json_lines(
                        &sim.take_trace().expect("ring tracer owns its records"),
                    ),
                );
            }
            let alive = (N as usize - f) as f64;
            let reported = sim
                .views()
                .last()
                .map(|v| v.view.members as f64)
                .unwrap_or(0.0);
            stale.push(reported / alive);

            // Phase 2: the DHT expelled the victims; rebuild and regather.
            let mut healed_ring = ring.clone();
            for &v in victims {
                healed_ring.remove_id(ring.member(v).id).unwrap();
            }
            let tree2 = SomoTree::build(&healed_ring, 8);
            let mut sim2 = GatherSim::new(
                &tree2,
                &healed_ring,
                FlowMode::Synchronized,
                T,
                |_m, now| FreshnessReport::of_member(now),
                |a, b| if a == b { SimTime::ZERO } else { HOP },
            );
            sim2.run_until(SimTime::from_secs(30));
            let reported2 = sim2.views().last().map(|v| v.view.members).unwrap_or(0);
            repaired.push(reported2 as f64 / alive);
        }
        let row = (f, mean(&stale), mean(&repaired));
        println!(
            "{:>4} {:>21.1}% {:>21.1}%",
            row.0,
            row.1 * 100.0,
            row.2 * 100.0
        );
        assert!(
            (row.2 - 1.0).abs() < 1e-9,
            "repair must always restore a complete census"
        );
        rows.push(json!({
            "failures": row.0,
            "stale_completeness": row.1,
            "repaired_completeness": row.2,
        }));
    }
    println!(
        "\n(the gap between the columns is the exposure window — one failure-detection\n timeout per crash; after the ring expels the victim the census is whole again)"
    );
    dump_json(
        "ext_churn",
        &json!({ "n": N, "trials": TRIALS, "rows": rows }),
    );
}
