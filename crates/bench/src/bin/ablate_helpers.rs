//! Ablations of the critical-node design choices (§5.2).
//!
//! Three claims from the paper get swept here:
//!
//! 1. **Radius R**: "R between 50~150 yields satisfactory results ... a
//!    small R will reduce the choice of candidates, whereas a larger R will
//!    introduce links of long latency in the tree."
//! 2. **Selection heuristic**: the min `l(h,p) + max_v l(h,v)` rule "yields
//!    even better results" than picking the closest adequate node.
//! 3. **Helper degree threshold** (condition 2, the paper uses 4).
//!
//! Run with: `cargo run --release -p bench --bin ablate_helpers`

use alm::{amcast, critical, HelperPool, HelperStrategy, Problem};
use bench::{dump_json, mean, parallel_runs};
use netsim::{HostId, Network, NetworkConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde_json::json;

const RUNS: usize = 20;
const GROUP: usize = 40;

fn main() {
    let seed = 2012;
    println!("generating the paper's topology...");
    let net = Network::generate(&NetworkConfig::default(), seed);

    // 1. Radius sweep.
    let radii = [10.0, 25.0, 50.0, 100.0, 150.0, 250.0, 500.0];
    println!("\nablation 1 — helper radius R (group {GROUP}, {RUNS} runs, oracle):");
    println!("{:>8} {:>12} {:>10}", "R (ms)", "improvement", "helpers");
    let mut radius_rows = Vec::new();
    for &r in &radii {
        let (imp, helpers) = sweep(&net, seed, |pool| {
            pool.radius_ms = r;
        });
        println!("{:>8.0} {:>11.1}% {:>10.2}", r, imp * 100.0, helpers);
        radius_rows.push(json!({"radius_ms": r, "improvement": imp, "helpers": helpers}));
    }

    // 2. Strategy comparison.
    println!("\nablation 2 — selection heuristic:");
    let (imp_close, h_close) = sweep(&net, seed, |pool| {
        pool.strategy = HelperStrategy::Closest;
    });
    let (imp_mm, h_mm) = sweep(&net, seed, |pool| {
        pool.strategy = HelperStrategy::MinMaxSibling;
    });
    println!(
        "  Closest        {:>6.1}%  ({h_close:.2} helpers)",
        imp_close * 100.0
    );
    println!(
        "  MinMaxSibling  {:>6.1}%  ({h_mm:.2} helpers)",
        imp_mm * 100.0
    );

    // 3. Minimum helper degree.
    println!("\nablation 3 — minimum helper degree (condition 2):");
    let mut degree_rows = Vec::new();
    for d in [2u32, 3, 4, 6, 8] {
        let (imp, helpers) = sweep(&net, seed, |pool| {
            pool.min_degree = d;
        });
        println!("  d >= {d}: {:>6.1}%  ({helpers:.2} helpers)", imp * 100.0);
        degree_rows.push(json!({"min_degree": d, "improvement": imp, "helpers": helpers}));
    }

    dump_json(
        "ablate_helpers",
        &json!({
            "claim": "§5.2 design choices",
            "radius": radius_rows,
            "strategy": {
                "closest": {"improvement": imp_close, "helpers": h_close},
                "minmax_sibling": {"improvement": imp_mm, "helpers": h_mm},
            },
            "min_degree": degree_rows,
        }),
    );
}

/// Average improvement and helper count over RUNS sessions, with a pool
/// configured by `tweak`.
fn sweep(net: &Network, seed: u64, tweak: impl Fn(&mut HelperPool) + Sync) -> (f64, f64) {
    let results = parallel_runs(RUNS, |run| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 900 + run as u64);
        let mut all: Vec<u32> = (0..net.num_hosts() as u32).collect();
        all.shuffle(&mut rng);
        let members: Vec<HostId> = all[..GROUP].iter().copied().map(HostId).collect();
        let dbound = |h: HostId| net.hosts.degree_bound(h);
        let p = Problem::new(members[0], members.clone(), &net.latency, dbound);
        let base = amcast(&p).max_height();
        let mut pool = HelperPool::new(net.hosts.ids().collect());
        tweak(&mut pool);
        let t = critical(&p, &pool);
        let imp = alm::problem::improvement(base, t.max_height());
        let helpers = alm::critical::helpers_used(&t, &members).len() as f64;
        (imp, helpers)
    });
    (
        mean(&results.iter().map(|r| r.0).collect::<Vec<_>>()),
        mean(&results.iter().map(|r| r.1).collect::<Vec<_>>()),
    )
}
