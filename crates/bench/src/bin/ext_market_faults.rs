//! Extension: the Figure 10 market under host crashes.
//!
//! The paper's market model (§5.3) assumes every task manager and helper
//! outlives its session. This experiment drops that assumption: a fraction
//! of the 1200 hosts crash permanently at staggered times mid-run, and the
//! crash-tolerance machinery — helper leases, missed-renewal detection,
//! subtree reattachment, task-manager failover — has to keep the market's
//! books balanced.
//!
//! Every crash rate is swept in **both** replan modes — the default
//! incremental holdings re-sync and the legacy forced full replan
//! (`MarketConfig::full_crash_replan`) — as the A/B pair for the planner
//! hot-path work. Two properties are asserted, not just measured:
//!
//! * **Zero-fault anchor** — at crash rate 0 the fault path must be a true
//!   no-op in *either* mode: the sessions=20 row reproduces
//!   `fig10_multi_session.json` bit-identically (same seed, same
//!   trajectory, same floats).
//! * **No leaks** — at every crash rate, in both modes, every crashed
//!   session either failed over or had its leases lapse by the horizon:
//!   the final audit reports zero degree-conservation violations and the
//!   leak census finds zero helper degrees still booked to inactive
//!   sessions.
//!
//! The two modes' trajectories legitimately diverge after the first crash
//! (the incremental path schedules fewer replans, so subsequent plans see
//! different pool states); the recorded rows keep both so the divergence
//! is measured rather than assumed away. The controlled equivalence claim
//! — a lone session's final degree tables converge across modes — is a
//! unit test in `pool::market`.
//!
//! With `--trace-out`, the rate-0.10 incremental run carries a ring tracer
//! and its structured event trace lands in
//! `results/ext_market_faults_trace.jsonl` (observation only — all the
//! asserted gates above are unchanged).
//!
//! Run with: `cargo run --release -p bench --bin ext_market_faults`

use bench::{dump_json, dump_jsonl, results_dir, trace_out_requested};
use pool::{MarketConfig, MarketSim, PlanConfig, PoolConfig, ResourcePool};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde_json::json;
use simcore::{FaultPlan, SimTime};

const SESSIONS: usize = 20;
const MEMBER_SIZE: usize = 20;
const CRASH_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

fn main() {
    let seed = 2010;
    println!("building the 1200-host resource pool (coordinates + bandwidth)...");
    let pristine = ResourcePool::build(&PoolConfig::default(), seed);
    let num_hosts = pristine.net.num_hosts();

    let mut rows = Vec::new();
    println!(
        "\nmarket under host crashes — {SESSIONS} sessions, crash rate × replan mode swept:\n{:>6} {:>12} | {:>8} {:>8} {:>8} | {:>7} {:>9} {:>9} {:>5} | {:>7} {:>7}",
        "rate", "mode", "imp p1", "imp p2", "imp p3", "crashes", "failovers", "lost", "lapse", "leaked", "incsync"
    );
    for (k, &rate) in CRASH_RATES.iter().enumerate() {
        let faults = crash_plan(rate, num_hosts, seed + k as u64);
        for full_crash_replan in [false, true] {
            let mode = if full_crash_replan {
                "full_replan"
            } else {
                "incremental"
            };
            let pool = pristine.clone();
            let cfg = MarketConfig {
                sessions: SESSIONS,
                member_size: MEMBER_SIZE,
                horizon: SimTime::from_secs(3600),
                warmup: SimTime::from_secs(600),
                plan: PlanConfig::default(),
                faults: faults.clone(),
                full_crash_replan,
                ..MarketConfig::default()
            };
            // Same sim seed as the fig10 sessions=20 sweep point, so the
            // rate-0 trajectory is the committed one.
            let traced = trace_out_requested() && rate == 0.10 && !full_crash_replan;
            let mut sim = MarketSim::new(pool, cfg, seed + SESSIONS as u64);
            if traced {
                sim.set_tracer(simcore::Tracer::ring(1 << 16));
            }
            let out = sim.run();
            if traced {
                dump_jsonl(
                    "ext_market_faults_trace",
                    &simcore::trace::to_json_lines(&out.trace),
                );
            }

            let imp: Vec<f64> = (1..=3).map(|p| out.class(p).improvement.mean()).collect();
            let help: Vec<f64> = (1..=3).map(|p| out.class(p).helpers.mean()).collect();
            let crashes: Vec<u64> = (1..=3).map(|p| out.class(p).helper_crashes).collect();
            let conservation = out.audit.count_of("degree-conservation");
            println!(
                "{:>5.0}% {:>12} | {:>7.1}% {:>7.1}% {:>7.1}% | {:>7} {:>9} {:>9} {:>5} | {:>7} {:>7}",
                rate * 100.0,
                mode,
                imp[0] * 100.0,
                imp[1] * 100.0,
                imp[2] * 100.0,
                crashes.iter().sum::<u64>(),
                out.failovers(),
                out.sessions_lost(),
                out.lapsed_lease_degrees,
                out.leaked_degrees,
                out.incremental_replans,
            );

            // The hard acceptance gates, at every rate, in both modes.
            assert_eq!(
                out.leaked_degrees, 0,
                "rate {rate} ({mode}): helper degrees leaked past the horizon"
            );
            assert_eq!(
                conservation, 0,
                "rate {rate} ({mode}): degree conservation violated: {:?}",
                out.audit.violations
            );
            assert!(
                out.audit.is_clean(),
                "rate {rate} ({mode}): audit violations: {:?}",
                out.audit.violations
            );
            if full_crash_replan {
                assert_eq!(
                    out.incremental_replans, 0,
                    "rate {rate}: forced full replan still ran a re-sync"
                );
            } else {
                assert_eq!(
                    out.incremental_replans + out.resync_fallbacks,
                    out.crash_repairs,
                    "rate {rate}: a repair neither re-synced nor fell back"
                );
            }
            if rate == 0.0 {
                anchor_against_fig10(&imp, &help, out.plans);
                assert_eq!(
                    out.crash_repairs, 0,
                    "({mode}) phantom repairs at zero faults"
                );
                assert_eq!(
                    out.lapsed_lease_degrees, 0,
                    "({mode}) phantom lapses at zero faults"
                );
            }

            rows.push(json!({
                "crash_rate": rate,
                "mode": mode,
                "improvement": {"p1": imp[0], "p2": imp[1], "p3": imp[2]},
                "helpers": {"p1": help[0], "p2": help[1], "p3": help[2]},
                "helper_crashes": {"p1": crashes[0], "p2": crashes[1], "p3": crashes[2]},
                "preemptions": {
                    "p1": out.class(1).preemptions,
                    "p2": out.class(2).preemptions,
                    "p3": out.class(3).preemptions,
                },
                "failovers": out.failovers(),
                "sessions_lost": out.sessions_lost(),
                "crash_repairs": out.crash_repairs,
                "crash_repair_retries": out.crash_repair_retries,
                "crash_repair_gave_up": out.crash_repair_gave_up,
                "incremental_replans": out.incremental_replans,
                "resync_fallbacks": out.resync_fallbacks,
                "lapsed_lease_degrees": out.lapsed_lease_degrees,
                "leaked_degrees": out.leaked_degrees,
                "plans": out.plans,
                "audit": {
                    "samples": out.audit.samples,
                    "checks": out.audit.checks,
                    "violations": out.audit.violations.len(),
                },
            }));
        }
    }

    dump_json(
        "ext_market_faults",
        &json!({
            "extension": "market_faults",
            "sessions": SESSIONS,
            "member_size": MEMBER_SIZE,
            "crash_rates": CRASH_RATES,
            "modes": ["incremental", "full_replan"],
            "anchor": "fig10_multi_session sessions=20 row, bit-identical at rate 0 in both modes",
            "rows": rows,
        }),
    );
}

/// Crash `rate` of the pool's hosts permanently, at deterministic times
/// staggered across the middle of the run (after warm-up, before the last
/// quarter — crashes too close to the horizon exercise nothing).
fn crash_plan(rate: f64, num_hosts: usize, seed: u64) -> FaultPlan {
    let n = (num_hosts as f64 * rate).round() as usize;
    if n == 0 {
        return FaultPlan::none();
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut hosts: Vec<usize> = (0..num_hosts).collect();
    hosts.shuffle(&mut rng);
    let mut plan = FaultPlan::none();
    for &h in hosts.iter().take(n) {
        let at = rng.random_range(600..2700u64);
        plan = plan.crash_forever(h as u64, SimTime::from_secs(at));
    }
    plan
}

/// Compare the rate-0 row against the committed Figure 10 results: the
/// no-op fault path must not move a single bit of the trajectory.
fn anchor_against_fig10(imp: &[f64], help: &[f64], plans: u64) {
    let path = results_dir().join("fig10_multi_session.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "anchor requires {} (run fig10_multi_session first): {e}",
            path.display()
        )
    });
    let fig10: serde_json::Value = serde_json::from_str(&text).expect("fig10 results parse");
    let row = fig10
        .get("rows")
        .and_then(|r| r.as_array())
        .expect("rows")
        .iter()
        .find(|r| r.get("sessions").and_then(|s| s.as_u64()) == Some(SESSIONS as u64))
        .expect("fig10 sessions=20 row");
    let field = |outer: &str, p: &str| -> f64 {
        row.get(outer)
            .and_then(|o| o.get(p))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("fig10 row missing {outer}.{p}"))
    };
    for (i, p) in ["p1", "p2", "p3"].iter().enumerate() {
        let want_imp = field("improvement", p);
        let want_help = field("helpers", p);
        assert!(
            imp[i] == want_imp && help[i] == want_help,
            "zero-fault run diverged from fig10 at {p}: \
             improvement {} vs {want_imp}, helpers {} vs {want_help}",
            imp[i],
            help[i],
        );
    }
    assert_eq!(
        row.get("plans").and_then(|v| v.as_u64()),
        Some(plans),
        "plan count diverged"
    );
    println!("  [anchor] rate 0 reproduces fig10 sessions={SESSIONS} bit-identically");
}
