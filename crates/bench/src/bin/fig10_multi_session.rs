//! Figure 10: multiple concurrent ALM sessions under market-driven
//! competition.
//!
//! Paper setup: sessions start and end at random times; priorities 1–3;
//! concurrent-session count swept from 10 to 60; every session has a
//! disjoint member set of 20 (at 60 sessions all 1200 hosts are members of
//! something); each session plans with Leafset+adjust from SOMO data.
//!
//! Panel (a): per-priority improvement over AMCast, expected to fall
//! between the AMCast+adju lower bound and the Leafset+adju single-session
//! upper bound, with higher classes sustaining better performance as
//! contention rises. Panel (b): average number of helper nodes held per
//! priority — lower classes lose helpers first.
//!
//! Run with: `cargo run --release -p bench --bin fig10_multi_session`

use alm::{adjust, amcast, Problem};
use bench::{dump_json, mean};
use netsim::HostId;
use pool::{MarketConfig, MarketSim, PlanConfig, PoolConfig, ResourcePool};
use serde_json::json;
use simcore::SimTime;

const SESSION_COUNTS: [usize; 6] = [10, 20, 30, 40, 50, 60];
const MEMBER_SIZE: usize = 20;

fn main() {
    let seed = 2010;
    println!("building the 1200-host resource pool (coordinates + bandwidth)...");
    let base_pool = PoolConfig::default();

    // One pool build; every sweep point starts from a fresh clone (all
    // reservations empty).
    let pristine = ResourcePool::build(&base_pool, seed);

    // Bounds at group size 20, averaged over a few sessions (paper: lower
    // = AMCast+adju ≈ 7%, upper = Leafset+adju ≈ 35%).
    let (lower, upper) = bounds(&pristine, seed);
    println!(
        "single-session bounds at group size {MEMBER_SIZE}: lower (AMCast+adju) {:.1}%, upper (Leafset+adju) {:.1}%",
        lower * 100.0,
        upper * 100.0
    );

    let mut rows = Vec::new();
    println!(
        "\nFigure 10(a) — improvement (%) and 10(b) — helpers held, per priority:\n{:>9} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "sessions", "imp p1", "imp p2", "imp p3", "help p1", "help p2", "help p3"
    );
    for &s in &SESSION_COUNTS {
        // Each sweep point gets a fresh pool (reservations reset).
        let pool = pristine.clone();
        let cfg = MarketConfig {
            sessions: s,
            member_size: MEMBER_SIZE,
            horizon: SimTime::from_secs(3600),
            warmup: SimTime::from_secs(600),
            plan: PlanConfig::default(), // Leafset + adjust + helpers
            ..MarketConfig::default()
        };
        let out = MarketSim::new(pool, cfg, seed + s as u64).run();
        let imp: Vec<f64> = (1..=3).map(|p| out.class(p).improvement.mean()).collect();
        let help: Vec<f64> = (1..=3).map(|p| out.class(p).helpers.mean()).collect();
        let pre: Vec<u64> = (1..=3).map(|p| out.class(p).preemptions).collect();
        println!(
            "{:>9} | {:>7.1}% {:>7.1}% {:>7.1}% | {:>8.2} {:>8.2} {:>8.2}   (preemptions {:?})",
            s,
            imp[0] * 100.0,
            imp[1] * 100.0,
            imp[2] * 100.0,
            help[0],
            help[1],
            help[2],
            pre
        );
        rows.push(json!({
            "sessions": s,
            "improvement": {"p1": imp[0], "p2": imp[1], "p3": imp[2]},
            "helpers": {"p1": help[0], "p2": help[1], "p3": help[2]},
            "preemptions": {"p1": pre[0], "p2": pre[1], "p3": pre[2]},
            "plans": out.plans,
        }));
    }

    dump_json(
        "fig10_multi_session",
        &json!({
            "figure": "10",
            "member_size": MEMBER_SIZE,
            "lower_bound_amcast_adju": lower,
            "upper_bound_leafset_adju": upper,
            "rows": rows,
        }),
    );
}

/// Single-session bounds at the Figure 10 group size.
fn bounds(pool: &ResourcePool, seed: u64) -> (f64, f64) {
    let mut lowers = Vec::new();
    let mut uppers = Vec::new();
    for i in 0..10u64 {
        let members = pool.sample_members(MEMBER_SIZE, seed + 500 + i);
        let root = members[0];
        let dbound = |h: HostId| pool.net.hosts.degree_bound(h);
        let p_oracle = Problem::new(root, members.clone(), &pool.net.latency, dbound);
        let base = amcast(&p_oracle).max_height();

        // Lower bound: AMCast + adjust, members only.
        let mut t = amcast(&p_oracle);
        adjust(&p_oracle, &mut t);
        lowers.push(alm::problem::improvement(base, t.max_height()));

        // Upper bound: Leafset + adjust with the whole idle pool.
        let hp = alm::HelperPool::new(pool.net.hosts.ids().collect());
        let leaf = alm::staged_plan(
            root,
            &members,
            &pool.net.latency,
            &pool.coords,
            dbound,
            &hp,
            true,
        );
        let mut eval = leaf.clone();
        eval.recompute_heights(&pool.net.latency);
        uppers.push(alm::problem::improvement(base, eval.max_height()));
    }
    (mean(&lowers), mean(&uppers))
}
