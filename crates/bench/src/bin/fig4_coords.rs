//! Figure 4: CDF of relative latency-estimation error — GNP vs the
//! leafset-based variant, with 16 and 32 landmarks / leafset members.
//!
//! Paper setup: 1200 nodes on a GT-ITM transit–stub topology. Finding: the
//! leafset variant with L=32 (Pastry's default) comes very close to GNP
//! with 16 landmarks, and GNP is less sensitive to its parameter than the
//! leafset variant is to L.
//!
//! Run with: `cargo run --release -p bench --bin fig4_coords`

use bench::dump_json;
use coords::eval::{random_pairs, relative_error_cdf};
use coords::gnp::GnpConfig;
use coords::leafset::LeafsetConfig;
use coords::{GnpSolver, LeafsetCoords};
use dht::Ring;
use netsim::{HostId, Network, NetworkConfig};
use serde_json::json;

fn main() {
    let seed = 2004;
    println!("generating the paper's topology (600 routers, 1200 end systems)...");
    let net = Network::generate(&NetworkConfig::default(), seed);
    let ring = Ring::with_random_ids((0..net.num_hosts() as u32).map(HostId), seed + 1);
    let pairs = random_pairs(net.num_hosts(), 20_000, seed + 2);

    let mut curves = Vec::new();
    let mut rows = Vec::new();

    for n in [16usize, 32] {
        println!("solving GNP with {n} landmarks...");
        let store = GnpSolver::new(GnpConfig {
            landmarks: n,
            ..Default::default()
        })
        .solve(&net.latency, seed + 10 + n as u64);
        let cdf = relative_error_cdf(&net.latency, &store, &pairs);
        rows.push((
            format!("GNP-{n}"),
            cdf.quantile(0.5).unwrap(),
            cdf.quantile(0.9).unwrap(),
        ));
        curves.push((format!("GNP-{n}"), cdf));
    }

    for l in [16usize, 32] {
        println!("running leafset variant with L={l}...");
        let store = LeafsetCoords::new(LeafsetConfig {
            leafset_size: l,
            rounds: 20,
            ..Default::default()
        })
        .run(&net.latency, &ring, seed + 20 + l as u64);
        let cdf = relative_error_cdf(&net.latency, &store, &pairs);
        rows.push((
            format!("Leafset-{l}"),
            cdf.quantile(0.5).unwrap(),
            cdf.quantile(0.9).unwrap(),
        ));
        curves.push((format!("Leafset-{l}"), cdf));
    }

    // Print the CDF curves the way the figure plots them.
    println!("\nFigure 4 — CDF of relative error (fraction of pairs with error <= x):");
    print!("{:>10}", "rel.err");
    for (name, _) in &curves {
        print!(" {name:>12}");
    }
    println!();
    let xs: Vec<f64> = (0..=20).map(|i| i as f64 * 0.05).collect();
    for &x in &xs {
        print!("{x:>10.2}");
        for (_, cdf) in &curves {
            print!(" {:>12.3}", cdf.fraction_at(x));
        }
        println!();
    }

    println!("\nsummary (median / p90 relative error):");
    for (name, med, p90) in &rows {
        println!("  {name:<12} median {med:.3}   p90 {p90:.3}");
    }

    let json = json!({
        "figure": "4",
        "pairs": pairs.len(),
        "curves": curves.iter().map(|(name, cdf)| json!({
            "name": name,
            "x": xs,
            "y": xs.iter().map(|&x| cdf.fraction_at(x)).collect::<Vec<f64>>(),
            "median": cdf.quantile(0.5),
            "p90": cdf.quantile(0.9),
        })).collect::<Vec<_>>(),
    });
    dump_json("fig4_coords", &json);
}
