//! Extension: flash-crowd survival — the admission-controlled,
//! fairness-aware market.
//!
//! The paper's market resolves contention by strict priority: class 3
//! evicts class 2 evicts class 1. Under a flash crowd (a burst of
//! sessions beyond fig10's largest sweep point, cycling into hundreds of
//! arrivals) that turns scarcity into preemption churn and starves the
//! low classes. This binary sweeps burst size × allocation mode and
//! measures the two graceful-degradation alternatives:
//!
//! * **Priority** — the anchor baseline (bit-identical to fig10 at low
//!   load);
//! * **Pareto** — weighted max-min water-filling: every session plans
//!   against its fair share of the pool's free degrees, booked at one
//!   shared rank (equal ranks never preempt each other);
//! * **Admission** — an admission controller in front of the planner:
//!   under scarcity arrivals are queued (bounded per-class FIFO, capped
//!   exponential retry backoff, round-based timeout) or admitted degraded
//!   (trimmed helper budget and fan-out) instead of preempting anyone.
//!
//! Reported per cell: Jain's weighted fairness index over per-session
//! mean helper shares (normalized by priority weight — 1.0 means every
//! session got exactly its weighted fair share), admission latency
//! distribution, preemption churn, delivery ratio under a concurrent 5%
//! crash plan, and the admission ledger.
//!
//! Asserted, not just measured:
//!
//! * **Anchor** — the Priority-mode low-load cell reproduces
//!   `fig10_multi_session.json`'s sessions=20 row bit-identically;
//! * **Zero preemption, zero leaks** — Admission mode preempts nobody at
//!   any burst size, and no cell leaks a degree past the horizon;
//! * **Fairness pays** — Jain(Pareto) > Jain(Priority) at the largest
//!   burst;
//! * **Clean audits** — every cell, including the two admission
//!   invariants (queue conservation, zero preemption).
//!
//! Set `EXT_FLASH_CROWD_SMOKE=1` for the CI slice: the anchor cell plus
//! one small-pool Admission cell with thresholds forcing the queue,
//! degrade and reject paths.
//!
//! Run with: `cargo run --release -p bench --bin ext_flash_crowd`

use bench::{dump_json, parallel_runs, results_dir};
use netsim::NetworkConfig;
use pool::{
    AdmissionConfig, AllocationMode, MarketConfig, MarketOutcome, MarketSim, PlanConfig,
    PoolConfig, ResourcePool, DEGRADED_CLASS,
};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde_json::json;
use simcore::{FaultPlan, SimTime};

const ANCHOR_SESSIONS: usize = 20;
/// Burst sizes at fig10's member size (20): members are partitioned
/// disjointly, so demand scales with helper appetite — the top burst
/// exceeds fig10's largest sweep point (50 sessions) and pushes the
/// pool's free fraction below the scarcity thresholds.
const BURSTS: [usize; 3] = [15, 35, 55];
const MODES: [AllocationMode; 3] = [
    AllocationMode::Priority,
    AllocationMode::Pareto,
    AllocationMode::Admission,
];
const MEMBER_SIZE: usize = 20;
const CRASH_RATE: f64 = 0.05;

fn main() {
    let seed = 2010;
    let smoke = std::env::var("EXT_FLASH_CROWD_SMOKE").is_ok();
    println!("building the 1200-host resource pool (coordinates + bandwidth)...");
    let pristine = ResourcePool::build(&PoolConfig::default(), seed);
    let num_hosts = pristine.net.num_hosts();

    // The anchor cell: the fig10 sessions=20 sweep point, Priority mode,
    // no faults. The new allocation machinery must not move a bit of it.
    let anchor_cfg = MarketConfig {
        sessions: ANCHOR_SESSIONS,
        member_size: 20,
        horizon: SimTime::from_secs(3600),
        warmup: SimTime::from_secs(600),
        plan: PlanConfig::default(),
        ..MarketConfig::default()
    };
    let anchor = MarketSim::new(pristine.clone(), anchor_cfg, seed + ANCHOR_SESSIONS as u64).run();
    anchor_against_fig10(&anchor);

    let mut rows = Vec::new();
    if !smoke {
        let cells: Vec<(usize, usize)> = (0..BURSTS.len())
            .flat_map(|b| (0..MODES.len()).map(move |m| (b, m)))
            .collect();
        println!(
            "\nflash crowd — burst × mode, 5% crashes, member size {MEMBER_SIZE}:\n{:>6} {:>9} | {:>6} {:>7} | {:>8} {:>9} | {:>26} | {:>8}",
            "burst", "mode", "jain", "preempt", "delivery", "arrivals", "adm/deg/rej/queued", "wait(s)"
        );
        let outs: Vec<MarketOutcome> = parallel_runs(cells.len(), |i| {
            let (b, m) = cells[i];
            run_cell(&pristine, BURSTS[b], MODES[m], num_hosts, seed)
        });
        let mut jain = [[f64::NAN; 3]; 3]; // [burst][mode]
        for (&(b, m), out) in cells.iter().zip(&outs) {
            let (burst, mode) = (BURSTS[b], MODES[m]);
            jain[b][m] = out.jain_fairness();
            print_cell(burst, mode, out);
            assert_cell(burst, mode, out);
            rows.push(cell_json(burst, mode, out));
        }
        // The fairness payoff, asserted at the largest burst: water-filled
        // shares beat priority eviction on the Jain index.
        let last = BURSTS.len() - 1;
        assert!(
            jain[last][1] > jain[last][0],
            "Pareto Jain ({}) not above Priority ({}) at burst {}",
            jain[last][1],
            jain[last][0],
            BURSTS[last]
        );
        // The admission controller must actually have engaged under the
        // largest burst — otherwise the cell measured nothing.
        let adm = &outs[last * MODES.len() + 2].admission;
        assert!(
            adm.degraded + adm.rejected + adm.queued_final + adm.max_queue_depth > 0,
            "largest burst never pressured the admission controller"
        );
    } else {
        // The CI slice: one small-pool Admission cell with thresholds high
        // enough that the queue, degrade and reject paths all run.
        let small = ResourcePool::build(
            &PoolConfig {
                net: NetworkConfig {
                    num_hosts: 300,
                    ..NetworkConfig::default()
                },
                coord_rounds: 5,
                ..PoolConfig::default()
            },
            seed,
        );
        let cfg = MarketConfig {
            sessions: 24,
            member_size: 4,
            horizon: SimTime::from_secs(1800),
            warmup: SimTime::from_secs(300),
            allocation: AllocationMode::Admission,
            admission: AdmissionConfig {
                scarce_free_frac: 0.995,
                degrade_free_frac: 0.9,
                backoff: SimTime::from_secs(20),
                max_attempts: 4,
                ..AdmissionConfig::default()
            },
            faults: crash_plan(CRASH_RATE, 300, seed + 5),
            ..MarketConfig::default()
        };
        let out = MarketSim::new(small, cfg, seed).run();
        print_cell(24, AllocationMode::Admission, &out);
        assert_cell(24, AllocationMode::Admission, &out);
        assert!(
            out.admission.degraded > 0,
            "smoke cell never admitted degraded"
        );
        rows.push(cell_json(24, AllocationMode::Admission, &out));
    }

    println!(
        "\n(jain is the weighted fairness index over per-session mean helper shares,\n normalized by priority weight — 1.0 means every session got exactly its\n weighted fair share; adm/deg/rej/queued is the admission ledger; wait is the\n mean queue delay of admitted sessions; Admission mode is asserted to preempt\n nobody at any burst)"
    );
    dump_json(
        "ext_flash_crowd",
        &json!({
            "extension": "flash_crowd",
            "smoke": smoke,
            "member_size": MEMBER_SIZE,
            "bursts": BURSTS,
            "modes": ["priority", "pareto", "admission"],
            "crash_rate": CRASH_RATE,
            "anchor": "fig10_multi_session sessions=20 row, bit-identical in Priority mode",
            "rows": rows,
        }),
    );
}

fn run_cell(
    pristine: &ResourcePool,
    burst: usize,
    mode: AllocationMode,
    num_hosts: usize,
    seed: u64,
) -> MarketOutcome {
    let cfg = MarketConfig {
        sessions: burst,
        member_size: MEMBER_SIZE,
        horizon: SimTime::from_secs(3600),
        warmup: SimTime::from_secs(600),
        plan: PlanConfig::default(),
        allocation: mode,
        // Thresholds sized to the burst sweep: the pool sits near ~35%
        // free at the largest burst, so scarcity engages there while the
        // small burst mostly admits at full service.
        admission: AdmissionConfig {
            scarce_free_frac: 0.55,
            degrade_free_frac: 0.35,
            ..AdmissionConfig::default()
        },
        faults: crash_plan(CRASH_RATE, num_hosts, seed + burst as u64),
        ..MarketConfig::default()
    };
    MarketSim::new(pristine.clone(), cfg, seed + burst as u64).run()
}

fn mode_name(mode: AllocationMode) -> &'static str {
    match mode {
        AllocationMode::Priority => "priority",
        AllocationMode::Pareto => "pareto",
        AllocationMode::Admission => "admission",
    }
}

fn total_preemptions(out: &MarketOutcome) -> u64 {
    out.per_class.iter().map(|(_, p)| p.preemptions).sum()
}

fn print_cell(burst: usize, mode: AllocationMode, out: &MarketOutcome) {
    let a = &out.admission;
    println!(
        "{:>6} {:>9} | {:>6.3} {:>7} | {:>7.2}% {:>9} | {:>5}/{:>5}/{:>5}/{:>6} | {:>8.2}",
        burst,
        mode_name(mode),
        out.jain_fairness(),
        total_preemptions(out),
        out.delivery.mean() * 100.0,
        a.arrivals,
        a.admitted,
        a.degraded,
        a.rejected,
        a.queued_final,
        a.wait.mean(),
    );
    // Per-session share table for fairness forensics (not part of the
    // committed JSON): weight, plan samples, mean helper share.
    if std::env::var("EXT_FLASH_CROWD_DEBUG").is_ok() {
        for (i, s) in out.session_shares.iter().enumerate() {
            println!(
                "    s{i:<3} w{:.0} plans {:>4} share {:>7.2}",
                out.session_weights.get(i).copied().unwrap_or(1.0),
                s.count(),
                s.mean()
            );
        }
    }
}

/// The hard acceptance gates, at every cell.
fn assert_cell(burst: usize, mode: AllocationMode, out: &MarketOutcome) {
    let tag = format!("burst {burst} mode {}", mode_name(mode));
    assert_eq!(out.leaked_degrees, 0, "{tag}: degrees leaked past horizon");
    assert!(
        out.audit.is_clean(),
        "{tag}: audit violations: {:?}",
        out.audit.violations
    );
    if mode == AllocationMode::Admission {
        assert_eq!(
            total_preemptions(out),
            0,
            "{tag}: admission mode preempted someone"
        );
        assert_eq!(
            out.admission.arrivals,
            out.admission.admitted
                + out.admission.degraded
                + out.admission.rejected
                + out.admission.queued_final,
            "{tag}: admission ledger does not balance"
        );
    }
}

fn cell_json(burst: usize, mode: AllocationMode, out: &MarketOutcome) -> serde_json::Value {
    let a = &out.admission;
    let class_stats: Vec<serde_json::Value> = out
        .per_class
        .iter()
        .map(|(c, p)| {
            json!({
                "class": if c == DEGRADED_CLASS { "degraded".to_string() } else { format!("p{c}") },
                "improvement_mean": p.improvement.mean(),
                "helpers_mean": p.helpers.mean(),
                "plans": p.improvement.count(),
                "preemptions": p.preemptions,
                "helper_failures": p.helper_failures,
            })
        })
        .collect();
    json!({
        "burst": burst,
        "mode": mode_name(mode),
        "jain": out.jain_fairness(),
        "preemptions": total_preemptions(out),
        "delivery": {"mean": out.delivery.mean(), "samples": out.delivery.count()},
        "utilization_mean": out.utilization.mean(),
        "plans": out.plans,
        "sessions_lost": out.sessions_lost(),
        "leaked_degrees": out.leaked_degrees,
        "admission": {
            "arrivals": a.arrivals,
            "admitted": a.admitted,
            "degraded": a.degraded,
            "rejected": a.rejected,
            "timeouts": a.timeouts,
            "queued_final": a.queued_final,
            "max_queue_depth": a.max_queue_depth,
            "wait": {"mean": a.wait.mean(), "samples": a.wait.count()},
        },
        "classes": class_stats,
        "audit": {
            "samples": out.audit.samples,
            "checks": out.audit.checks,
            "violations": out.audit.violations.len(),
        },
    })
}

/// Crash `rate` of the pool's hosts permanently, at deterministic times
/// staggered across the middle of the run — the `ext_multipath`
/// derivation, so every mode at a given burst shares one plan.
fn crash_plan(rate: f64, num_hosts: usize, seed: u64) -> FaultPlan {
    let n = (num_hosts as f64 * rate).round() as usize;
    if n == 0 {
        return FaultPlan::none();
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut hosts: Vec<usize> = (0..num_hosts).collect();
    hosts.shuffle(&mut rng);
    let mut plan = FaultPlan::none();
    for &h in hosts.iter().take(n) {
        let at = rng.random_range(600..2700u64);
        plan = plan.crash_forever(h as u64, SimTime::from_secs(at));
    }
    plan
}

/// Compare the Priority-mode low-load anchor against the committed
/// Figure 10 results: the allocation machinery must not move a single
/// bit of the default-mode trajectory.
fn anchor_against_fig10(out: &MarketOutcome) {
    let path = results_dir().join("fig10_multi_session.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "anchor requires {} (run fig10_multi_session first): {e}",
            path.display()
        )
    });
    let fig10: serde_json::Value = serde_json::from_str(&text).expect("fig10 results parse");
    let row = fig10
        .get("rows")
        .and_then(|r| r.as_array())
        .expect("rows")
        .iter()
        .find(|r| r.get("sessions").and_then(|s| s.as_u64()) == Some(ANCHOR_SESSIONS as u64))
        .expect("fig10 sessions=20 row");
    let field = |outer: &str, p: &str| -> f64 {
        row.get(outer)
            .and_then(|o| o.get(p))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("fig10 row missing {outer}.{p}"))
    };
    for (i, p) in ["p1", "p2", "p3"].iter().enumerate() {
        let want_imp = field("improvement", p);
        let want_help = field("helpers", p);
        let (imp, help) = (
            out.class(i as u8 + 1).improvement.mean(),
            out.class(i as u8 + 1).helpers.mean(),
        );
        assert!(
            imp == want_imp && help == want_help,
            "anchor diverged from fig10 at {p}: improvement {imp} vs {want_imp}, \
             helpers {help} vs {want_help}",
        );
    }
    assert_eq!(
        row.get("plans").and_then(|v| v.as_u64()),
        Some(out.plans),
        "plan count diverged"
    );
    println!(
        "  [anchor] Priority mode reproduces fig10 sessions={ANCHOR_SESSIONS} bit-identically"
    );
}
