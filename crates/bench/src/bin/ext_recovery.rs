//! Extension experiment: end-to-end churn recovery under message loss.
//!
//! `ext_churn` measures the exposure window on a perfect network. This
//! binary runs the full [`pool::recovery`] pipeline — heartbeat detection →
//! ring expulsion → SOMO rebuild + regather → ALM orphan reattachment —
//! while the fault layer drops and jitters messages, sweeping loss rate ×
//! crash count and reporting per-phase times:
//!
//! * **time-to-detect** — crash until the first live view expires a victim;
//! * **time-to-expel** — crash until no live view contains any victim;
//! * **time-to-full-repair** — crash until the rebuilt SOMO root holds a
//!   full survivor census *and* every ALM orphan is re-attached;
//! * **census completeness** during exposure and after repair;
//! * **ALM delivery disruption** during exposure, and reattach retries.
//!
//! Two sanity anchors are asserted:
//! * at 0% loss the exposure-window completeness reproduces `ext_churn`'s
//!   numbers bit-for-bit (same seeds, same gather), and
//! * at 5% loss with 8 crashes the pipeline still reaches a 100%
//!   post-repair census.
//!
//! With `--trace-out`, the heaviest cell (5% loss, 8 crashes, trial 0) is
//! re-run once with a ring tracer attached and its structured repair-phase
//! trace lands in `results/ext_recovery_trace.jsonl` (observation only —
//! the asserted gates above are unchanged).
//!
//! Run with: `cargo run --release -p bench --bin ext_recovery`

use bench::{dump_json, dump_jsonl, mean, parallel_runs, trace_out_requested};
use dht::Ring;
use netsim::HostId;
use pool::recovery::{run_pipeline, run_pipeline_traced, RecoveryConfig, RecoveryOutcome};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde_json::json;
use simcore::{FaultPlan, SimTime};
use somo::flow::{FlowMode, FreshnessReport, GatherSim};
use somo::SomoTree;

const N: u32 = 512;
const TRIALS: usize = 5;
const HOP: SimTime = SimTime::from_millis(200);
const T: SimTime = SimTime::from_secs(5);
const LOSSES: [f64; 3] = [0.0, 0.01, 0.05];
const CRASHES: [usize; 3] = [1, 4, 8];

/// `ext_churn`'s phase-1 measurement, recomputed verbatim (same seeds, same
/// victim shuffle, same synchronized gather): the fraction of surviving
/// members the un-repaired tree's root still reports at t = 60 s.
fn churn_stale_completeness(f: usize, trial: usize) -> f64 {
    let seed = 40 + trial as u64;
    let ring = Ring::with_random_ids((0..N).map(HostId), seed);
    let tree = SomoTree::build(&ring, 8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 100);
    let mut victims: Vec<usize> = (0..ring.len()).collect();
    victims.shuffle(&mut rng);
    let victims = &victims[..f];
    let mut sim = GatherSim::new(
        &tree,
        &ring,
        FlowMode::Synchronized,
        T,
        |_m, now| FreshnessReport::of_member(now),
        |a, b| if a == b { SimTime::ZERO } else { HOP },
    );
    for &v in victims {
        sim.kill_member(v);
    }
    sim.run_until(SimTime::from_secs(60));
    let alive = (N as usize - f) as f64;
    sim.views()
        .last()
        .map(|v| v.view.members as f64)
        .unwrap_or(0.0)
        / alive
}

fn cfg_for(loss: f64, crashes: usize, trial: usize) -> RecoveryConfig {
    let seed = 40 + trial as u64;
    let plan = if loss == 0.0 {
        FaultPlan::none()
    } else {
        FaultPlan::with_loss(simcore::rng::derive_seed(seed, 5), loss)
            .jitter(SimTime::from_millis(20))
    };
    RecoveryConfig {
        n: N,
        seed,
        crashes,
        plan,
        hop: HOP,
        gather_period: T,
        ..RecoveryConfig::default()
    }
}

fn secs(t: Option<SimTime>, from: SimTime) -> f64 {
    t.map(|t| t.saturating_sub(from).as_micros() as f64 / 1e6)
        .unwrap_or(f64::NAN)
}

fn main() {
    println!("End-to-end churn recovery, loss × crashes sweep (N = {N}, {TRIALS} trials):");
    println!(
        "{:>6} {:>3} {:>10} {:>10} {:>12} {:>8} {:>8} {:>10} {:>8}",
        "loss", "f", "detect(s)", "expel(s)", "repair(s)", "stale", "post", "disrupt", "retries"
    );

    let combos: Vec<(f64, usize)> = LOSSES
        .iter()
        .flat_map(|&l| CRASHES.iter().map(move |&c| (l, c)))
        .collect();
    let mut rows = Vec::new();
    for &(loss, f) in &combos {
        let outs: Vec<RecoveryOutcome> =
            parallel_runs(TRIALS, |trial| run_pipeline(&cfg_for(loss, f, trial)));

        for (trial, out) in outs.iter().enumerate() {
            if loss == 0.0 {
                // Anchor 1: fault-free exposure must reproduce ext_churn.
                let anchor = churn_stale_completeness(f, trial);
                assert_eq!(
                    out.stale_completeness, anchor,
                    "0-loss exposure diverged from ext_churn (f={f}, trial={trial})"
                );
                assert_eq!(out.dht_dropped + out.gather_dropped, 0);
            }
            if loss == 0.05 && f == 8 {
                // Anchor 2: the pipeline repairs fully under heavy faults.
                let tl = &out.timeline;
                assert_eq!(
                    out.post_completeness, 1.0,
                    "post-repair census incomplete at 5% loss (trial {trial})"
                );
                assert!(
                    tl.detected_at.is_some()
                        && tl.expelled_at.is_some()
                        && tl.rebuilt_at.is_some()
                        && tl.reattached_at.is_some(),
                    "timeline has holes at 5% loss (trial {trial}): {tl:?}"
                );
            }
        }

        let crash = outs[0].timeline.crash_at;
        let detect: Vec<f64> = outs
            .iter()
            .map(|o| secs(o.timeline.detected_at, crash))
            .collect();
        let expel: Vec<f64> = outs
            .iter()
            .map(|o| secs(o.timeline.expelled_at, crash))
            .collect();
        let repair: Vec<f64> = outs
            .iter()
            .map(|o| secs(o.timeline.reattached_at, crash))
            .collect();
        let stale: Vec<f64> = outs.iter().map(|o| o.stale_completeness).collect();
        let post: Vec<f64> = outs.iter().map(|o| o.post_completeness).collect();
        let disrupt: Vec<f64> = outs.iter().map(|o| o.delivery_disruption).collect();
        let retries: u64 = outs.iter().map(|o| o.timeline.reattach_retries).sum();
        let gave_up: usize = outs.iter().map(|o| o.alm.gave_up).sum();
        let dropped: u64 = outs.iter().map(|o| o.dht_dropped + o.gather_dropped).sum();
        println!(
            "{:>5.0}% {:>3} {:>10.1} {:>10.1} {:>12.1} {:>7.1}% {:>7.1}% {:>9.1}% {:>8}",
            loss * 100.0,
            f,
            mean(&detect),
            mean(&expel),
            mean(&repair),
            mean(&stale) * 100.0,
            mean(&post) * 100.0,
            mean(&disrupt) * 100.0,
            retries
        );
        rows.push(json!({
            "loss": loss,
            "crashes": f,
            "time_to_detect_s": mean(&detect),
            "time_to_expel_s": mean(&expel),
            "time_to_full_repair_s": mean(&repair),
            "stale_completeness": mean(&stale),
            "post_completeness": mean(&post),
            "delivery_disruption": mean(&disrupt),
            "reattach_retries": retries,
            "reattach_gave_up": gave_up,
            "messages_dropped": dropped,
            "timelines": outs.iter().map(|o| json!({
                "detected_at_us": o.timeline.detected_at.map(|t| t.as_micros()),
                "expelled_at_us": o.timeline.expelled_at.map(|t| t.as_micros()),
                "rebuilt_at_us": o.timeline.rebuilt_at.map(|t| t.as_micros()),
                "reattached_at_us": o.timeline.reattached_at.map(|t| t.as_micros()),
                "remap_fraction": o.timeline.remap.remap_fraction(),
            })).collect::<Vec<_>>(),
        }));
    }

    if trace_out_requested() {
        // Observation only: replay the heaviest cell once with a tracer and
        // dump the phase timeline. Determinism makes the replay identical to
        // the asserted run above.
        let mut tracer = simcore::Tracer::ring(1 << 16);
        let _ = run_pipeline_traced(&cfg_for(0.05, 8, 0), &mut tracer);
        dump_jsonl(
            "ext_recovery_trace",
            &simcore::trace::to_json_lines(
                &tracer.take_records().expect("ring tracer owns its records"),
            ),
        );
    }

    println!(
        "\n(detection is one failure-detection timeout; expulsion adds the gossip tail;\n full repair adds the regather's convergence and the ALM backoff — all of it\n survives 5% message loss with a 100% post-repair census)"
    );
    dump_json(
        "ext_recovery",
        &json!({
            "n": N,
            "trials": TRIALS,
            "losses": LOSSES,
            "crashes": CRASHES,
            "rows": rows,
        }),
    );
}
