//! Shared harness for the figure-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table/figure from the
//! paper's evaluation: it prints the same rows/series the paper reports and
//! drops a machine-readable JSON copy under `results/` so EXPERIMENTS.md
//! can be refreshed by re-running the binaries.

use std::fs;
use std::path::PathBuf;

/// Directory where figure binaries drop their JSON results.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir.canonicalize().unwrap_or(dir)
}

/// Write a JSON value to `results/<name>.json`.
pub fn dump_json(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value).unwrap())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("\n[results written to {}]", path.display());
}

/// Write pre-rendered JSON-lines text (one object per line, e.g. a
/// `simcore::trace` export) to `results/<name>.jsonl`.
pub fn dump_jsonl(name: &str, text: &str) {
    let path = results_dir().join(format!("{name}.jsonl"));
    fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("[trace written to {}]", path.display());
}

/// Whether `--trace-out` was passed on the command line: figure binaries
/// that support it attach a ring tracer to one designated run and dump the
/// JSON-lines trace next to their JSON results.
pub fn trace_out_requested() -> bool {
    std::env::args().any(|a| a == "--trace-out")
}

/// Whether `--store-out` was passed on the command line: binaries that
/// attach a live-operations run store dump its trace/delta/snapshot logs
/// as JSON lines next to their JSON results.
pub fn store_out_requested() -> bool {
    std::env::args().any(|a| a == "--store-out")
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Run `runs` independent jobs across threads, preserving output order.
/// Each job gets its run index; determinism comes from per-run seeds.
pub fn parallel_runs<T: Send>(runs: usize, job: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(runs.max(1));
    let chunk = runs.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let job = &job;
            let base = t * chunk;
            s.spawn(move |_| {
                for (i, o) in slot.iter_mut().enumerate() {
                    *o = Some(job(base + i));
                }
            });
        }
    })
    .expect("parallel_runs worker panicked");
    out.into_iter().map(|o| o.expect("job filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_runs_preserves_order() {
        let xs = parallel_runs(37, |i| i * 2);
        assert_eq!(xs, (0..37).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
