//! Accuracy metrics for Figure 5: average relative error vs leafset size,
//! plus ranking correctness (the property helper selection actually needs).

use dht::Ring;
use netsim::hosts::HostSet;
use serde::{Deserialize, Serialize};

use crate::estimator::BwEstimates;

/// Accuracy summary of one estimation run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BwAccuracy {
    /// Mean of `|est − true| / true` over all ring members, upstream.
    pub up_avg_rel_err: f64,
    /// Mean relative error, downstream.
    pub down_avg_rel_err: f64,
    /// Fraction of member pairs whose *uplink ordering* the estimates get
    /// right (1.0 = perfect ranking, the §4.2 claim at L=32).
    pub up_ranking_accuracy: f64,
}

/// Compare estimates against the true access capacities of ring members.
pub fn evaluate(hosts: &HostSet, ring: &Ring, est: &BwEstimates) -> BwAccuracy {
    let members: Vec<_> = ring.members().iter().map(|m| m.host).collect();
    assert!(!members.is_empty());

    let mut up_err = 0.0;
    let mut down_err = 0.0;
    for &h in &members {
        let bw = &hosts.get(h).bandwidth;
        up_err += (est.up(h) - bw.up_kbps).abs() / bw.up_kbps;
        down_err += (est.down(h) - bw.down_kbps).abs() / bw.down_kbps;
    }

    // Ranking: over all ordered member pairs with distinct true uplinks,
    // does the estimate order them the same way?
    let mut correct = 0u64;
    let mut total = 0u64;
    for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            let ta = hosts.get(a).bandwidth.up_kbps;
            let tb = hosts.get(b).bandwidth.up_kbps;
            if (ta - tb).abs() / ta.max(tb) < 1e-9 {
                continue;
            }
            total += 1;
            if (ta > tb) == (est.up(a) > est.up(b)) {
                correct += 1;
            }
        }
    }

    BwAccuracy {
        up_avg_rel_err: up_err / members.len() as f64,
        down_avg_rel_err: down_err / members.len() as f64,
        up_ranking_accuracy: if total == 0 {
            1.0
        } else {
            correct as f64 / total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{estimate, BwEstConfig};
    use netsim::{HostId, Network, NetworkConfig};

    fn net() -> Network {
        Network::generate(
            &NetworkConfig {
                transit_domains: 2,
                transit_per_domain: 3,
                stub_domains_per_transit: 2,
                routers_per_stub: 3,
                num_hosts: 300,
                ..NetworkConfig::default()
            },
            66,
        )
    }

    #[test]
    fn error_decreases_with_leafset_size() {
        // The Figure 5 shape: average relative error shrinks as L grows.
        let net = net();
        let ring = Ring::with_random_ids((0..300u32).map(HostId), 3);
        let err_at = |l: usize| {
            let est = estimate(
                &net.hosts,
                &ring,
                &BwEstConfig {
                    leafset_size: l,
                    ..Default::default()
                },
                7,
            );
            evaluate(&net.hosts, &ring, &est).up_avg_rel_err
        };
        let e4 = err_at(4);
        let e32 = err_at(32);
        assert!(e32 < e4, "L=32 ({e32}) must beat L=4 ({e4})");
    }

    #[test]
    fn uplink_beats_downlink_accuracy() {
        // §4.2: uplink is predicted more accurately than downlink because
        // most downlinks exceed most uplinks in the population.
        let net = net();
        let ring = Ring::with_random_ids((0..300u32).map(HostId), 3);
        let est = estimate(
            &net.hosts,
            &ring,
            &BwEstConfig {
                leafset_size: 32,
                ..Default::default()
            },
            7,
        );
        let acc = evaluate(&net.hosts, &ring, &est);
        assert!(
            acc.up_avg_rel_err < acc.down_avg_rel_err,
            "uplink err {} should be below downlink err {}",
            acc.up_avg_rel_err,
            acc.down_avg_rel_err
        );
    }

    #[test]
    fn ranking_is_strong_at_l32() {
        let net = net();
        let ring = Ring::with_random_ids((0..300u32).map(HostId), 3);
        let est = estimate(
            &net.hosts,
            &ring,
            &BwEstConfig {
                leafset_size: 32,
                ..Default::default()
            },
            7,
        );
        let acc = evaluate(&net.hosts, &ring, &est);
        assert!(
            acc.up_ranking_accuracy > 0.9,
            "ranking accuracy {}",
            acc.up_ranking_accuracy
        );
    }
}
