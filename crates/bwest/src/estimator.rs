//! The leafset-max bottleneck estimator.

use dht::Ring;
use netsim::hosts::HostSet;
use netsim::{HostId, PacketPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of an estimation run.
#[derive(Clone, Debug)]
pub struct BwEstConfig {
    /// Total leafset size L (L/2 neighbors per side).
    pub leafset_size: usize,
    /// Packet-pair probes sent to each neighbor; the estimator keeps the
    /// maximum measurement per neighbor (dispersion noise from cross
    /// traffic only ever under-estimates, so the largest probe is the most
    /// truthful one).
    pub probes_per_neighbor: usize,
    /// The probe model (packet size, dispersion noise).
    pub packet_pair: PacketPair,
}

impl Default for BwEstConfig {
    fn default() -> Self {
        BwEstConfig {
            leafset_size: 32,
            probes_per_neighbor: 3,
            packet_pair: PacketPair::default(),
        }
    }
}

/// Per-host up/downstream bottleneck estimates, kbps. Hosts that are not
/// ring members (or have no neighbors) hold `0.0`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BwEstimates {
    /// Estimated upstream bottleneck per host.
    pub up_kbps: Vec<f64>,
    /// Estimated downstream bottleneck per host.
    pub down_kbps: Vec<f64>,
}

impl BwEstimates {
    /// Upstream estimate for one host.
    pub fn up(&self, h: HostId) -> f64 {
        self.up_kbps[h.idx()]
    }

    /// Downstream estimate for one host.
    pub fn down(&self, h: HostId) -> f64 {
        self.down_kbps[h.idx()]
    }
}

/// Run the estimation protocol over all members of `ring`: every node
/// packet-pair probes each leafset member in both directions and takes the
/// maximum per direction.
pub fn estimate(hosts: &HostSet, ring: &Ring, cfg: &BwEstConfig, seed: u64) -> BwEstimates {
    let n = hosts.len();
    let mut up = vec![0.0f64; n];
    let mut down = vec![0.0f64; n];
    let mut rng = StdRng::seed_from_u64(seed);
    let r_side = (cfg.leafset_size / 2).max(1);

    for i in 0..ring.len() {
        let me = ring.member(i).host;
        let my_bw = &hosts.get(me).bandwidth;
        for j in ring.leafset(i, r_side) {
            let nb = ring.member(j).host;
            let nb_bw = &hosts.get(nb).bandwidth;
            // me → nb probes: nb measures, reports back; bounded by
            // min(up(me), down(nb)).
            let m_out = max_probe(
                &cfg.packet_pair,
                my_bw,
                nb_bw,
                cfg.probes_per_neighbor,
                &mut rng,
            );
            up[me.idx()] = up[me.idx()].max(m_out);
            // nb → me probes: me measures directly.
            let m_in = max_probe(
                &cfg.packet_pair,
                nb_bw,
                my_bw,
                cfg.probes_per_neighbor,
                &mut rng,
            );
            down[me.idx()] = down[me.idx()].max(m_in);
        }
    }
    BwEstimates {
        up_kbps: up,
        down_kbps: down,
    }
}

/// Maximum of `k` packet-pair measurements on one directed path (noise is
/// one-sided, so the largest probe is closest to the truth).
fn max_probe(
    pp: &PacketPair,
    src: &netsim::AccessBandwidth,
    dst: &netsim::AccessBandwidth,
    k: usize,
    rng: &mut StdRng,
) -> f64 {
    (0..k.max(1))
        .map(|_| pp.measure_kbps(src, dst, rng))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Network, NetworkConfig};

    fn net() -> Network {
        Network::generate(
            &NetworkConfig {
                transit_domains: 2,
                transit_per_domain: 3,
                stub_domains_per_transit: 2,
                routers_per_stub: 3,
                num_hosts: 200,
                ..NetworkConfig::default()
            },
            55,
        )
    }

    #[test]
    fn estimates_never_exceed_capacity() {
        let net = net();
        let ring = Ring::with_random_ids((0..200u32).map(HostId), 1);
        let est = estimate(&net.hosts, &ring, &BwEstConfig::default(), 2);
        for (h, host) in net.hosts.iter() {
            // A measurement min(up(x), down(y)) ≤ up(x), and dispersion
            // noise only lowers it further.
            assert!(
                est.up(h) <= host.bandwidth.up_kbps * (1.0 + 1e-9),
                "up estimate above capacity"
            );
            assert!(
                est.down(h) <= host.bandwidth.down_kbps * (1.0 + 1e-9),
                "down estimate above capacity"
            );
        }
    }

    #[test]
    fn uplink_estimation_is_nearly_exact_with_l32() {
        // §4.2: "with leafset of size 32, the average relative error of
        // upstream bandwidth estimation is almost 0".
        let net = net();
        let ring = Ring::with_random_ids((0..200u32).map(HostId), 1);
        let cfg = BwEstConfig {
            leafset_size: 32,
            ..Default::default()
        };
        let est = estimate(&net.hosts, &ring, &cfg, 2);
        let mut total_err = 0.0;
        let mut count = 0;
        for (h, host) in net.hosts.iter() {
            let truth = host.bandwidth.up_kbps;
            total_err += (est.up(h) - truth).abs() / truth;
            count += 1;
        }
        let avg = total_err / count as f64;
        assert!(avg < 0.15, "avg uplink relative error {avg}");
    }

    #[test]
    fn estimates_deterministic() {
        let net = net();
        let ring = Ring::with_random_ids((0..200u32).map(HostId), 1);
        let a = estimate(&net.hosts, &ring, &BwEstConfig::default(), 9);
        let b = estimate(&net.hosts, &ring, &BwEstConfig::default(), 9);
        assert_eq!(a.up_kbps, b.up_kbps);
        assert_eq!(a.down_kbps, b.down_kbps);
    }

    #[test]
    fn non_members_hold_zero() {
        let net = net();
        let ring = Ring::with_random_ids((0..50u32).map(HostId), 1);
        let est = estimate(&net.hosts, &ring, &BwEstConfig::default(), 3);
        assert_eq!(est.up(HostId(150)), 0.0);
        assert_eq!(est.down(HostId(150)), 0.0);
    }
}
