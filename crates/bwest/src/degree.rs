//! Deriving degree bounds from access bandwidth (§5.1).
//!
//! "Each node has a bound on the number of communication sessions it can
//! handle, which we call degree. This may due to the limited access
//! bandwidth or workload of end systems." This module closes that loop: a
//! node forwarding a media stream of `stream_kbps` can serve at most
//! `uplink / stream` downstream children (plus the one parent link its
//! downlink easily covers), so the degree bound *is* a bandwidth statement.
//!
//! The pool uses this in two ways:
//!
//! * self-reported degree bounds can be **derived** from a node's own
//!   (estimated) uplink rather than configured by hand;
//! * a task manager can **audit** a candidate helper: if the advertised
//!   degree is above what the estimated uplink supports, the node is
//!   over-promising and gets clamped.

use netsim::HostId;

use crate::estimator::BwEstimates;

/// The degree a node can sustain for a given per-link stream rate: one
/// parent link plus `floor(uplink / stream)` children, never below 1 (a
/// node can always at least receive).
pub fn degree_for_stream(up_kbps: f64, stream_kbps: f64) -> u32 {
    assert!(stream_kbps > 0.0, "stream rate must be positive");
    let children = (up_kbps / stream_kbps).floor().max(0.0) as u32;
    (children + 1).max(1)
}

/// Derive degree bounds for every host from estimated uplinks.
pub fn degrees_from_estimates(est: &BwEstimates, stream_kbps: f64) -> Vec<u32> {
    est.up_kbps
        .iter()
        .map(|&up| degree_for_stream(up, stream_kbps))
        .collect()
}

/// Clamp an advertised degree bound to what the estimated uplink supports.
/// Returns the audited bound.
pub fn audit_degree(est: &BwEstimates, h: HostId, advertised: u32, stream_kbps: f64) -> u32 {
    advertised.min(degree_for_stream(est.up(h), stream_kbps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht::Ring;
    use netsim::{Network, NetworkConfig};

    #[test]
    fn degree_scales_with_uplink() {
        // 400 kbps uplink, 128 kbps stream → 3 children + parent = 4.
        assert_eq!(degree_for_stream(400.0, 128.0), 4);
        // Modem: no children, but can still receive.
        assert_eq!(degree_for_stream(50.0, 128.0), 1);
        // T1 at 128 kbps: 12 children + parent.
        assert_eq!(degree_for_stream(1544.0, 128.0), 13);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stream_rejected() {
        degree_for_stream(100.0, 0.0);
    }

    #[test]
    fn derived_degrees_track_population_capacity() {
        let net = Network::generate(
            &NetworkConfig {
                num_hosts: 300,
                ..NetworkConfig::default()
            },
            5,
        );
        let ring = Ring::with_random_ids(net.hosts.ids(), 6);
        let est = crate::estimator::estimate(
            &net.hosts,
            &ring,
            &crate::estimator::BwEstConfig::default(),
            7,
        );
        let degrees = degrees_from_estimates(&est, 128.0);
        assert_eq!(degrees.len(), 300);
        // High-uplink hosts (T1/T3) must earn higher degrees than modems.
        for (h, host) in net.hosts.iter() {
            if host.bandwidth.up_kbps > 1000.0 {
                assert!(degrees[h.idx()] >= 4, "capable host under-rated");
            }
            if host.bandwidth.up_kbps < 100.0 {
                assert!(degrees[h.idx()] <= 2, "modem over-rated");
            }
        }
    }

    #[test]
    fn audit_clamps_overpromising_hosts() {
        let net = Network::generate(
            &NetworkConfig {
                num_hosts: 100,
                ..NetworkConfig::default()
            },
            8,
        );
        let ring = Ring::with_random_ids(net.hosts.ids(), 9);
        let est = crate::estimator::estimate(
            &net.hosts,
            &ring,
            &crate::estimator::BwEstConfig::default(),
            10,
        );
        // Find a genuinely weak host and have it advertise degree 9.
        let weak = net
            .hosts
            .iter()
            .find(|(_, h)| h.bandwidth.up_kbps < 100.0)
            .map(|(id, _)| id)
            .expect("mixture always includes modems");
        let audited = audit_degree(&est, weak, 9, 128.0);
        assert!(audited <= 2, "audit failed to clamp a modem at degree 9");
        // A strong host keeps its advertised bound.
        let strong = net
            .hosts
            .iter()
            .find(|(_, h)| h.bandwidth.up_kbps > 10_000.0)
            .map(|(id, _)| id)
            .expect("mixture always includes T3s");
        assert_eq!(audit_degree(&est, strong, 9, 128.0), 9);
    }
}
