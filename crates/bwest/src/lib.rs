#![warn(missing_docs)]

//! # bwest — bottleneck-bandwidth estimation over leafset heartbeats (§4.2)
//!
//! Bottleneck bandwidth correlates with achievable throughput, so the paper
//! uses it as the throughput predictor when ranking helper candidates. Under
//! the common assumption that the bottleneck is the last hop:
//!
//! * the **upstream** bottleneck of node x is estimated as the *maximum* of
//!   packet-pair measurements from x to its leafset members (each
//!   measurement is `min(up(x), down(y))`, so one neighbor with a downlink
//!   above x's uplink makes the estimate exact);
//! * symmetrically, the **downstream** bottleneck is the maximum of
//!   measurements from leafset members into x.
//!
//! Probes are packet pairs: two back-to-back padded heartbeats (~1.5 KB);
//! the receiver divides packet size by the observed dispersion and reports
//! the value back in its next heartbeat. Larger leafsets include
//! higher-capacity neighbors with higher probability — that is exactly the
//! Figure 5 effect this crate's [`eval`] module measures.

pub mod degree;
pub mod estimator;
pub mod eval;

pub use degree::{audit_degree, degree_for_stream, degrees_from_estimates};
pub use estimator::{BwEstConfig, BwEstimates};
pub use eval::{evaluate, BwAccuracy};
